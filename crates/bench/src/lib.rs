//! The experiment harness: regenerates every table and figure of the paper.
//!
//! Each public function reproduces one evaluation artifact (see the
//! per-experiment index in `DESIGN.md`); the `tables` binary prints them,
//! the Criterion benches time the interesting ones, and `EXPERIMENTS.md`
//! records paper-vs-measured numbers. Absolute gate counts differ from the
//! paper's (the adder/multiplier constructions are not fully specified
//! there); the comparisons of interest are the *shapes*: who wins, by what
//! factor, and how fast trillion-gate circuits can be counted.

use std::fmt::Write as _;
use std::time::Instant;

use quipper::classical::synth;
use quipper::decompose::{decompose, GateBase};
use quipper::{Circ, Qubit};
use quipper_circuit::count::GateCount;
use quipper_circuit::{BCircuit, ClassKind, GateName};

use quipper_algorithms::bf::{hex_winner_dag, HexBoard};
use quipper_algorithms::bwt::{bwt_circuit, timestep, Flavor, WeldedTree};
use quipper_algorithms::tf::{a1_qwtfp, OrthodoxOracle, TfSpec};
use quipper_arith::fpreal::{sin_dag, FPFormat};
use quipper_arith::qinttf::{pow17_tf_boxed, QIntTF};
use quipper_arith::IntTF;

/// Number of "Not" gates with exactly `k` controls of any polarity.
pub fn nots_with_controls(gc: &GateCount, k: u16) -> u128 {
    gc.counts
        .iter()
        .filter(|(class, _)| {
            matches!(
                &class.kind,
                ClassKind::Unitary {
                    name: GateName::X,
                    ..
                }
            ) && class.pos + class.neg == k
        })
        .map(|(_, n)| n)
        .sum()
}

/// Sum of all `Init*` gates.
pub fn inits(gc: &GateCount) -> u128 {
    gc.counts
        .iter()
        .filter(|(class, _)| matches!(class.kind, ClassKind::Init { .. }))
        .map(|(_, n)| n)
        .sum()
}

/// Sum of all `Term*` gates.
pub fn terms(gc: &GateCount) -> u128 {
    gc.counts
        .iter()
        .filter(|(class, _)| matches!(class.kind, ClassKind::Term { .. }))
        .map(|(_, n)| n)
        .sum()
}

// ---------------------------------------------------------------------
// E8: the Section 6 comparison table
// ---------------------------------------------------------------------

/// One column of the Section 6 table.
#[derive(Clone, Debug)]
pub struct Section6Column {
    /// Column label.
    pub label: &'static str,
    /// Row values in the paper's order: Init, Not, CNot1, CNot2, e^{−iZt},
    /// W, Term, Meas, Total, Qubits.
    pub rows: [u128; 10],
}

/// The row labels of the Section 6 table.
pub const SECTION6_ROWS: [&str; 10] = [
    "Init", "Not", "CNot1", "CNot2", "e^-itZ", "W", "Term", "Meas", "Total", "Qubits",
];

fn section6_column(label: &'static str, bc: &BCircuit) -> Section6Column {
    let gc = bc.gate_count();
    Section6Column {
        label,
        rows: [
            inits(&gc),
            nots_with_controls(&gc, 0),
            nots_with_controls(&gc, 1),
            nots_with_controls(&gc, 2),
            gc.by_name_any_controls("exp(-i%Z)"),
            gc.by_name_any_controls("\"W"),
            terms(&gc),
            gc.by_name("Meas", 0, 0),
            gc.total_logical(),
            u128::from(gc.qubits_in_circuit),
        ],
    }
}

/// Regenerates the Section 6 table: QCL "direct" vs Quipper "orthodox" vs
/// Quipper "template" on the same BWT instance (tree depth 4 — label
/// registers of 6 qubits, matching the paper's 48 W gates — and one
/// timestep).
pub fn bwt_comparison_table() -> Vec<Section6Column> {
    let g = WeldedTree::new(4, [0b0011, 0b0101]);
    let (s, dt) = (1, 0.35);
    vec![
        section6_column("QCL \"direct\"", &bwt_circuit(g, s, dt, Flavor::Qcl)),
        section6_column(
            "Quipper \"orthodox\"",
            &bwt_circuit(g, s, dt, Flavor::Orthodox),
        ),
        section6_column(
            "Quipper \"template\"",
            &bwt_circuit(g, s, dt, Flavor::Template),
        ),
    ]
}

/// Formats the Section 6 table for printing.
pub fn format_section6(cols: &[Section6Column]) -> String {
    let mut s = String::new();
    let _ = write!(s, "{:>8}", "");
    for c in cols {
        let _ = write!(s, "{:>22}", c.label);
    }
    s.push('\n');
    for (i, row) in SECTION6_ROWS.iter().enumerate() {
        let _ = write!(s, "{row:>8}");
        for c in cols {
            let _ = write!(s, "{:>22}", c.rows[i]);
        }
        s.push('\n');
    }
    s
}

// ---------------------------------------------------------------------
// E4: o4_POW17 gate count (paper §5.3.1)
// ---------------------------------------------------------------------

/// Builds `o4_POW17` at oracle width `l` and returns its aggregated gate
/// count — the paper's `./tf -s pow17 -l 4 -n 3 -r 2 -f gatecount`
/// (9632 gates, 71 qubits, 4 inputs, 8 outputs at l = 4).
pub fn pow17_gatecount(l: usize) -> GateCount {
    let bc = Circ::build(&IntTF::new(0, l), |c, x: QIntTF| {
        let (x, x17) = pow17_tf_boxed(c, x);
        (x, x17)
    });
    bc.gate_count()
}

// ---------------------------------------------------------------------
// E5/E6/E7: Triangle Finding counts (paper §5.4)
// ---------------------------------------------------------------------

/// The result of a counted circuit build.
#[derive(Clone, Debug)]
pub struct CountReport {
    /// Aggregated counts.
    pub count: GateCount,
    /// Wall-clock seconds to generate and count.
    pub seconds: f64,
    /// Number of boxed subroutine definitions.
    pub subroutines: usize,
}

/// E6: gate count for just the TF oracle at (l, n) — the paper's
/// `./tf -f gatecount -O -o orthodox -l 31 -n 15 -r 9` reports 2,051,926
/// gates and 1462 qubits.
pub fn tf_oracle_count(l: usize, n: usize) -> CountReport {
    let start = Instant::now();
    let orc = OrthodoxOracle::new(n, l);
    let bc = Circ::build(
        &(vec![false; n], vec![false; n], false),
        |c, (u, w, e): (Vec<Qubit>, Vec<Qubit>, Qubit)| {
            use quipper_algorithms::tf::EdgeOracle as _;
            orc.edge(c, &u, &w, e);
            (u, w, e)
        },
    );
    let count = bc.gate_count();
    CountReport {
        count,
        seconds: start.elapsed().as_secs_f64(),
        subroutines: bc.db.len(),
    }
}

/// E7: gate count for the complete algorithm at (l, n, r) — the paper's
/// `./tf -f gatecount -o orthodox -l 31 -n 15 -r 6` reports
/// 30,189,977,982,990 gates and 4676 qubits "in under two minutes".
pub fn tf_full_count(l: usize, n: usize, r: usize) -> CountReport {
    let start = Instant::now();
    let spec = TfSpec { l, n, r };
    let orc = OrthodoxOracle::new(n, l);
    let bc = a1_qwtfp(spec, &orc);
    let count = bc.gate_count();
    CountReport {
        count,
        seconds: start.elapsed().as_secs_f64(),
        subroutines: bc.db.len(),
    }
}

// ---------------------------------------------------------------------
// E9: the Hex flood-fill oracle (paper §4.6.1: 2.8 M gates at QCS scale)
// ---------------------------------------------------------------------

/// Builds the Hex winner oracle as a reversible circuit and counts it.
/// `sharing` toggles the DSL's hash-consing (the A2 ablation).
pub fn hex_oracle_count(rows: usize, cols: usize, sharing: bool) -> CountReport {
    let start = Instant::now();
    let board = HexBoard::new(rows, cols);
    let dag = hex_winner_dag(board, sharing, None);
    let bc = Circ::build(
        &(vec![false; board.cells()], false),
        |c, (cells, out): (Vec<Qubit>, Qubit)| {
            synth::classical_to_reversible(c, &dag, &cells, &[out]);
            (cells, out)
        },
    );
    let count = bc.gate_count();
    CountReport {
        count,
        seconds: start.elapsed().as_secs_f64(),
        subroutines: bc.db.len(),
    }
}

// ---------------------------------------------------------------------
// E10: the sin(x) oracle (paper §4.6.1: 3,273,010 gates at 32+32 bits)
// ---------------------------------------------------------------------

/// Builds the lifted sin(x) oracle over an `int_bits + frac_bits`
/// fixed-point argument and counts it.
pub fn sin_oracle_count(int_bits: usize, frac_bits: usize) -> CountReport {
    let start = Instant::now();
    let fmt = FPFormat::new(int_bits, frac_bits);
    let dag = sin_dag(fmt);
    let w = fmt.width();
    let bc = Circ::build(&vec![false; w], |c, xs: Vec<Qubit>| {
        let outs = synth::synthesize_clean(c, &dag, &xs);
        (xs, outs)
    });
    let count = bc.gate_count();
    CountReport {
        count,
        seconds: start.elapsed().as_secs_f64(),
        subroutines: bc.db.len(),
    }
}

// ---------------------------------------------------------------------
// E1/E2/E3/E11: small figures
// ---------------------------------------------------------------------

/// E1 / Figure 1: the BWT diffusion timestep, rendered as ASCII art.
pub fn fig1_timestep_ascii(label_bits: usize) -> String {
    let shape = (vec![false; label_bits], vec![false; label_bits], false);
    let bc = Circ::build(&shape, |c, (a, b, r): (Vec<Qubit>, Vec<Qubit>, Qubit)| {
        timestep(c, &a, &b, r, 0.5);
        (a, b, r)
    });
    quipper_circuit::print::to_ascii(&bc.db, &bc.main, 500).expect("small circuit renders")
}

/// E2: the paper's §4.4 example circuits (`mycirc`, `mycirc2`, `mycirc3`,
/// `timestep`, `timestep2`), as labeled ASCII renderings.
pub fn basics_ascii() -> String {
    fn mycirc(c: &mut Circ, a: Qubit, b: Qubit) -> (Qubit, Qubit) {
        c.hadamard(a);
        c.hadamard(b);
        c.cnot(b, a);
        (a, b)
    }
    let mut out = String::new();

    let bc = Circ::build(&(false, false), |c, (a, b)| mycirc(c, a, b));
    let _ = writeln!(out, "mycirc:\n{}", render(&bc));

    let bc = Circ::build(
        &(false, false, false),
        |c, (a, b, ctl): (Qubit, Qubit, Qubit)| {
            mycirc(c, a, b);
            c.with_controls(&ctl, |c| {
                mycirc(c, a, b);
                mycirc(c, b, a);
            });
            mycirc(c, a, ctl);
            (a, b, ctl)
        },
    );
    let _ = writeln!(out, "mycirc2 (with_controls):\n{}", render(&bc));

    let bc = Circ::build(
        &(false, false, false),
        |c, (a, b, q): (Qubit, Qubit, Qubit)| {
            c.with_ancilla(|c, x| {
                c.qnot_ctrl(x, &(a, b));
                c.gate_ctrl(quipper::GateName::H, q, &x);
                c.qnot_ctrl(x, &(a, b));
            });
            (a, b, q)
        },
    );
    let _ = writeln!(out, "mycirc3 (with_ancilla, controlled):\n{}", render(&bc));

    let timestep_fn = |c: &mut Circ, (a, b, t): (Qubit, Qubit, Qubit)| {
        mycirc(c, a, b);
        c.toffoli(t, a, b);
        c.reverse_simple(&(false, false), |c, (a, b)| mycirc(c, a, b), (a, b));
        (a, b, t)
    };
    let bc = Circ::build(&(false, false, false), |c, abt| timestep_fn(c, abt));
    let _ = writeln!(out, "timestep (reverse_simple):\n{}", render(&bc));

    let binary = decompose(GateBase::Binary, &bc);
    let _ = writeln!(
        out,
        "timestep2 (decompose_generic Binary):\n{}",
        render(&binary)
    );
    out
}

/// E3: the parity oracle of §4.6.1 — `template_f` on 4 qubits and its
/// `classical_to_reversible` wrapping.
pub fn parity_ascii() -> String {
    let dag = quipper::classical::Dag::build(4, |b, xs| {
        vec![xs.iter().fold(b.constant(false), |acc, x| acc ^ x.clone())]
    });
    let mut out = String::new();
    let bc = Circ::build(&vec![false; 4], |c, xs: Vec<Qubit>| {
        let (outs, scratch) = synth::synthesize_compute(c, &dag, &xs);
        (xs, outs, scratch)
    });
    let _ = writeln!(
        out,
        "unpack template_f (scratch left alive):\n{}",
        render(&bc)
    );
    let bc = Circ::build(
        &(vec![false; 4], false),
        |c, (xs, t): (Vec<Qubit>, Qubit)| {
            synth::classical_to_reversible(c, &dag, &xs, &[t]);
            (xs, t)
        },
    );
    let _ = writeln!(
        out,
        "classical_to_reversible (unpack template_f):\n{}",
        render(&bc)
    );
    out
}

/// E11: the §4.2.1 scoped-ancilla pair — the same computation with two
/// long-lived ancillas vs explicitly scoped ancillas.
pub fn ancilla_scope_ascii() -> String {
    let mut out = String::new();
    // Unscoped: two ancillas alive for the whole circuit.
    let bc = Circ::build(&(false, false), |c, (a, b): (Qubit, Qubit)| {
        let x = c.qinit_bit(false);
        let y = c.qinit_bit(false);
        c.cnot(x, a);
        c.gate_ctrl(quipper::GateName::H, b, &x);
        c.cnot(x, a);
        c.cnot(y, b);
        c.gate_ctrl(quipper::GateName::H, a, &y);
        c.cnot(y, b);
        c.qterm_bit(false, x);
        c.qterm_bit(false, y);
        (a, b)
    });
    let _ = writeln!(
        out,
        "ancillas with program-length scope ({} qubits):\n{}",
        bc.gate_count().qubits_in_circuit,
        render(&bc)
    );
    // Scoped: the second use reuses the pool.
    let bc = Circ::build(&(false, false), |c, (a, b): (Qubit, Qubit)| {
        c.with_ancilla(|c, x| {
            c.cnot(x, a);
            c.gate_ctrl(quipper::GateName::H, b, &x);
            c.cnot(x, a);
        });
        c.with_ancilla(|c, y| {
            c.cnot(y, b);
            c.gate_ctrl(quipper::GateName::H, a, &y);
            c.cnot(y, b);
        });
        (a, b)
    });
    let _ = writeln!(
        out,
        "explicitly scoped ancillas ({} qubits):\n{}",
        bc.gate_count().qubits_in_circuit,
        render(&bc)
    );
    out
}

/// E5: the a6_QWSH walk-step circuit at small parameters, reported as its
/// gate count plus the boxed-subroutine inventory (the paper's §5.3.2
/// figure is this circuit's rendering).
pub fn qwsh_report(l: usize, n: usize, r: usize) -> (GateCount, String) {
    use quipper_algorithms::tf::qwtfp::{a6_qwsh, QwtfpRegs};
    let spec = TfSpec { l, n, r };
    let orc = OrthodoxOracle::new(n, l);
    let t = spec.tuple_size();
    let mut c = Circ::new();
    let regs = QwtfpRegs {
        tt: (0..t)
            .map(|_| (0..n).map(|_| c.qinit_bit(false)).collect())
            .collect(),
        i: (0..r).map(|_| c.qinit_bit(false)).collect(),
        v: (0..n).map(|_| c.qinit_bit(false)).collect(),
        ee: (0..spec.num_edge_bits())
            .map(|_| c.qinit_bit(false))
            .collect(),
    };
    let regs = a6_qwsh(&mut c, spec, &orc, regs);
    let bc = c.finish(&(regs.tt, regs.i, regs.v, regs.ee));
    let gc = bc.gate_count();
    let names: Vec<String> = bc
        .db
        .iter()
        .map(|(_, d)| format!("{} [{}]", d.name, d.shape))
        .collect();
    (gc, format!("boxed subroutines: {}", names.join(", ")))
}

/// E10 variant: the sin(x) oracle synthesized with width-bounded staged
/// lifting (`synthesize_staged`), trading boundary-copy gates for a far
/// smaller peak width than one-shot Bennett lifting.
pub fn sin_oracle_count_staged(
    int_bits: usize,
    frac_bits: usize,
    stage_nodes: usize,
) -> CountReport {
    let start = Instant::now();
    let fmt = FPFormat::new(int_bits, frac_bits);
    let dag = sin_dag(fmt);
    let w = fmt.width();
    let bc = Circ::build(&vec![false; w], |c, xs: Vec<Qubit>| {
        let outs = synth::synthesize_staged(c, &dag, &xs, stage_nodes);
        (xs, outs)
    });
    let count = bc.gate_count();
    CountReport {
        count,
        seconds: start.elapsed().as_secs_f64(),
        subroutines: bc.db.len(),
    }
}

/// Fault-tolerant resource estimate (T count) for `o4_POW17` at width l —
/// the paper's conclusion motivates exactly this use ("a representation
/// usable for resource estimation using realistic problem sizes", §7).
pub fn pow17_resources(l: usize) -> quipper::decompose::Resources {
    let bc = Circ::build(&IntTF::new(0, l), |c, x: QIntTF| {
        let (x, x17) = pow17_tf_boxed(c, x);
        (x, x17)
    });
    quipper::decompose::resources(&bc)
}

fn render(bc: &BCircuit) -> String {
    quipper_circuit::print::to_ascii(&bc.db, &bc.main, 4000)
        .unwrap_or_else(|_| quipper_circuit::print::to_text(bc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section6_table_has_the_paper_shape() {
        let cols = bwt_comparison_table();
        assert_eq!(cols.len(), 3);
        let (qcl, orth, temp) = (&cols[0], &cols[1], &cols[2]);
        // Headline: QCL produces far more gates (paper: 17358 vs 1300).
        assert!(
            qcl.rows[8] > 5 * orth.rows[8],
            "total: {} vs {}",
            qcl.rows[8],
            orth.rows[8]
        );
        // QCL uses plenty of plain Nots (X conjugation), Quipper almost none.
        assert!(qcl.rows[1] > 20 * orth.rows[1].max(1));
        // QCL never terminates or measures.
        assert_eq!(qcl.rows[6], 0);
        assert_eq!(qcl.rows[7], 0);
        // W and e^{−iZt} counts agree across all three columns (shared
        // diffusion): 4 rotations, 48 W gates at depth 4.
        for c in &cols {
            assert_eq!(c.rows[4], 4, "{}: e^-itZ", c.label);
            assert_eq!(c.rows[5], 48, "{}: W", c.label);
        }
        // Template uses more qubits than orthodox (paper: 108 vs 26), QCL
        // more than orthodox too (paper: 58 vs 26).
        assert!(temp.rows[9] > orth.rows[9]);
        assert!(qcl.rows[9] > orth.rows[9]);
    }

    #[test]
    fn pow17_count_matches_paper_structure() {
        let gc = pow17_gatecount(4);
        assert_eq!(gc.inputs, 4);
        assert_eq!(gc.outputs, 8);
        // Paper: 9632 total gates, 71 qubits; ours is the same order.
        assert!(
            gc.total() > 3_000 && gc.total() < 30_000,
            "total {}",
            gc.total()
        );
        assert!(
            gc.qubits_in_circuit > 30 && gc.qubits_in_circuit < 120,
            "qubits {}",
            gc.qubits_in_circuit
        );
    }

    #[test]
    fn tf_oracle_count_is_paper_order() {
        // Paper at l=31, n=15, r=9: 2,051,926 gates, 1462 qubits.
        let rep = tf_oracle_count(31, 15);
        assert!(
            rep.count.total() > 300_000 && rep.count.total() < 20_000_000,
            "oracle gates {}",
            rep.count.total()
        );
        assert!(
            rep.count.qubits_in_circuit > 500 && rep.count.qubits_in_circuit < 4_000,
            "oracle qubits {}",
            rep.count.qubits_in_circuit
        );
        assert!(rep.seconds < 30.0, "oracle counts quickly");
    }

    #[test]
    fn hex_oracle_sharing_ablation() {
        let shared = hex_oracle_count(4, 4, true);
        let unshared = hex_oracle_count(4, 4, false);
        assert!(
            unshared.count.total() > shared.count.total(),
            "sharing reduces gates: {} vs {}",
            shared.count.total(),
            unshared.count.total()
        );
    }

    #[test]
    fn small_figures_render() {
        assert!(fig1_timestep_ascii(3).contains('W'));
        let basics = basics_ascii();
        assert!(basics.contains("mycirc"));
        assert!(basics.contains("timestep2"));
        assert!(basics.contains('V'), "binary decomposition shows V gates");
        let parity = parity_ascii();
        assert!(parity.contains("classical_to_reversible"));
        let anc = ancilla_scope_ascii();
        assert!(anc.contains("scoped"));
    }

    #[test]
    fn sin_oracle_count_small_format() {
        // Small format for CI; the 32+32 paper-scale number is produced by
        // the tables binary (recorded in EXPERIMENTS.md).
        let rep = sin_oracle_count(4, 12);
        assert!(rep.count.total() > 1_000, "sin oracle is arithmetic-heavy");
        // Clean reversible oracle: inits balance terms except the outputs.
        assert_eq!(
            inits(&rep.count),
            terms(&rep.count) + 16,
            "all scratch uncomputed, 16 output qubits fresh"
        );
    }
}
