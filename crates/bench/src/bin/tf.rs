//! The `tf` executable of the paper's §5.2: "Its command line interface
//! allows the user, for example, to plug in different oracles, show
//! different parts of the circuit, select a gate base, select different
//! output formats, and select parameter values for l, n and r."
//!
//! Supported command lines mirror the paper's examples:
//!
//! ```text
//! tf -s pow17 -l 4 -n 3 -r 2               # show the o4_POW17 subroutine
//! tf -f gatecount -O -o orthodox -l 31 -n 15 -r 9   # oracle only
//! tf -f gatecount -o orthodox -l 31 -n 15 -r 6      # whole algorithm
//! ```
//!
//! Options:
//!   -l, -n, -r INT   parameters (defaults 4, 3, 2)
//!   -s NAME          subroutine: pow17 | mul | square | add | qwsh | oracle
//!   -O               oracle only (the whole edge oracle)
//!   -o NAME          oracle: orthodox (default)
//!   -f FORMAT        gatecount (default) | text | qasm | depth
//!   -b BASE          gate base: logical (default) | toffoli | binary | cliffordt

use quipper::decompose::{decompose, GateBase};
use quipper::{Circ, Qubit};
use quipper_algorithms::tf::qwtfp::{a6_qwsh, QwtfpRegs};
use quipper_algorithms::tf::{a1_qwtfp, EdgeOracle, OrthodoxOracle, TfSpec};
use quipper_arith::qinttf::{add_tf, mul_tf_boxed, pow17_tf_boxed, square_tf_boxed, QIntTF};
use quipper_arith::IntTF;
use quipper_circuit::BCircuit;

struct Options {
    l: usize,
    n: usize,
    r: usize,
    subroutine: Option<String>,
    oracle_only: bool,
    oracle: String,
    format: String,
    base: String,
}

fn parse_args() -> Options {
    let mut opts = Options {
        l: 4,
        n: 3,
        r: 2,
        subroutine: None,
        oracle_only: false,
        oracle: "orthodox".into(),
        format: "gatecount".into(),
        base: "logical".into(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usize_arg = |args: &[String], i: usize, flag: &str| -> usize {
        args.get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("{flag} needs an integer argument"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "-l" => {
                opts.l = usize_arg(&args, i, "-l");
                i += 1;
            }
            "-n" => {
                opts.n = usize_arg(&args, i, "-n");
                i += 1;
            }
            "-r" => {
                opts.r = usize_arg(&args, i, "-r");
                i += 1;
            }
            "-s" => {
                opts.subroutine = args.get(i + 1).cloned();
                i += 1;
            }
            "-O" => opts.oracle_only = true,
            "-o" => {
                opts.oracle = args.get(i + 1).cloned().unwrap_or_default();
                i += 1;
            }
            "-f" => {
                opts.format = args.get(i + 1).cloned().unwrap_or_default();
                i += 1;
            }
            "-b" => {
                opts.base = args.get(i + 1).cloned().unwrap_or_default();
                i += 1;
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

fn build_subroutine(name: &str, opts: &Options) -> BCircuit {
    let l = opts.l;
    match name {
        "pow17" => Circ::build(&IntTF::new(0, l), |c, x: QIntTF| {
            let (x, x17) = pow17_tf_boxed(c, x);
            (x, x17)
        }),
        "mul" => Circ::build(&(IntTF::new(0, l), IntTF::new(0, l)), |c, (x, y)| {
            mul_tf_boxed(c, x, y)
        }),
        "square" => Circ::build(&IntTF::new(0, l), |c, x: QIntTF| square_tf_boxed(c, x)),
        "add" => Circ::build(
            &(IntTF::new(0, l), IntTF::new(0, l)),
            |c, (x, y): (QIntTF, QIntTF)| {
                let s = add_tf(c, &x, &y);
                (x, y, s)
            },
        ),
        "qwsh" => {
            let spec = TfSpec {
                l: opts.l,
                n: opts.n,
                r: opts.r,
            };
            let orc = OrthodoxOracle::new(opts.n, opts.l);
            let t = spec.tuple_size();
            let mut c = Circ::new();
            let regs = QwtfpRegs {
                tt: (0..t)
                    .map(|_| (0..opts.n).map(|_| c.qinit_bit(false)).collect())
                    .collect(),
                i: (0..opts.r).map(|_| c.qinit_bit(false)).collect(),
                v: (0..opts.n).map(|_| c.qinit_bit(false)).collect(),
                ee: (0..spec.num_edge_bits())
                    .map(|_| c.qinit_bit(false))
                    .collect(),
            };
            let regs = a6_qwsh(&mut c, spec, &orc, regs);
            c.finish(&(regs.tt, regs.i, regs.v, regs.ee))
        }
        "oracle" => build_oracle(opts),
        other => {
            eprintln!("unknown subroutine {other} (try pow17, mul, square, add, qwsh, oracle)");
            std::process::exit(2);
        }
    }
}

fn build_oracle(opts: &Options) -> BCircuit {
    let orc = OrthodoxOracle::new(opts.n, opts.l);
    Circ::build(
        &(vec![false; opts.n], vec![false; opts.n], false),
        |c, (u, w, e): (Vec<Qubit>, Vec<Qubit>, Qubit)| {
            orc.edge(c, &u, &w, e);
            (u, w, e)
        },
    )
}

fn main() {
    let opts = parse_args();
    if opts.oracle != "orthodox" {
        eprintln!("only the orthodox oracle is built in (-o orthodox)");
        std::process::exit(2);
    }

    let bc = if let Some(name) = &opts.subroutine {
        build_subroutine(name, &opts)
    } else if opts.oracle_only {
        build_oracle(&opts)
    } else {
        let spec = TfSpec {
            l: opts.l,
            n: opts.n,
            r: opts.r,
        };
        let orc = OrthodoxOracle::new(opts.n, opts.l);
        a1_qwtfp(spec, &orc)
    };

    let bc = match opts.base.as_str() {
        "logical" => bc,
        "toffoli" => decompose(GateBase::Toffoli, &bc),
        "binary" => decompose(GateBase::Binary, &bc),
        "cliffordt" => decompose(GateBase::CliffordT, &bc),
        other => {
            eprintln!("unknown gate base {other}");
            std::process::exit(2);
        }
    };

    match opts.format.as_str() {
        "gatecount" => println!("{}", bc.gate_count()),
        "text" => print!("{}", quipper_circuit::print::to_text(&bc)),
        "qasm" => match quipper_circuit::qasm::to_qasm(&bc) {
            Ok(q) => print!("{q}"),
            Err(e) => {
                eprintln!("cannot export to OpenQASM: {e}");
                std::process::exit(1);
            }
        },
        "depth" => {
            println!(
                "Critical-path depth: {}",
                quipper_circuit::count::depth(&bc.db, &bc.main)
            );
        }
        other => {
            eprintln!("unknown format {other} (try gatecount, text, qasm, depth)");
            std::process::exit(2);
        }
    }
}
