//! Regenerates every table and figure of the paper.
//!
//! Usage: `tables [--exp NAME]` where NAME is one of
//! `fig1`, `basics`, `parity`, `ancilla`, `pow17`, `qwsh`, `tf-oracle`,
//! `tf-full`, `bwt-compare`, `hex-oracle`, `sin-oracle`, or `all`
//! (default). The heavy paper-scale experiments (`tf-full` at l=31,
//! `sin-oracle` at 32+32, `hex-oracle` at 9×7) run in seconds to a couple
//! of minutes.

use quipper_bench as exp;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let exp_name = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");

    let all = exp_name == "all";
    let want = |name: &str| all || exp_name == name;

    if want("fig1") {
        banner("E1 / Figure 1: BWT diffusion timestep (n = 3 label bits)");
        println!("{}", exp::fig1_timestep_ascii(3));
    }
    if want("basics") {
        banner("E2: §4.4 example circuits");
        println!("{}", exp::basics_ascii());
    }
    if want("parity") {
        banner("E3: §4.6.1 parity oracle");
        println!("{}", exp::parity_ascii());
    }
    if want("ancilla") {
        banner("E11: §4.2.1 ancilla scopes");
        println!("{}", exp::ancilla_scope_ascii());
    }
    if want("pow17") {
        banner("E4: o4_POW17 gate count at l=4 (paper: 9632 gates, 71 qubits, 4 in, 8 out)");
        println!("{}", exp::pow17_gatecount(4));
        println!("\nAt l=31 (full oracle width):");
        println!("{}", exp::pow17_gatecount(31));
    }
    if want("resources") {
        banner("Resource estimation: o4_POW17 in the Clifford+T base");
        for l in [4usize, 16, 31] {
            let r = exp::pow17_resources(l);
            println!(
                "l={l:>2}: T count {:>9}, Clifford {:>9}, residual {}, qubits {}",
                r.t_count, r.clifford_count, r.residual, r.qubits
            );
        }
    }
    if want("qwsh") {
        banner("E5: a6_QWSH walk step at l=4, n=3, r=2 (paper §5.3.2)");
        let (gc, subs) = exp::qwsh_report(4, 3, 2);
        println!("{gc}");
        println!("{subs}");
    }
    if want("tf-oracle") {
        banner("E6: TF oracle at l=31, n=15 (paper: 2,051,926 gates, 1462 qubits)");
        let rep = exp::tf_oracle_count(31, 15);
        println!("{}", rep.count);
        println!(
            "generated and counted in {:.2} s ({} boxed subroutines)",
            rep.seconds, rep.subroutines
        );
    }
    if want("tf-full") {
        banner("E7: full TF at l=31, n=15, r=6 (paper: 30,189,977,982,990 gates, 4676 qubits, < 2 min)");
        let rep = exp::tf_full_count(31, 15, 6);
        println!("Total gates: {}", rep.count.total());
        println!("Qubits in circuit: {}", rep.count.qubits_in_circuit);
        println!(
            "generated and counted in {:.2} s ({} boxed subroutines)",
            rep.seconds, rep.subroutines
        );
    }
    if want("bwt-compare") {
        banner("E8: Section 6 table — QCL vs Quipper orthodox vs Quipper template (BWT, depth 4, 1 timestep)");
        println!("{}", exp::format_section6(&exp::bwt_comparison_table()));
        println!("paper:   Init 58/313/777  Not 746/8/0  CNot1 9012/472/344  CNot2 7548/768/1760");
        println!("         e^-itZ 4/4/4  W 48/48/48  Term 0/307/771  Meas 0/6/6  Total 17358/1300/2156  Qubits 58/26/108");
    }
    if want("hex-oracle") {
        banner("E9: Hex flood-fill winner oracle at 9×7 (paper: 2.8 M gates)");
        let rep = exp::hex_oracle_count(9, 7, true);
        println!(
            "with sharing:    {} gates, {} qubits, {:.2} s",
            rep.count.total(),
            rep.count.qubits_in_circuit,
            rep.seconds
        );
        let rep = exp::hex_oracle_count(9, 7, false);
        println!(
            "without sharing: {} gates, {} qubits, {:.2} s  (A2 ablation)",
            rep.count.total(),
            rep.count.qubits_in_circuit,
            rep.seconds
        );
    }
    if want("sin-oracle") {
        banner("E10: sin(x) over 32+32-bit fixed point (paper: 3,273,010 gates)");
        let rep = exp::sin_oracle_count(32, 32);
        println!(
            "one-shot lifting: {} gates, {} qubits, {:.2} s",
            rep.count.total(),
            rep.count.qubits_in_circuit,
            rep.seconds
        );
        let rep = exp::sin_oracle_count_staged(32, 32, 4096);
        println!(
            "staged lifting (4096-node stages): {} gates, {} qubits, {:.2} s",
            rep.count.total(),
            rep.count.qubits_in_circuit,
            rep.seconds
        );
    }
}

fn banner(title: &str) {
    println!("\n======================================================================");
    println!("{title}");
    println!("======================================================================");
}
