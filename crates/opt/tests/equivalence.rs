//! Property tests: every optimizer pipeline is semantics-preserving on
//! random hierarchical circuits.
//!
//! Two observational notions of equivalence are checked against the exact
//! state-vector simulator:
//!
//! * **amplitudes** — for measurement-free circuits, the optimized state
//!   vector equals the original up to one global phase;
//! * **histograms** — for measured circuits, every shot's outcome is
//!   identical under the same seed (the rewrites never add, drop, or
//!   reorder measurements, so the RNG draw sequence lines up).
//!
//! Circuits are generated with deliberate redundancy (inverse-pair
//! injection, mergeable rotation runs, a repeated box) so the pipelines
//! actually fire rather than vacuously passing on irreducible inputs.

use proptest::prelude::*;
use quipper::{Circ, Qubit};
use quipper_circuit::BCircuit;
use quipper_opt::{optimize, OptLevel};
use quipper_sim::complex::Complex;

const QUBITS: usize = 4;

/// Rotation angles the generator draws from: mergeable fractions of π, an
/// exact identity (2π for Z-rotations), and one irrational-ish value.
const ANGLES: [f64; 6] = [
    std::f64::consts::FRAC_PI_4,
    std::f64::consts::FRAC_PI_2,
    std::f64::consts::PI,
    2.0 * std::f64::consts::PI,
    -std::f64::consts::FRAC_PI_4,
    0.37,
];

/// One random gate over the register. Indices are taken mod the register
/// size; coinciding two-qubit wires are skipped at emission.
#[derive(Clone, Copy, Debug)]
enum OGate {
    H(usize),
    X(usize),
    S(usize),
    T(usize),
    Cnot(usize, usize),
    Toffoli(usize, usize, usize),
    Swap(usize, usize),
    Rz(usize, usize),
    Ry(usize, usize),
    CRz(usize, usize, usize),
    GPhase(usize),
}

fn ogate() -> impl Strategy<Value = OGate> {
    let q = 0..QUBITS;
    let a = 0..ANGLES.len();
    prop_oneof![
        q.clone().prop_map(OGate::H),
        q.clone().prop_map(OGate::X),
        q.clone().prop_map(OGate::S),
        q.clone().prop_map(OGate::T),
        (q.clone(), q.clone()).prop_map(|(a, b)| OGate::Cnot(a, b)),
        (q.clone(), q.clone(), q.clone()).prop_map(|(a, b, c)| OGate::Toffoli(a, b, c)),
        (q.clone(), q.clone()).prop_map(|(a, b)| OGate::Swap(a, b)),
        (q.clone(), a.clone()).prop_map(|(w, i)| OGate::Rz(w, i)),
        (q.clone(), a.clone()).prop_map(|(w, i)| OGate::Ry(w, i)),
        (q.clone(), q, a.clone()).prop_map(|(w, c, i)| OGate::CRz(w, c, i)),
        a.prop_map(OGate::GPhase),
    ]
}

fn emit(c: &mut Circ, qs: &[Qubit], g: OGate) {
    match g {
        OGate::H(a) => c.hadamard(qs[a]),
        OGate::X(a) => c.qnot(qs[a]),
        OGate::S(a) => c.gate_s(qs[a]),
        OGate::T(a) => c.gate_t(qs[a]),
        OGate::Cnot(a, b) if a != b => c.cnot(qs[a], qs[b]),
        OGate::Toffoli(t, a, b) if t != a && t != b && a != b => c.toffoli(qs[t], qs[a], qs[b]),
        OGate::Swap(a, b) if a != b => c.swap(qs[a], qs[b]),
        OGate::Rz(w, i) => c.rot("exp(-i%Z)", ANGLES[i], qs[w]),
        OGate::Ry(w, i) => c.rot("Ry(%)", ANGLES[i], qs[w]),
        OGate::CRz(w, ctl, i) if w != ctl => c.rot_ctrl("exp(-i%Z)", ANGLES[i], qs[w], &qs[ctl]),
        OGate::GPhase(i) => c.gphase(ANGLES[i]),
        OGate::Cnot(..) | OGate::Toffoli(..) | OGate::Swap(..) | OGate::CRz(..) => {}
    }
}

/// Emits the gate, then — every `dup_every`-th step — its inverse right
/// after, planting adjacent inverse pairs for the cancel pass. Rotations
/// invert by angle negation; the other generators are self-inverse except
/// S/T, which are simply not duplicated.
fn emit_with_redundancy(c: &mut Circ, qs: &[Qubit], gates: &[OGate], dup_every: usize) {
    for (i, &g) in gates.iter().enumerate() {
        emit(c, qs, g);
        if i % dup_every != 0 {
            continue;
        }
        match g {
            OGate::Rz(w, a) => c.rot("exp(-i%Z)", -ANGLES[a], qs[w]),
            OGate::Ry(w, a) => c.rot("Ry(%)", -ANGLES[a], qs[w]),
            OGate::CRz(w, ctl, a) if w != ctl => {
                c.rot_ctrl("exp(-i%Z)", -ANGLES[a], qs[w], &qs[ctl]);
            }
            OGate::S(_) | OGate::T(_) | OGate::GPhase(_) | OGate::CRz(..) => {}
            self_inverse => emit(c, qs, self_inverse),
        }
    }
}

/// A hierarchical circuit: redundant main-scope prefix, a repeated box of
/// the body gates, redundant suffix. `measured` appends measurements.
fn hierarchical(
    main_gates: &[OGate],
    body_gates: &[OGate],
    reps: u64,
    dup_every: usize,
    measured: bool,
) -> BCircuit {
    let mut c = Circ::new();
    let qs: Vec<Qubit> = (0..QUBITS).map(|_| c.qinit_bit(false)).collect();
    emit_with_redundancy(&mut c, &qs, main_gates, dup_every);
    let body: Vec<OGate> = body_gates.to_vec();
    let qs = c.box_repeat("body", "", reps, qs, move |c, qs: Vec<Qubit>| {
        emit_with_redundancy(c, &qs, &body, dup_every);
        qs
    });
    emit_with_redundancy(&mut c, &qs, main_gates, dup_every.max(2));
    if measured {
        let ms: Vec<_> = qs.into_iter().map(|q| c.measure_bit(q)).collect();
        c.finish(&ms)
    } else {
        c.finish(&qs)
    }
}

/// Asserts `b = e^{iφ}·a` for a single phase φ, within tolerance. Panics
/// on divergence (proptest reports the panic as the failing case).
fn assert_equal_up_to_global_phase(a: &[Complex], b: &[Complex]) {
    assert_eq!(a.len(), b.len(), "state dimensions differ");
    let pivot = a
        .iter()
        .position(|amp| amp.norm_sqr() > 1e-12)
        .expect("state vector cannot be all-zero");
    assert!(b[pivot].norm_sqr() > 1e-12, "support changed at pivot");
    // phase = b[pivot] / a[pivot]; |phase| must be 1.
    let (ar, ai) = (a[pivot].re, a[pivot].im);
    let (br, bi) = (b[pivot].re, b[pivot].im);
    let n = ar * ar + ai * ai;
    let phase_re = (br * ar + bi * ai) / n;
    let phase_im = (bi * ar - br * ai) / n;
    assert!(
        (phase_re * phase_re + phase_im * phase_im - 1.0).abs() < 1e-9,
        "pivot ratio is not a pure phase"
    );
    for (x, y) in a.iter().zip(b) {
        let rot_re = x.re * phase_re - x.im * phase_im;
        let rot_im = x.re * phase_im + x.im * phase_re;
        let d = (y.re - rot_re).powi(2) + (y.im - rot_im).powi(2);
        assert!(d < 1e-18, "amplitudes diverge: d² = {d}");
    }
}

const LEVELS: [OptLevel; 3] = [OptLevel::Off, OptLevel::Default, OptLevel::Aggressive];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Measurement-free circuits: the optimized state vector equals the
    /// original up to one global phase, at every level.
    #[test]
    fn optimized_state_vectors_match_up_to_global_phase(
        main_gates in prop::collection::vec(ogate(), 1..12),
        body_gates in prop::collection::vec(ogate(), 1..8),
        reps in 1u64..4,
        dup_every in 1usize..4,
    ) {
        let bc = hierarchical(&main_gates, &body_gates, reps, dup_every, false);
        bc.validate().unwrap();
        let reference = quipper_sim::run(&bc, &[], 11).unwrap();
        for level in LEVELS {
            let (opt, report) = optimize(&bc, level);
            opt.validate().unwrap();
            prop_assert_eq!(report.level, level);
            let got = quipper_sim::run(&opt, &[], 11).unwrap();
            // Compare in the canonical wire-sorted basis: the simulator may
            // absorb Swap gates into slot relabeling, so the raw amplitude
            // order depends on how many swaps each side executed.
            assert_equal_up_to_global_phase(
                &reference.state.canonical_amplitudes(),
                &got.state.canonical_amplitudes(),
            );
        }
    }

    /// Measured circuits: per-shot outcomes are bit-identical under the
    /// same seed, so whole histograms coincide. The rewrites never touch
    /// measurements, so both runs draw randomness in the same order from
    /// identical distributions.
    #[test]
    fn optimized_circuits_sample_identical_histograms(
        main_gates in prop::collection::vec(ogate(), 1..10),
        body_gates in prop::collection::vec(ogate(), 1..6),
        reps in 1u64..3,
        dup_every in 1usize..4,
    ) {
        let bc = hierarchical(&main_gates, &body_gates, reps, dup_every, true);
        bc.validate().unwrap();
        for level in LEVELS {
            let (opt, _) = optimize(&bc, level);
            opt.validate().unwrap();
            for seed in 0..6u64 {
                let want = quipper_sim::run(&bc, &[], seed).unwrap().classical_outputs();
                let got = quipper_sim::run(&opt, &[], seed).unwrap().classical_outputs();
                prop_assert_eq!(&want, &got, "seed {} level {}", seed, level);
            }
        }
    }
}
