//! Pass-manager circuit optimizer over the hierarchical circuit IR.
//!
//! Quipper (PLDI 2013, §5.4) treats circuits as data to be *transformed*:
//! the paper's `-f gatecount` pipelines run decomposition and rewriting
//! passes over circuits far too large to expand. This crate reproduces that
//! architecture as a [`PassManager`]: an ordered pipeline of scope-local
//! rewrite passes over [`BCircuit`], each reporting its own gate delta.
//!
//! The pipeline (selected by [`OptLevel`]):
//!
//! 1. **Facts-seeded cleanup** — consumes the linter's structured
//!    redundancy facts ([`quipper_lint::facts`], QL030–QL032) instead of
//!    re-deriving them: deletes statically blocked gates and cancelling
//!    pairs, drops provably-constant controls.
//! 2. **Commutation-aware cancellation** — deletes inverse pairs that
//!    become adjacent after commuting past neighbours
//!    ([`quipper_circuit::commute`]).
//! 3. **Rotation merging** — folds runs of same-family rotations on a
//!    wire into one gate and drops identity rotations and unobservable
//!    global phases.
//! 4. **Phase-polynomial re-synthesis** — merges phase gates acting on the
//!    same parity function across {CNOT, X, Swap} regions
//!    ([`quipper_circuit::pauli::phase_groups`]), cutting T-count where
//!    adjacency-based merging cannot.
//! 5. **Clifford pushing** — deletes terminal diagonal gates absorbed by
//!    measurements and discards (the measurement-frame absorption).
//! 6. **Binary decomposition** (`Aggressive` only) — rewrites to a
//!    constrained target set where every gate touches at most two wires
//!    ([`quipper::decompose`]), then re-runs the cleanup passes over
//!    the expansion.
//!
//! A whole-pipeline revert guard hands back the untouched input if the
//! final circuit somehow ends up larger (recorded as an `opt.revert` pass),
//! so no level ever reports more gates than it was given.
//!
//! Passes preserve hierarchy: a rewrite inside a box body optimizes every
//! call site at once, which is what makes optimizing trillion-gate
//! circuits tractable. [`optimize`] is the one-call entry point; it emits
//! `opt.*` metrics and per-pass `Compile` spans through `quipper-trace`.

mod passes;

use std::fmt;
use std::time::{Duration, Instant};

use quipper_circuit::{BCircuit, GateCount};
use quipper_lint::FactScope;
use quipper_trace::{names, span, Phase};

/// How hard the optimizer works on a circuit before planning.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum OptLevel {
    /// No rewriting at all: plans are built from the circuit exactly as
    /// authored (bit-identical to the pre-optimizer pipeline).
    Off,
    /// Facts-seeded cleanup, commutation-aware cancellation, rotation
    /// merging, phase-polynomial re-synthesis and Clifford pushing. Never
    /// increases the gate count.
    #[default]
    Default,
    /// Everything in `Default`, then decomposition to the binary target
    /// set (every gate on at most two wires) with a full cleanup round
    /// (facts, cancellation, merging) over the expansion. If the
    /// decomposed-and-cleaned circuit still has more gates than before
    /// decomposition, the pipeline reverts to the pre-decompose circuit
    /// (recorded as an `opt.revert` pass), so `Aggressive` never reports
    /// more gates than `Default`.
    Aggressive,
}

impl OptLevel {
    /// The wire-format / CLI name of the level.
    pub fn as_str(self) -> &'static str {
        match self {
            OptLevel::Off => "off",
            OptLevel::Default => "default",
            OptLevel::Aggressive => "aggressive",
        }
    }

    /// Parses the wire-format name back into a level.
    pub fn parse(s: &str) -> Option<OptLevel> {
        match s {
            "off" => Some(OptLevel::Off),
            "default" => Some(OptLevel::Default),
            "aggressive" => Some(OptLevel::Aggressive),
            _ => None,
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One pass's contribution, in hierarchical (multiplied-through-boxes)
/// gate counts.
#[derive(Clone, PartialEq, Debug)]
pub struct PassStats {
    /// Pass name as it appears in trace spans (`opt.cancel` …).
    pub name: &'static str,
    /// Total gates entering the pass.
    pub gates_before: u128,
    /// Total gates leaving the pass.
    pub gates_after: u128,
    /// Individual rewrites applied (deletions, merges, control drops,
    /// expansions). A pass can rewrite without shrinking — two rotations
    /// merging into one is one rewrite, net −1 gate.
    pub rewrites: u64,
}

impl PassStats {
    /// Net gates removed (negative when the pass grew the circuit).
    pub fn removed(&self) -> i128 {
        self.gates_before as i128 - self.gates_after as i128
    }
}

/// The full result of an optimizer run: per-class counts before and after,
/// plus per-pass deltas.
#[derive(Clone, PartialEq, Debug)]
pub struct OptReport {
    /// The level the pipeline ran at.
    pub level: OptLevel,
    /// One entry per executed pass, in pipeline order.
    pub passes: Vec<PassStats>,
    /// Aggregated gate count of the input circuit.
    pub before: GateCount,
    /// Aggregated gate count of the optimized circuit.
    pub after: GateCount,
    /// Wall time spent in the pipeline.
    pub elapsed: Duration,
}

impl OptReport {
    /// Total gates entering the pipeline.
    pub fn gates_before(&self) -> u128 {
        self.before.total()
    }

    /// Total gates leaving the pipeline.
    pub fn gates_after(&self) -> u128 {
        self.after.total()
    }

    /// Net gates removed by the whole pipeline (negative = grew).
    pub fn removed(&self) -> i128 {
        self.gates_before() as i128 - self.gates_after() as i128
    }

    /// Total rewrites across all passes.
    pub fn rewrites(&self) -> u64 {
        self.passes.iter().map(|p| p.rewrites).sum()
    }

    /// Whether the pipeline discarded the decomposition because it grew the
    /// circuit. When true, the output may still contain gates wider than
    /// the binary target set.
    pub fn reverted(&self) -> bool {
        self.passes.iter().any(|p| p.name == "opt.revert")
    }

    /// The compact, copyable form carried on execution reports.
    pub fn summary(&self) -> OptSummary {
        OptSummary {
            level: self.level,
            gates_before: u64::try_from(self.gates_before()).unwrap_or(u64::MAX),
            gates_after: u64::try_from(self.gates_after()).unwrap_or(u64::MAX),
            rewrites: self.rewrites(),
        }
    }
}

impl fmt::Display for OptReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "opt({}): {} -> {} gates ({:+}) in {}",
            self.level,
            self.gates_before(),
            self.gates_after(),
            -self.removed(),
            quipper_trace::fmt_duration(self.elapsed),
        )?;
        for p in &self.passes {
            writeln!(
                f,
                "  {:<14} {:>8} -> {:<8} ({} rewrites)",
                p.name, p.gates_before, p.gates_after, p.rewrites
            )?;
        }
        Ok(())
    }
}

/// Saturated-to-`u64` digest of an [`OptReport`], small enough to ride on
/// every `ExecReport`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct OptSummary {
    /// The level the pipeline ran at.
    pub level: OptLevel,
    /// Total gates before, saturated to `u64`.
    pub gates_before: u64,
    /// Total gates after, saturated to `u64`.
    pub gates_after: u64,
    /// Total rewrites applied.
    pub rewrites: u64,
}

impl fmt::Display for OptSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}->{}",
            self.level, self.gates_before, self.gates_after
        )
    }
}

/// The passes a pipeline can schedule.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum PassKind {
    FactsCleanup,
    Cancel,
    Merge,
    PhasePoly,
    CliffordPush,
    DecomposeBinary,
}

impl PassKind {
    fn name(self) -> &'static str {
        match self {
            PassKind::FactsCleanup => "opt.facts",
            PassKind::Cancel => "opt.cancel",
            PassKind::Merge => "opt.merge",
            PassKind::PhasePoly => "opt.phasepoly",
            PassKind::CliffordPush => "opt.clifford_push",
            PassKind::DecomposeBinary => "opt.decompose",
        }
    }
}

/// An ordered pipeline of rewrite passes.
pub struct PassManager {
    pipeline: Vec<PassKind>,
}

impl PassManager {
    /// The standard pipeline for a level. `Off` is the empty pipeline.
    pub fn for_level(level: OptLevel) -> PassManager {
        use PassKind::*;
        let pipeline = match level {
            OptLevel::Off => vec![],
            // Phase-polynomial re-synthesis runs after merging (merging
            // normalizes adjacent runs first, phasepoly catches the
            // non-adjacent same-parity remainder); Clifford pushing then
            // strips what became terminal. The second facts round sees the
            // dataflow those deletions exposed (a deleted H·H pair can turn
            // a wire back into a known constant); the trailing cancel
            // catches pairs exposed by merges and facts deletions.
            OptLevel::Default => vec![
                FactsCleanup,
                Cancel,
                Merge,
                PhasePoly,
                CliffordPush,
                FactsCleanup,
                Cancel,
            ],
            // The prefix before `DecomposeBinary` is exactly the `Default`
            // pipeline, so the revert-on-growth snapshot (taken just before
            // decomposition) is never worse than the `Default` result. The
            // expansion gets the same full cleanup treatment — including a
            // facts round, which sees the constants that decomposition's
            // ancilla plumbing exposes.
            OptLevel::Aggressive => vec![
                FactsCleanup,
                Cancel,
                Merge,
                PhasePoly,
                CliffordPush,
                FactsCleanup,
                Cancel,
                DecomposeBinary,
                FactsCleanup,
                Cancel,
                Merge,
                PhasePoly,
                CliffordPush,
                FactsCleanup,
                Cancel,
            ],
        };
        PassManager { pipeline }
    }

    /// The PR 6-era `Default` pipeline — cleanup, cancellation and merging
    /// only, without phase-polynomial re-synthesis or Clifford pushing.
    /// Kept as a benchmarking baseline so T-count improvements from the
    /// newer passes are measured against a fixed reference.
    pub fn baseline_default() -> PassManager {
        use PassKind::*;
        PassManager {
            pipeline: vec![FactsCleanup, Cancel, Merge, FactsCleanup, Cancel],
        }
    }

    /// Whether the pipeline schedules no passes.
    pub fn is_empty(&self) -> bool {
        self.pipeline.is_empty()
    }

    /// The scheduled pass names, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.pipeline.iter().map(|p| p.name()).collect()
    }

    /// Runs the pipeline, returning the rewritten circuit and one
    /// [`PassStats`] per executed pass.
    pub fn run(&self, bc: &BCircuit) -> (BCircuit, Vec<PassStats>) {
        let input_total = bc.gate_count().total();
        let mut current = bc.clone();
        let mut stats = Vec::with_capacity(self.pipeline.len());
        // Pre-decompose snapshot: if decomposition plus its cleanup rounds
        // end up *larger* than the circuit they started from, keep the
        // smaller circuit instead.
        let mut snapshot: Option<(BCircuit, u128)> = None;
        for &kind in &self.pipeline {
            if kind == PassKind::DecomposeBinary {
                snapshot = Some((current.clone(), current.gate_count().total()));
            }
            let _span = span(Phase::Compile, kind.name());
            let gates_before = current.gate_count().total();
            let mut rewrites = 0u64;
            current = match kind {
                PassKind::FactsCleanup => passes::facts_cleanup(&current, &mut rewrites),
                PassKind::Cancel => passes::map_scopes(&current, |_, c| {
                    passes::cancel_pass(&c.gates, &mut rewrites)
                }),
                PassKind::Merge => passes::map_scopes(&current, |scope, c| {
                    passes::merge_pass(&c.gates, scope == FactScope::Main, &mut rewrites)
                }),
                PassKind::PhasePoly => {
                    let (mut merged, mut removed) = (0u64, 0u64);
                    let out = passes::map_scopes(&current, |_, c| {
                        passes::phasepoly_pass(c, &mut rewrites, &mut merged, &mut removed)
                    });
                    quipper_trace::count(names::OPT_PHASEPOLY_MERGED, merged);
                    quipper_trace::count(names::OPT_PHASEPOLY_REMOVED, removed);
                    out
                }
                PassKind::CliffordPush => {
                    let mut absorbed = 0u64;
                    let out = passes::map_scopes(&current, |scope, c| {
                        passes::clifford_push_pass(
                            &c.gates,
                            scope == FactScope::Main,
                            &mut rewrites,
                            &mut absorbed,
                        )
                    });
                    quipper_trace::count(names::OPT_CLIFFORD_ABSORBED, absorbed);
                    out
                }
                PassKind::DecomposeBinary => {
                    rewrites = passes::count_wide_gates(&current);
                    quipper::decompose::decompose(quipper::decompose::GateBase::Binary, &current)
                }
            };
            stats.push(PassStats {
                name: kind.name(),
                gates_before,
                gates_after: current.gate_count().total(),
                rewrites,
            });
        }
        if let Some((snap, snap_total)) = snapshot {
            let final_total = current.gate_count().total();
            if final_total > snap_total {
                let _span = span(Phase::Compile, "opt.revert");
                stats.push(PassStats {
                    name: "opt.revert",
                    gates_before: final_total,
                    gates_after: snap_total,
                    rewrites: 1,
                });
                current = snap;
            }
        }
        // Whole-pipeline guard: no run may hand back more gates than it was
        // given. The non-decompose passes individually never grow, so this
        // only fires on pathological inputs — but the invariant is cheap to
        // enforce unconditionally.
        let final_total = current.gate_count().total();
        if final_total > input_total {
            let _span = span(Phase::Compile, "opt.revert");
            stats.push(PassStats {
                name: "opt.revert",
                gates_before: final_total,
                gates_after: input_total,
                rewrites: 1,
            });
            quipper_trace::count(names::OPT_REVERTED, 1);
            current = bc.clone();
        }
        (current, stats)
    }
}

/// Optimizes a circuit at the given level.
///
/// `Off` returns a clone of the input untouched (and an empty pass list).
/// The optimized circuit is structurally valid whenever the input is, and
/// semantically equivalent up to global phase; the report carries
/// aggregated gate counts by class before and after, and per-pass deltas.
pub fn optimize(bc: &BCircuit, level: OptLevel) -> (BCircuit, OptReport) {
    let start = Instant::now();
    let _span = span(Phase::Compile, "opt");
    let before = bc.gate_count();
    let pm = PassManager::for_level(level);
    let (out, pass_stats) = if pm.is_empty() {
        (bc.clone(), Vec::new())
    } else {
        pm.run(bc)
    };
    let after = if pass_stats.is_empty() {
        before.clone()
    } else {
        out.gate_count()
    };
    let report = OptReport {
        level,
        passes: pass_stats,
        before,
        after,
        elapsed: start.elapsed(),
    };
    quipper_trace::count(
        names::OPT_GATES_IN,
        u64::try_from(report.gates_before()).unwrap_or(u64::MAX),
    );
    quipper_trace::count(
        names::OPT_GATES_OUT,
        u64::try_from(report.gates_after()).unwrap_or(u64::MAX),
    );
    quipper_trace::count(
        names::OPT_REMOVED,
        u64::try_from(report.removed().max(0)).unwrap_or(u64::MAX),
    );
    quipper_trace::count(names::OPT_REWRITES, report.rewrites());
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quipper_circuit::{Circuit, CircuitDb, Control, Gate, GateName, SubDef, Wire, WireType};

    fn q(w: u32) -> (Wire, WireType) {
        (Wire(w), WireType::Quantum)
    }

    fn main_only(gates: Vec<Gate>, wires: u32) -> BCircuit {
        let mut c = Circuit::with_inputs((0..wires).map(q).collect());
        c.gates = gates;
        c.outputs = c.inputs.clone();
        c.recompute_wire_bound();
        BCircuit {
            db: CircuitDb::new(),
            main: c,
        }
    }

    fn rz(angle: f64, wire: u32) -> Gate {
        Gate::QRot {
            name: "exp(-i%Z)".into(),
            inverted: false,
            angle,
            targets: vec![Wire(wire)],
            controls: vec![],
        }
    }

    #[test]
    fn off_is_the_identity_pipeline() {
        let bc = main_only(
            vec![
                Gate::unary(GateName::H, Wire(0)),
                Gate::unary(GateName::H, Wire(0)),
            ],
            1,
        );
        let (out, report) = optimize(&bc, OptLevel::Off);
        assert_eq!(out, bc);
        assert!(report.passes.is_empty());
        assert_eq!(report.removed(), 0);
    }

    #[test]
    fn adjacent_inverse_pairs_cancel() {
        let bc = main_only(
            vec![
                Gate::unary(GateName::H, Wire(0)),
                Gate::unary(GateName::H, Wire(0)),
                Gate::cnot(Wire(1), Wire(0)),
                Gate::cnot(Wire(1), Wire(0)),
            ],
            2,
        );
        let (out, report) = optimize(&bc, OptLevel::Default);
        assert!(out.main.gates.is_empty(), "got {:?}", out.main.gates);
        assert_eq!(report.gates_after(), 0);
        assert!(report.rewrites() >= 2);
    }

    #[test]
    fn cancellation_commutes_past_diagonal_gates() {
        // T(0) is Z-diagonal on wire 0, as is the CNOT's control there: the
        // pair of CNOTs cancels through it. The linter's adjacency-only
        // QL030 cannot see this pair.
        let bc = main_only(
            vec![
                Gate::cnot(Wire(1), Wire(0)),
                Gate::unary(GateName::T, Wire(0)),
                Gate::cnot(Wire(1), Wire(0)),
            ],
            2,
        );
        let (out, _) = optimize(&bc, OptLevel::Default);
        assert_eq!(out.main.gates, vec![Gate::unary(GateName::T, Wire(0))]);
    }

    #[test]
    fn blocking_gates_prevent_unsound_cancellation() {
        // H Z H is X, not the identity: Z is opaque to H's wire action.
        let bc = main_only(
            vec![
                Gate::unary(GateName::H, Wire(0)),
                Gate::unary(GateName::Z, Wire(0)),
                Gate::unary(GateName::H, Wire(0)),
            ],
            1,
        );
        let (out, report) = optimize(&bc, OptLevel::Default);
        assert_eq!(out.main.gates.len(), 3);
        assert_eq!(report.removed(), 0);
    }

    #[test]
    fn rotations_merge_and_identities_vanish() {
        let bc = main_only(
            vec![
                rz(0.25, 0),
                Gate::cnot(Wire(1), Wire(0)), // Z-diagonal on wire 0: transparent
                rz(-0.25, 0),
                rz(0.5, 1),
                rz(0.25, 1),
            ],
            2,
        );
        let (out, _) = optimize(&bc, OptLevel::Default);
        assert_eq!(
            out.main.gates,
            vec![Gate::cnot(Wire(1), Wire(0)), rz(0.75, 1)]
        );
    }

    #[test]
    fn ry_does_not_drop_at_two_pi() {
        // Ry(2π) = −I: a global phase that turns relative under controls.
        let ry = |angle: f64| Gate::QRot {
            name: "Ry(%)".into(),
            inverted: false,
            angle,
            targets: vec![Wire(0)],
            controls: vec![],
        };
        let tau = std::f64::consts::TAU;
        let bc = main_only(vec![ry(tau / 2.0), ry(tau / 2.0)], 1);
        let (out, _) = optimize(&bc, OptLevel::Default);
        assert_eq!(out.main.gates, vec![ry(tau)]);
        // At 4π the family really is the identity.
        let bc = main_only(vec![ry(tau), ry(tau)], 1);
        let (out, _) = optimize(&bc, OptLevel::Default);
        assert!(out.main.gates.is_empty());
    }

    #[test]
    fn global_phase_drops_in_main_but_not_in_boxes() {
        let phase = Gate::GPhase {
            angle: 0.5,
            controls: vec![],
        };
        let bc = main_only(vec![phase.clone()], 1);
        let (out, _) = optimize(&bc, OptLevel::Default);
        assert!(out.main.gates.is_empty());

        // Inside a box the phase must survive: a controlled call site
        // would turn it into a relative phase.
        let mut db = CircuitDb::new();
        let mut body = Circuit::with_inputs(vec![q(0)]);
        body.gates = vec![phase.clone()];
        body.outputs = body.inputs.clone();
        let id = db.insert(SubDef {
            name: "ph".into(),
            shape: "".into(),
            circuit: body,
        });
        let mut main = Circuit::with_inputs(vec![q(0), q(1)]);
        main.gates = vec![Gate::Subroutine {
            id,
            inverted: false,
            inputs: vec![Wire(0)],
            outputs: vec![Wire(0)],
            controls: vec![Control::positive(Wire(1))],
            repetitions: 1,
        }];
        main.outputs = main.inputs.clone();
        main.recompute_wire_bound();
        let bc = BCircuit { db, main };
        let (out, _) = optimize(&bc, OptLevel::Default);
        assert_eq!(out.db.get(id).unwrap().circuit.gates, vec![phase]);
    }

    #[test]
    fn facts_seeded_cleanup_uses_lint_redundancy() {
        // An ancilla initialized |1⟩: the control on it is constant-true
        // (QL031) and a negative control on it never fires (QL032).
        let a = Wire(1);
        let bc = main_only(
            vec![
                Gate::QInit {
                    value: true,
                    wire: a,
                },
                Gate::unary(GateName::X, Wire(0))
                    .with_controls(&[Control::positive(a)])
                    .unwrap(),
                Gate::unary(GateName::Z, Wire(0))
                    .with_controls(&[Control::negative(a)])
                    .unwrap(),
                Gate::QTerm {
                    value: true,
                    wire: a,
                },
            ],
            1,
        );
        let (out, report) = optimize(&bc, OptLevel::Default);
        assert_eq!(
            out.main.gates,
            vec![
                Gate::QInit {
                    value: true,
                    wire: a
                },
                Gate::unary(GateName::X, Wire(0)),
                Gate::QTerm {
                    value: true,
                    wire: a
                },
            ]
        );
        let facts_pass = &report.passes[0];
        assert_eq!(facts_pass.name, "opt.facts");
        assert!(facts_pass.rewrites >= 2);
    }

    #[test]
    fn box_bodies_optimize_once_for_all_call_sites() {
        let mut db = CircuitDb::new();
        let mut body = Circuit::with_inputs(vec![q(0)]);
        body.gates = vec![
            Gate::unary(GateName::T, Wire(0)),
            Gate::unary(GateName::H, Wire(0)),
            Gate::unary(GateName::H, Wire(0)),
        ];
        body.outputs = body.inputs.clone();
        let id = db.insert(SubDef {
            name: "b".into(),
            shape: "".into(),
            circuit: body,
        });
        let mut main = Circuit::with_inputs(vec![q(0)]);
        main.gates = vec![Gate::Subroutine {
            id,
            inverted: false,
            inputs: vec![Wire(0)],
            outputs: vec![Wire(0)],
            controls: vec![],
            repetitions: 1_000_000,
        }];
        main.outputs = main.inputs.clone();
        let bc = BCircuit { db, main };
        assert_eq!(bc.gate_count().total(), 3_000_000);
        let (out, report) = optimize(&bc, OptLevel::Default);
        assert_eq!(out.db.get(id).unwrap().circuit.gates.len(), 1);
        assert_eq!(report.gates_after(), 1_000_000);
        // Ids survived, so the call still resolves.
        out.validate().unwrap();
    }

    #[test]
    fn aggressive_decomposes_to_binary_gates_or_reverts() {
        let bc = main_only(
            vec![
                Gate::toffoli(Wire(2), Wire(0), Wire(1)),
                Gate::unary(GateName::H, Wire(0)),
            ],
            3,
        );
        let (out, report) = optimize(&bc, OptLevel::Aggressive);
        out.validate().unwrap();
        assert!(report
            .passes
            .iter()
            .any(|p| p.name == "opt.decompose" && p.rewrites >= 1));
        if report.reverted() {
            // Decomposing one Toffoli grows the circuit, so the pipeline
            // must hand back the pre-decompose circuit: no worse than
            // Default on gate count.
            let (_, default_report) = optimize(&bc, OptLevel::Default);
            assert!(report.gates_after() <= default_report.gates_after());
            assert_eq!(out.main.gates.len(), 2);
        } else {
            for (_, def) in out.db.iter() {
                for g in &def.circuit.gates {
                    let mut wires = 0;
                    g.for_each_wire(&mut |_| wires += 1);
                    assert!(wires <= 2, "wide gate survived: {g:?}");
                }
            }
            for g in &out.main.gates {
                let mut wires = 0;
                g.for_each_wire(&mut |_| wires += 1);
                assert!(wires <= 2, "wide gate survived in main: {g:?}");
            }
        }
    }

    #[test]
    fn aggressive_never_exceeds_default_gate_count() {
        // A mixed circuit with a wide gate and some cancelable structure.
        let bc = main_only(
            vec![
                Gate::unary(GateName::H, Wire(0)),
                Gate::toffoli(Wire(2), Wire(0), Wire(1)),
                Gate::unary(GateName::T, Wire(1)),
                Gate::toffoli(Wire(2), Wire(0), Wire(1)),
                Gate::unary(GateName::H, Wire(0)),
            ],
            3,
        );
        let (_, default_report) = optimize(&bc, OptLevel::Default);
        let (out, aggressive_report) = optimize(&bc, OptLevel::Aggressive);
        out.validate().unwrap();
        assert!(
            aggressive_report.gates_after() <= default_report.gates_after(),
            "aggressive ({}) regressed past default ({})",
            aggressive_report.gates_after(),
            default_report.gates_after(),
        );
    }

    #[test]
    fn phasepoly_merges_rotations_across_cnots() {
        // T(0) · CNOT(1←0) · T(0): the CNOT's control leaves wire 0's
        // parity unchanged, so the two T's share one phase-polynomial term
        // and fuse into a single S — invisible to adjacency-based merging.
        let bc = main_only(
            vec![
                Gate::unary(GateName::T, Wire(0)),
                Gate::cnot(Wire(1), Wire(0)),
                Gate::unary(GateName::T, Wire(0)),
            ],
            2,
        );
        let (out, report) = optimize(&bc, OptLevel::Default);
        assert_eq!(
            out.main.gates,
            vec![
                Gate::unary(GateName::S, Wire(0)),
                Gate::cnot(Wire(1), Wire(0)),
            ]
        );
        assert!(report
            .passes
            .iter()
            .any(|p| p.name == "opt.phasepoly" && p.rewrites >= 1));
    }

    #[test]
    fn phasepoly_deletes_identity_terms() {
        // T · CNOT · T†: the same parity term sums to zero — both phases
        // vanish. (The cancel pass can also reach this one by commuting
        // through the Z-diagonal CNOT control; the pipeline result is what
        // matters.)
        let tdg = Gate::QGate {
            name: GateName::T,
            inverted: true,
            targets: vec![Wire(0)],
            controls: vec![],
        };
        let bc = main_only(
            vec![
                Gate::unary(GateName::T, Wire(0)),
                Gate::cnot(Wire(1), Wire(0)),
                tdg,
            ],
            2,
        );
        let (out, _) = optimize(&bc, OptLevel::Default);
        assert_eq!(out.main.gates, vec![Gate::cnot(Wire(1), Wire(0))]);
    }

    #[test]
    fn clifford_push_absorbs_terminal_diagonals_into_measurement() {
        // S and T are Z-diagonal: ahead of a computational-basis
        // measurement they only add unobservable per-branch phases. The H
        // is not diagonal and must survive.
        let bc = main_only(
            vec![
                Gate::unary(GateName::H, Wire(0)),
                Gate::unary(GateName::S, Wire(0)),
                Gate::unary(GateName::T, Wire(0)),
                Gate::QMeas { wire: Wire(0) },
            ],
            1,
        );
        let (out, report) = optimize(&bc, OptLevel::Default);
        assert_eq!(
            out.main.gates,
            vec![
                Gate::unary(GateName::H, Wire(0)),
                Gate::QMeas { wire: Wire(0) },
            ]
        );
        assert!(report
            .passes
            .iter()
            .any(|p| p.name == "opt.clifford_push" && p.rewrites >= 1));
    }

    #[test]
    fn clifford_push_absorbs_anything_before_a_discard() {
        // The X is arbitrary on wire 1, but wire 1 is discarded with
        // nothing else touching it — the action is traced out. Wire 0's
        // measurement blocks nothing here because the X doesn't touch it.
        let bc = main_only(
            vec![
                Gate::unary(GateName::H, Wire(0)),
                Gate::unary(GateName::X, Wire(1)),
                Gate::QMeas { wire: Wire(0) },
                Gate::QDiscard { wire: Wire(1) },
            ],
            2,
        );
        let (out, _) = optimize(&bc, OptLevel::Default);
        assert_eq!(
            out.main.gates,
            vec![
                Gate::unary(GateName::H, Wire(0)),
                Gate::QMeas { wire: Wire(0) },
                Gate::QDiscard { wire: Wire(1) },
            ]
        );
    }

    #[test]
    fn clifford_push_keeps_gates_a_survivor_depends_on() {
        // The X on the measured wire is NOT diagonal: deleting it would
        // flip the outcome distribution. It must survive.
        let bc = main_only(
            vec![
                Gate::unary(GateName::X, Wire(0)),
                Gate::QMeas { wire: Wire(0) },
            ],
            1,
        );
        let (out, _) = optimize(&bc, OptLevel::Default);
        assert_eq!(out.main.gates.len(), 2);
    }

    #[test]
    fn conjugated_pairs_from_lint_facts_are_deleted() {
        // Z · H · X: lint's Pauli-flow (QL041) proves the outer pair
        // cancels through the H; the facts cleanup consumes it.
        let bc = main_only(
            vec![
                Gate::unary(GateName::Z, Wire(0)),
                Gate::unary(GateName::H, Wire(0)),
                Gate::unary(GateName::X, Wire(0)),
            ],
            1,
        );
        let (out, _) = optimize(&bc, OptLevel::Default);
        assert_eq!(out.main.gates, vec![Gate::unary(GateName::H, Wire(0))]);
    }

    #[test]
    fn baseline_pipeline_lacks_the_new_passes() {
        let baseline = PassManager::baseline_default();
        let names = baseline.pass_names();
        assert!(!names.contains(&"opt.phasepoly"));
        assert!(!names.contains(&"opt.clifford_push"));
        // ... while the current Default has both.
        let current = PassManager::for_level(OptLevel::Default).pass_names();
        assert!(current.contains(&"opt.phasepoly"));
        assert!(current.contains(&"opt.clifford_push"));
    }

    #[test]
    fn levels_parse_round_trip() {
        for level in [OptLevel::Off, OptLevel::Default, OptLevel::Aggressive] {
            assert_eq!(OptLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(OptLevel::parse("max"), None);
        assert_eq!(OptLevel::default(), OptLevel::Default);
    }

    #[test]
    fn summary_is_compact_and_copy() {
        let bc = main_only(
            vec![
                Gate::unary(GateName::H, Wire(0)),
                Gate::unary(GateName::H, Wire(0)),
            ],
            1,
        );
        let (_, report) = optimize(&bc, OptLevel::Default);
        let s = report.summary();
        let s2 = s; // Copy
        assert_eq!(s2.to_string(), "default 2->0");
        assert_eq!(s.gates_before, 2);
    }
}
