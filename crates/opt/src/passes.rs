//! The rewrite passes behind the [`PassManager`](crate::PassManager).
//!
//! Every pass is scope-local: it rewrites `main` and each box body
//! independently, never adding, removing or renaming boxes. Because
//! [`CircuitDb`] assigns ids in insertion order and keys boxes on
//! `(name, shape)`, rebuilding the database by reinserting the rewritten
//! bodies in id order reproduces the original ids exactly, so subroutine
//! calls need no retargeting.
//!
//! Soundness note: rewrites inside a box body apply to the body *as
//! written*. Inverted call sites execute the reversed body, and controlled
//! call sites push their controls onto every body gate — both distribute
//! over the rewrites used here (deleting an identity sub-sequence, merging
//! rotations, dropping a provably-constant control), with one exception:
//! an *uncontrolled* global phase is only droppable where no caller can
//! ever control it, i.e. in `main` ([`merge_pass`] takes a flag).

use std::collections::{HashMap, HashSet};

use quipper_circuit::commute::{commutes_with, same_control_set, wire_actions, WireAction};
use quipper_circuit::{BCircuit, Circuit, CircuitDb, Gate, SubDef, Wire};
use quipper_lint::{FactScope, Redundancy};

/// How far a look-back scan walks past commuting gates before giving up.
/// Bounds worst-case sweep cost at `LOOKBACK * gates` per scope.
const LOOKBACK: usize = 32;

/// Angle slop below which a rotation is treated as the identity. Exact
/// cancellations (`θ + (−θ)`, `π/4 · 8`) land on zero or an exact period
/// multiple; this only absorbs the last few ulps of float error.
const EPS: f64 = 1e-12;

/// Applies `rewrite` to every scope — each box body, then `main` — and
/// reassembles a hierarchy with identical box ids.
pub(crate) fn map_scopes(
    bc: &BCircuit,
    mut rewrite: impl FnMut(FactScope, &Circuit) -> Vec<Gate>,
) -> BCircuit {
    let mut db = CircuitDb::new();
    for (id, def) in bc.db.iter() {
        let mut circuit = Circuit {
            inputs: def.circuit.inputs.clone(),
            gates: rewrite(FactScope::Box(id), &def.circuit),
            outputs: def.circuit.outputs.clone(),
            wire_bound: def.circuit.wire_bound,
        };
        circuit.recompute_wire_bound();
        let new_id = db.insert(SubDef {
            name: def.name.clone(),
            shape: def.shape.clone(),
            circuit,
        });
        debug_assert_eq!(new_id, id, "box ids must survive a scope-local rewrite");
    }
    let mut main = Circuit {
        inputs: bc.main.inputs.clone(),
        gates: rewrite(FactScope::Main, &bc.main),
        outputs: bc.main.outputs.clone(),
        wire_bound: bc.main.wire_bound,
    };
    main.recompute_wire_bound();
    BCircuit { db, main }
}

// ---------------------------------------------------------------------
// Facts-seeded cleanup (lint QL030–QL032)
// ---------------------------------------------------------------------

/// Whether a gate may be deleted outright when a fact proves it redundant.
/// Subroutine calls are excluded: a pair/never-fires fact about a call is
/// sound, but deleting calls can orphan box definitions and confuses
/// resource accounting — leave them to the linter's human-facing report.
fn deletable(gate: &Gate) -> bool {
    matches!(
        gate,
        Gate::QGate { .. } | Gate::QRot { .. } | Gate::GPhase { .. }
    )
}

/// Removes the controls that `drops` proved constant-true.
fn drop_controls(gate: &Gate, drops: &[(Wire, bool)], rewrites: &mut u64) -> Gate {
    let mut g = gate.clone();
    let controls = match &mut g {
        Gate::QGate { controls, .. }
        | Gate::QRot { controls, .. }
        | Gate::GPhase { controls, .. }
        | Gate::Subroutine { controls, .. } => controls,
        _ => return g,
    };
    for &(wire, positive) in drops {
        if let Some(pos) = controls
            .iter()
            .position(|c| c.wire == wire && c.positive == positive)
        {
            controls.remove(pos);
            *rewrites += 1;
        }
    }
    g
}

/// Consumes the linter's redundancy facts (QL030 cancelling pairs, QL031
/// constant controls, QL032 statically blocked gates) and applies them in a
/// single sweep per scope, so every fact index stays valid while it is
/// acted on.
pub(crate) fn facts_cleanup(bc: &BCircuit, rewrites: &mut u64) -> BCircuit {
    let facts = quipper_lint::facts(bc);
    if facts.is_empty() {
        return bc.clone();
    }
    map_scopes(bc, |scope, circuit| {
        let mut delete: HashSet<usize> = HashSet::new();
        let mut drops: HashMap<usize, Vec<(Wire, bool)>> = HashMap::new();
        // Blocked gates first: a never-firing gate is deleted regardless of
        // any pair it participates in.
        for fact in facts.for_scope(scope) {
            if let Redundancy::NeverFires { .. } = fact.reason {
                if deletable(&circuit.gates[fact.gate_index]) {
                    delete.insert(fact.gate_index);
                }
            }
        }
        // Cancelling pairs drop both ends, but only when neither end was
        // already deleted — deleting one survivor of a half-dead pair would
        // change semantics. Clifford-conjugated pairs (QL041) are deleted
        // under the same rule; the linter guarantees the recorded pair
        // intervals never interleave, so deleting any subset composes.
        for fact in facts.for_scope(scope) {
            let (Redundancy::CancelsPair { with } | Redundancy::ConjugatePair { with }) =
                fact.reason
            else {
                continue;
            };
            let (a, b) = (with, fact.gate_index);
            if !delete.contains(&a)
                && !delete.contains(&b)
                && deletable(&circuit.gates[a])
                && deletable(&circuit.gates[b])
            {
                delete.insert(a);
                delete.insert(b);
            }
        }
        for fact in facts.for_scope(scope) {
            if let Redundancy::ConstControl { wire, positive } = fact.reason {
                if !delete.contains(&fact.gate_index) {
                    drops
                        .entry(fact.gate_index)
                        .or_default()
                        .push((wire, positive));
                }
            }
        }
        let mut gates = Vec::with_capacity(circuit.gates.len());
        for (idx, gate) in circuit.gates.iter().enumerate() {
            if delete.contains(&idx) {
                *rewrites += 1;
                continue;
            }
            match drops.get(&idx) {
                Some(d) => gates.push(drop_controls(gate, d, rewrites)),
                None => gates.push(gate.clone()),
            }
        }
        gates
    })
}

// ---------------------------------------------------------------------
// Commutation-aware cancellation
// ---------------------------------------------------------------------

/// Canonical form for inverse matching: controls sorted, and the inversion
/// flag cleared on self-inverse named gates (`X⁻¹` *is* `X`).
fn canon(gate: &Gate) -> Gate {
    let mut g = gate.clone();
    match &mut g {
        Gate::QGate {
            name,
            inverted,
            controls,
            ..
        } => {
            if name.is_self_inverse() {
                *inverted = false;
            }
            controls.sort_unstable();
        }
        Gate::QRot { controls, .. } | Gate::GPhase { controls, .. } => controls.sort_unstable(),
        _ => {}
    }
    g
}

/// Whether `prev · g = I`: `prev`'s inverse equals `g` up to control order.
fn cancels(prev: &Gate, g: &Gate) -> bool {
    if !deletable(prev) {
        return false;
    }
    match prev.inverse() {
        Ok(inv) => canon(&inv) == canon(g),
        Err(_) => false,
    }
}

/// Deletes inverse pairs that become adjacent after commuting one gate of
/// the pair past provably-commuting neighbours, sweeping to a fixpoint.
/// Strictly more powerful than the linter's QL030 (which requires the pair
/// to be wire-adjacent): `T(q1)` between `H(q0) H(q0)` hides nothing, and
/// a CNOT chain sharing only controls commutes out of the way.
pub(crate) fn cancel_pass(gates: &[Gate], rewrites: &mut u64) -> Vec<Gate> {
    let mut current = gates.to_vec();
    loop {
        let before = current.len();
        current = cancel_sweep(current, rewrites);
        if current.len() == before {
            return current;
        }
    }
}

fn cancel_sweep(gates: Vec<Gate>, rewrites: &mut u64) -> Vec<Gate> {
    let mut out: Vec<Gate> = Vec::with_capacity(gates.len());
    'next: for g in gates {
        if deletable(&g) {
            let actions = wire_actions(&g);
            let mut idx = out.len();
            let mut steps = 0usize;
            while idx > 0 && steps < LOOKBACK {
                idx -= 1;
                steps += 1;
                let prev = &out[idx];
                if matches!(prev, Gate::Comment { .. }) {
                    continue;
                }
                if cancels(prev, &g) {
                    out.remove(idx);
                    *rewrites += 1;
                    continue 'next;
                }
                if !commutes_with(&actions, prev) {
                    break;
                }
            }
        }
        out.push(g);
    }
    out
}

// ---------------------------------------------------------------------
// Rotation / phase merging
// ---------------------------------------------------------------------

/// The identity period of an angle-additive rotation family, in the same
/// units the simulator interprets: `exp(-i%Z)` and `R(%)` repeat at 2π,
/// `Ry(%)` only at 4π (2π is a global −1, which is *relative* under
/// controls), and `R(2pi/%)`'s parameter is an exponent, not additive.
fn additive_period(name: &str) -> Option<f64> {
    match name {
        "exp(-i%Z)" | "R(%)" => Some(std::f64::consts::TAU),
        "Ry(%)" => Some(2.0 * std::f64::consts::TAU),
        _ => None,
    }
}

/// The dagger flag folds into the angle for additive families.
fn signed_angle(angle: f64, inverted: bool) -> f64 {
    if inverted {
        -angle
    } else {
        angle
    }
}

/// Whether `angle` is within [`EPS`] of a multiple of `period`.
fn is_identity_angle(angle: f64, period: f64) -> bool {
    let r = angle.rem_euclid(period);
    r < EPS || period - r < EPS
}

/// Merges `g` into a matching earlier rotation: same family, same single
/// target, same control set. Returns `Some(None)` when the sum is the
/// identity, `Some(Some(m))` to replace the earlier gate with the merged
/// rotation, `None` when the gates don't merge.
fn merge_rot(prev: &Gate, g: &Gate, period: f64) -> Option<Option<Gate>> {
    let (
        Gate::QRot {
            name: pn,
            inverted: pi,
            angle: pa,
            targets: pt,
            controls: pc,
        },
        Gate::QRot {
            name: gn,
            inverted: gi,
            angle: ga,
            targets: gt,
            controls: gc,
        },
    ) = (prev, g)
    else {
        return None;
    };
    if pn != gn || pt != gt || !same_control_set(pc, gc) {
        return None;
    }
    let sum = signed_angle(*pa, *pi) + signed_angle(*ga, *gi);
    if is_identity_angle(sum, period) {
        return Some(None);
    }
    Some(Some(Gate::QRot {
        name: pn.clone(),
        inverted: false,
        angle: sum,
        targets: pt.clone(),
        controls: pc.clone(),
    }))
}

/// [`merge_rot`] for controlled global phases (π units, period 2).
fn merge_phase(prev: &Gate, g: &Gate) -> Option<Option<Gate>> {
    let (
        Gate::GPhase {
            angle: pa,
            controls: pc,
        },
        Gate::GPhase {
            angle: ga,
            controls: gc,
        },
    ) = (prev, g)
    else {
        return None;
    };
    if !same_control_set(pc, gc) {
        return None;
    }
    let sum = pa + ga;
    if is_identity_angle(sum, 2.0) {
        return Some(None);
    }
    Some(Some(Gate::GPhase {
        angle: sum,
        controls: pc.clone(),
    }))
}

/// Folds runs of same-family rotations on a wire (commuting past unrelated
/// gates), drops rotations whose angle reduces to the identity, and — in
/// `main` only, where no caller can ever attach controls — discards
/// uncontrolled global phases outright.
pub(crate) fn merge_pass(gates: &[Gate], in_main: bool, rewrites: &mut u64) -> Vec<Gate> {
    let mut current = gates.to_vec();
    loop {
        let before = current.len();
        current = merge_sweep(current, in_main, rewrites);
        if current.len() == before {
            return current;
        }
    }
}

fn merge_sweep(gates: Vec<Gate>, in_main: bool, rewrites: &mut u64) -> Vec<Gate> {
    let mut out: Vec<Gate> = Vec::with_capacity(gates.len());
    'next: for g in gates {
        let merge: Option<(f64, bool)> = match &g {
            Gate::QRot {
                name,
                inverted,
                angle,
                targets,
                ..
            } if targets.len() == 1 => additive_period(name.as_ref()).map(|period| {
                (
                    period,
                    is_identity_angle(signed_angle(*angle, *inverted), period),
                )
            }),
            Gate::GPhase { angle, controls } => {
                if in_main && controls.is_empty() {
                    // A truly global phase is unobservable.
                    *rewrites += 1;
                    continue;
                }
                Some((2.0, is_identity_angle(*angle, 2.0)))
            }
            _ => None,
        };
        if let Some((period, identity)) = merge {
            if identity {
                *rewrites += 1;
                continue;
            }
            let actions = wire_actions(&g);
            let mut idx = out.len();
            let mut steps = 0usize;
            while idx > 0 && steps < LOOKBACK {
                idx -= 1;
                steps += 1;
                let prev = &out[idx];
                if matches!(prev, Gate::Comment { .. }) {
                    continue;
                }
                let merged = match &g {
                    Gate::GPhase { .. } => merge_phase(prev, &g),
                    _ => merge_rot(prev, &g, period),
                };
                if let Some(replacement) = merged {
                    out.remove(idx);
                    *rewrites += 1;
                    if let Some(m) = replacement {
                        out.insert(idx, m);
                    }
                    continue 'next;
                }
                if !commutes_with(&actions, prev) {
                    break;
                }
            }
        }
        out.push(g);
    }
    out
}

// ---------------------------------------------------------------------
// Clifford pushing into measurements and discards
// ---------------------------------------------------------------------

/// What a wire's remaining future consists of, walking backward.
#[derive(Copy, Clone, PartialEq, Eq)]
enum AbsorbKind {
    /// Only computational-basis-diagonal gates, then a measurement (or a
    /// discard behind further diagonal gates): a Z-diagonal action here
    /// commutes through to the boundary and becomes an unobservable
    /// per-branch phase.
    Meas,
    /// Nothing at all touches the wire until it is discarded: any action
    /// here is traced out.
    Discard,
}

/// Deletes terminal gates whose entire effect is absorbed by measurements
/// and discards: a gate every wire of which ends in an absorbing boundary,
/// acting Z-diagonally on each measured wire (arbitrary actions are allowed
/// only on discard-bound wires). This is the classic "push terminal
/// Cliffords into the measurement frame", generalized to any diagonal gate.
///
/// Sound in box bodies too: a body containing measurements or discards is
/// already uncontrollable/irreversible, so every call site executes it
/// as written — except that an *uncontrolled* global phase (which touches
/// no wires) is only droppable in `main`, exactly as in [`merge_pass`].
///
/// Never grows the circuit.
pub(crate) fn clifford_push_pass(
    gates: &[Gate],
    in_main: bool,
    rewrites: &mut u64,
    absorbed: &mut u64,
) -> Vec<Gate> {
    let mut absorbing: HashMap<Wire, AbsorbKind> = HashMap::new();
    let mut keep = vec![true; gates.len()];
    for (idx, gate) in gates.iter().enumerate().rev() {
        match gate {
            Gate::Comment { .. } => {}
            Gate::QMeas { wire } => {
                absorbing.insert(*wire, AbsorbKind::Meas);
            }
            Gate::QDiscard { wire } | Gate::CDiscard { wire } => {
                absorbing.insert(*wire, AbsorbKind::Discard);
            }
            // A boundary into a previous incarnation of the wire id: the
            // absorption claim must not leak across it.
            Gate::QInit { wire, .. }
            | Gate::QTerm { wire, .. }
            | Gate::CInit { wire, .. }
            | Gate::CTerm { wire, .. } => {
                absorbing.remove(wire);
            }
            Gate::QGate { .. } | Gate::QRot { .. } | Gate::GPhase { .. } => {
                let actions = wire_actions(gate);
                let absorbable = actions.iter().all(|(w, action)| match absorbing.get(w) {
                    Some(AbsorbKind::Discard) => true,
                    Some(AbsorbKind::Meas) => *action == WireAction::ZDiagonal,
                    None => false,
                }) && (in_main || !actions.is_empty());
                if absorbable && deletable(gate) {
                    keep[idx] = false;
                    *rewrites += 1;
                    *absorbed += 1;
                } else {
                    // The gate stays: earlier gates on its wires must now
                    // commute through it to reach the boundary, which the
                    // deletion rule guarantees only for mutually Z-diagonal
                    // actions.
                    for (w, action) in &actions {
                        if *action == WireAction::ZDiagonal {
                            if let Some(k) = absorbing.get_mut(w) {
                                *k = AbsorbKind::Meas;
                            }
                        } else {
                            absorbing.remove(w);
                        }
                    }
                }
            }
            _ => {
                // Subroutine calls, classical gates: opaque; every touched
                // wire loses its absorption claim.
                gate.for_each_wire(&mut |w| {
                    absorbing.remove(&w);
                });
            }
        }
    }
    gates
        .iter()
        .zip(&keep)
        .filter(|&(_, &k)| k)
        .map(|(g, _)| g.clone())
        .collect()
}

// ---------------------------------------------------------------------
// Phase-polynomial re-synthesis of CNOT+phase regions
// ---------------------------------------------------------------------

/// Re-synthesizes same-parity phase gates within {CNOT, X, Swap, phase}
/// regions from their phase-polynomial representation (see
/// [`quipper_circuit::pauli::phase_groups`]): all rotations on one parity
/// term merge into a single canonical gate sequence at the site of the
/// group's first member, cutting T-count. A group is only rewritten when
/// the replacement is strictly shorter than the members it replaces, so the
/// pass never grows the circuit.
///
/// Exact unitary equality (not up to global phase): each member applies a
/// diagonal phase determined solely by the parity function the wire carries
/// at that moment, which is the same for every member of a group, so the
/// product telescopes into the merged gate placed at the first site.
pub(crate) fn phasepoly_pass(
    circuit: &Circuit,
    rewrites: &mut u64,
    merged: &mut u64,
    removed: &mut u64,
) -> Vec<Gate> {
    use quipper_circuit::pauli::{gates_for_units, PhaseFamily};

    let groups = quipper_circuit::pauli::phase_groups(circuit);
    let mut delete: HashSet<usize> = HashSet::new();
    // Replacement gates to splice in *before* the gate at each index.
    let mut splice: HashMap<usize, Vec<Gate>> = HashMap::new();
    for g in &groups {
        if g.members.len() < 2 {
            continue;
        }
        let replacement: Vec<Gate> = match &g.family {
            PhaseFamily::Named => gates_for_units(g.units, g.wire),
            PhaseFamily::Rot(name) => {
                let period = additive_period(name).unwrap_or(f64::INFINITY);
                if is_identity_angle(g.angle, period) {
                    Vec::new()
                } else {
                    vec![Gate::QRot {
                        name: name.clone(),
                        inverted: false,
                        angle: g.angle,
                        targets: vec![g.wire],
                        controls: vec![],
                    }]
                }
            }
        };
        if replacement.len() >= g.members.len() {
            continue;
        }
        *rewrites += 1;
        *merged += 1;
        *removed += (g.members.len() - replacement.len()) as u64;
        delete.extend(g.members.iter().copied());
        splice.insert(g.members[0], replacement);
    }
    if delete.is_empty() {
        return circuit.gates.clone();
    }
    let mut out = Vec::with_capacity(circuit.gates.len());
    for (idx, gate) in circuit.gates.iter().enumerate() {
        if let Some(repl) = splice.remove(&idx) {
            out.extend(repl);
        }
        if !delete.contains(&idx) {
            out.push(gate.clone());
        }
    }
    out
}

// ---------------------------------------------------------------------
// Decomposition accounting
// ---------------------------------------------------------------------

/// Counts gates the binary decomposition will have to expand: anything
/// touching more than two wires. Purely informational (per-pass rewrite
/// stats); the expansion itself is `quipper::decompose`.
pub(crate) fn count_wide_gates(bc: &BCircuit) -> u64 {
    let wide = |c: &Circuit| -> u64 {
        c.gates
            .iter()
            .filter(|g| !matches!(g, Gate::Subroutine { .. } | Gate::Comment { .. }))
            .filter(|g| {
                let mut wires = 0u64;
                g.for_each_wire(&mut |_| wires += 1);
                wires > 2
            })
            .count() as u64
    };
    bc.db.iter().map(|(_, def)| wide(&def.circuit)).sum::<u64>() + wide(&bc.main)
}
