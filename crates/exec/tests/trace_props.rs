//! Tracing must be a pure observer: enabling the global tracer may not
//! perturb a single measurement outcome or amplitude, including on the
//! threaded kernel path where spans are recorded from scoped worker threads.
//!
//! This binary intentionally holds exactly one test: it toggles the
//! process-wide tracer, and a sibling test running in parallel would race on
//! that global state.

use proptest::prelude::*;
use quipper::{Circ, Qubit};
use quipper_circuit::flatten::inline_all;
use quipper_circuit::BCircuit;
use quipper_exec::{Engine, EngineConfig, Job};
use quipper_sim::{run_flat_with, StateVecConfig};

const QUBITS: usize = 3;

/// A random instruction drawn from a universal gate set, so the generated
/// circuits are neither classical-only nor Clifford-only and route to the
/// state-vector backend — the one with threaded kernels and fusion.
#[derive(Clone, Copy, Debug)]
enum UniversalOp {
    H(usize),
    T(usize),
    S(usize),
    X(usize),
    Cnot(usize, usize),
}

fn universal_op() -> impl Strategy<Value = UniversalOp> {
    prop_oneof![
        (0..QUBITS).prop_map(UniversalOp::H),
        (0..QUBITS).prop_map(UniversalOp::T),
        (0..QUBITS).prop_map(UniversalOp::S),
        (0..QUBITS).prop_map(UniversalOp::X),
        (0..QUBITS, 0..QUBITS).prop_map(|(a, b)| UniversalOp::Cnot(a, b)),
    ]
}

fn universal_circuit(ops: &[UniversalOp]) -> BCircuit {
    let mut c = Circ::new();
    let qs: Vec<Qubit> = (0..QUBITS).map(|_| c.qinit_bit(false)).collect();
    // An H·T·H sandwich pins a non-Clifford gate that no optimizer pass can
    // remove (the T sits alone in its phase region and an opaque H separates
    // it from the measurements), so the plan always routes to statevec.
    c.hadamard(qs[0]);
    c.gate_t(qs[0]);
    c.hadamard(qs[0]);
    for &op in ops {
        match op {
            UniversalOp::H(a) => c.hadamard(qs[a]),
            UniversalOp::T(a) => c.gate_t(qs[a]),
            UniversalOp::S(a) => c.gate_s(qs[a]),
            UniversalOp::X(a) => c.qnot(qs[a]),
            UniversalOp::Cnot(a, b) if a != b => c.cnot(qs[a], qs[b]),
            UniversalOp::Cnot(..) => {}
        }
    }
    let ms: Vec<_> = qs.into_iter().map(|q| c.measure_bit(q)).collect();
    c.finish(&ms)
}

/// Engine tuned to force the threaded kernel path even for tiny states and
/// on a single-core host: explicit worker/thread counts, zero parallel
/// threshold.
fn threaded_engine() -> Engine {
    Engine::with_config(EngineConfig {
        workers: 4,
        statevec: StateVecConfig {
            threads: 4,
            fuse: true,
            parallel_threshold: 0,
            ..StateVecConfig::default()
        },
        ..EngineConfig::default()
    })
}

fn run_histogram(bc: &BCircuit, seed: u64) -> (Vec<(Vec<bool>, u64)>, &'static str) {
    let result = threaded_engine()
        .run(&Job::new(bc).shots(64).seed(seed))
        .unwrap();
    (result.histogram, result.report.backend)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tracing_on_and_off_produce_identical_results(
        ops in proptest::collection::vec(universal_op(), 0..16),
        seed in 0u64..1_000,
    ) {
        let tracer = quipper_trace::tracer();
        prop_assert!(!tracer.enabled(), "tracer must start disabled");

        let bc = universal_circuit(&ops);
        let flat = inline_all(&bc.db, &bc.main).unwrap();
        let threaded = StateVecConfig {
            threads: 4,
            fuse: true,
            parallel_threshold: 0,
            ..StateVecConfig::default()
        };

        // Baseline with tracing disabled.
        let (hist_off, backend_off) = run_histogram(&bc, seed);
        let amps_off = run_flat_with(&flat, &[], seed, threaded).unwrap();

        // Same circuit, same seeds, tracer enabled and recording.
        tracer.set_enabled(true);
        let (hist_on, backend_on) = run_histogram(&bc, seed);
        let amps_on = run_flat_with(&flat, &[], seed, threaded).unwrap();
        let report = threaded_engine()
            .run(&Job::new(&bc).shots(4).seed(seed))
            .unwrap()
            .report;
        tracer.set_enabled(false);
        let log = tracer.drain();

        prop_assert_eq!(backend_off, "statevec", "universal circuits exercise the kernels");
        prop_assert_eq!(backend_off, backend_on);
        prop_assert_eq!(hist_off, hist_on, "histograms diverge under tracing");
        prop_assert_eq!(
            amps_off.state.amplitudes(),
            amps_on.state.amplitudes(),
            "amplitudes diverge under tracing on the threaded path"
        );
        prop_assert_eq!(amps_off.classical_outputs(), amps_on.classical_outputs());

        // The traced run actually recorded work, and reported it on the job.
        prop_assert!(!log.events.is_empty(), "enabled run recorded no events");
        let summary = report.trace.expect("traced job carries a summary");
        prop_assert!(summary.events > 0);
    }
}
