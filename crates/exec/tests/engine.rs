//! Integration tests of the execution engine: backend auto-selection,
//! deterministic parallel scheduling, plan caching, batched queues and
//! dynamic lifting.

use quipper::classical::Dag;
use quipper::{Circ, Qubit};
use quipper_algorithms::grover::{grover_circuit, optimal_iterations};
use quipper_circuit::BCircuit;
use quipper_exec::{Engine, EngineConfig, ExecError, Job, JobQueue, LintGate};

fn engine_with_workers(workers: usize) -> Engine {
    Engine::with_config(EngineConfig {
        workers,
        ..EngineConfig::default()
    })
}

fn bell() -> BCircuit {
    Circ::build(&(false, false), |c, (a, b): (Qubit, Qubit)| {
        c.hadamard(a);
        c.cnot(b, a);
        (c.measure(a), c.measure(b))
    })
}

fn parity3() -> BCircuit {
    Circ::build(
        &(vec![false; 3], false),
        |c, (xs, t): (Vec<Qubit>, Qubit)| {
            for &x in &xs {
                c.cnot(t, x);
            }
            let ms: Vec<_> = xs.into_iter().map(|x| c.measure(x)).collect();
            (ms, c.measure(t))
        },
    )
}

fn t_gate() -> BCircuit {
    Circ::build(&false, |c, q: Qubit| {
        c.hadamard(q);
        c.gate_t(q);
        c.hadamard(q);
        c.measure(q)
    })
}

#[test]
fn auto_selection_routes_to_cheapest_backend() {
    let engine = Engine::new();
    assert_eq!(engine.select_backend(&parity3()).unwrap(), "classical");
    assert_eq!(engine.select_backend(&bell()).unwrap(), "stabilizer");
    assert_eq!(engine.select_backend(&t_gate()).unwrap(), "statevec");
}

/// The headline determinism guarantee: an N-shot Grover job with a fixed
/// base seed produces the *identical* histogram whether the shots run
/// sequentially or fanned out over a multi-worker pool.
#[test]
fn grover_parallel_histogram_is_bit_identical_to_sequential() {
    // Search for index 5 among 2^3: predicate x == 5.
    let dag = Dag::build(3, |_, xs| vec![&(&xs[0] & &!(&xs[1])) & &xs[2]]);
    let bc = grover_circuit(&dag, optimal_iterations(3, 1));
    let shots = 48;

    let parallel_engine = engine_with_workers(4);
    let sequential_engine = engine_with_workers(1);
    let job = Job::new(&bc).shots(shots).seed(0xDEAD_BEEF);
    let par = parallel_engine.run(&job).unwrap();
    let seq = sequential_engine.run(&job).unwrap();

    assert_eq!(
        par.histogram, seq.histogram,
        "schedules must not change results"
    );
    assert_eq!(par.report.workers, 4);
    assert_eq!(seq.report.workers, 1);
    // Grover uses GPhase + Toffoli-style oracles: only statevec can run it.
    assert_eq!(par.report.backend, "statevec");
    // With the optimal iteration count, |101⟩ = index 5 dominates.
    let top = par.most_frequent().unwrap();
    assert_eq!(top, &[true, false, true], "amplified state wins");
    assert!(par.count_of(top) > shots / 2);
}

#[test]
fn parallel_schedule_matches_sequential_on_stabilizer_too() {
    let bc = bell();
    let engine = engine_with_workers(3);
    let job = Job::new(&bc).inputs(vec![false, false]).shots(37).seed(11);
    let par = engine.run(&job).unwrap();
    let seq = engine.run_sequential(&job).unwrap();
    assert_eq!(par.histogram, seq.histogram);
    assert_eq!(par.histogram.iter().map(|&(_, n)| n).sum::<u64>(), 37);
}

#[test]
fn repeat_jobs_hit_the_plan_cache() {
    let engine = Engine::new();
    let bc = bell();
    let job = Job::new(&bc).inputs(vec![false, false]).shots(4);
    let first = engine.run(&job).unwrap();
    let second = engine.run(&job).unwrap();
    assert!(!first.report.cache_hit);
    assert!(second.report.cache_hit);
    assert_eq!(first.report.fingerprint, second.report.fingerprint);

    let stats = engine.stats();
    assert_eq!(stats.jobs, 2);
    assert_eq!(stats.shots, 8);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.backend_jobs, vec![("stabilizer", 2)]);
}

#[test]
fn pinned_backend_overrides_auto_selection() {
    let engine = Engine::new();
    let bc = bell();
    let job = Job::new(&bc)
        .inputs(vec![false, false])
        .shots(5)
        .on_backend("statevec");
    assert_eq!(engine.run(&job).unwrap().report.backend, "statevec");

    // A Clifford circuit with an H gate cannot run on the classical backend.
    let bad = Job::new(&bc)
        .inputs(vec![false, false])
        .on_backend("classical");
    assert!(matches!(engine.run(&bad), Err(ExecError::NoBackend { .. })));

    let unknown = Job::new(&bc).inputs(vec![false, false]).on_backend("qpu");
    assert!(matches!(
        engine.run(&unknown),
        Err(ExecError::UnknownBackend { .. })
    ));
}

#[test]
fn quantum_outputs_are_rejected_for_sampling() {
    let engine = Engine::new();
    let bc = Circ::build(&false, |c, q: Qubit| {
        c.hadamard(q);
        q // unmeasured quantum output
    });
    let err = engine.run(&Job::new(&bc).inputs(vec![false])).unwrap_err();
    assert!(matches!(err, ExecError::QuantumOutputs));
}

#[test]
fn job_queue_preserves_order_and_determinism() {
    let bell_c = bell();
    let parity_c = parity3();
    let t_c = t_gate();

    let run = |workers: usize| {
        let engine = engine_with_workers(workers);
        let mut queue = JobQueue::new();
        queue.push(
            Job::new(&bell_c)
                .inputs(vec![false, false])
                .shots(16)
                .seed(1),
        );
        queue.push(
            Job::new(&parity_c)
                .inputs(vec![true, false, true, false])
                .shots(8),
        );
        queue.push(Job::new(&t_c).inputs(vec![false]).shots(16).seed(9));
        assert_eq!(queue.len(), 3);
        queue.run_all(&engine)
    };

    let parallel: Vec<_> = run(4).into_iter().map(|r| r.result.unwrap()).collect();
    let sequential: Vec<_> = run(1).into_iter().map(|r| r.result.unwrap()).collect();
    assert_eq!(parallel.len(), 3);
    for (p, s) in parallel.iter().zip(&sequential) {
        assert_eq!(p.histogram, s.histogram);
        assert_eq!(p.report.backend, s.report.backend);
    }
    // The parity job is deterministic: one pattern, inputs preserved, t = 1⊕0⊕1⊕0 ... xor-ed in.
    assert_eq!(parallel[1].histogram.len(), 1);
    assert_eq!(parallel[1].report.backend, "classical");
}

#[test]
fn resource_estimation_needs_no_simulation() {
    let engine = Engine::new();
    let est = engine.estimate(&bell());
    assert_eq!(est.gates.by_name("\"H\"", 0, 0), 1);
    assert_eq!(est.gates.by_name("Meas", 0, 0), 2);
    assert_eq!(est.peak.total, 2);
    assert!(est.depth >= 3);
}

#[test]
fn interactive_jobs_route_through_dynamic_lifting() {
    let engine = Engine::new();
    // Measure a deterministic qubit; only the taken branch is generated
    // (paper §4.3.2). The engine supplies the simulated QRAM.
    for bit in [false, true] {
        let bc = engine
            .run_interactive(&(), 42, |c, ()| {
                let q = c.qinit_bit(bit);
                let m = c.measure_bit(q);
                let v = c.dynamic_lift(m);
                assert_eq!(v, bit);
                let out = c.qinit_bit(false);
                if v {
                    c.qnot(out);
                }
                c.cdiscard(m);
                c.measure_bit(out)
            })
            .unwrap();
        assert_eq!(bc.gate_count().by_name("\"Not\"", 0, 0), u128::from(bit));
    }
    assert_eq!(engine.stats().interactive_runs, 2);
}

#[test]
fn shot_errors_report_the_lowest_failing_shot() {
    // A circuit whose assertion fails on every shot: sequential and parallel
    // schedules must surface the same (first) error.
    let bc = Circ::build(&false, |c, q: Qubit| {
        let anc = c.qinit_bit(false);
        c.cnot(anc, q);
        c.qterm_bit(false, anc); // fails when q = 1
        c.measure(q)
    });
    let engine = engine_with_workers(4);
    let job = Job::new(&bc).inputs(vec![true]).shots(20);
    let par = engine.run(&job).unwrap_err();
    let seq = engine.run_sequential(&job).unwrap_err();
    assert_eq!(par.to_string(), seq.to_string());
    assert!(matches!(par, ExecError::Sim { .. }));
}

#[test]
fn engine_refuses_to_cache_or_execute_lint_rejected_plans() {
    // An ancilla provably in |1⟩ asserted |0⟩: QL001, error severity. The
    // default gate (deny errors) rejects the job before compilation output
    // reaches the cache or any backend.
    let bc = Circ::build(&(), |c, ()| {
        let anc = c.qinit_bit(false);
        c.qnot(anc);
        c.qterm_bit(false, anc);
        let out = c.qinit_bit(false);
        c.measure_bit(out)
    });
    let engine = Engine::new();
    let err = engine.run(&Job::new(&bc)).unwrap_err();
    match err {
        ExecError::Lint(report) => assert_eq!(report.findings[0].code, "QL001"),
        other => panic!("expected lint rejection, got {other:?}"),
    }
    assert_eq!(engine.stats().cached_plans, 0);
    assert_eq!(engine.stats().jobs, 0);

    // With the gate off the same circuit compiles, caches, and reaches the
    // backend — which then fails the assertion at run time instead.
    let lax = Engine::with_config(EngineConfig {
        lint: LintGate::Off,
        ..EngineConfig::default()
    });
    let err = lax.run(&Job::new(&bc)).unwrap_err();
    assert!(matches!(err, ExecError::Sim { .. }), "{err}");
    assert_eq!(lax.stats().cached_plans, 1);
}

#[test]
fn deny_warnings_engine_blocks_unprovable_assertions() {
    // H·H is the identity, so the assertion holds on every shot — but the
    // abstract domain cannot prove it (H sends a known basis state to a
    // superposition tier), leaving a warning-severity QL002 finding. The
    // adjacent H·H pair itself is a second warning (QL030, redundancy).
    let bc = Circ::build(&(), |c, ()| {
        let q = c.qinit_bit(false);
        c.hadamard(q);
        c.hadamard(q);
        let anc = c.qinit_bit(false);
        c.cnot(anc, q);
        c.qterm_bit(false, anc);
        c.measure_bit(q)
    });

    // With the optimizer off, the circuit is linted as written: both
    // warnings stand and the strict gate blocks the job.
    let strict = Engine::with_config(EngineConfig {
        lint: LintGate::DenyWarnings,
        opt: quipper_exec::OptLevel::Off,
        ..EngineConfig::default()
    });
    assert!(matches!(
        strict.run(&Job::new(&bc)),
        Err(ExecError::Lint(_))
    ));

    // The default gate admits warnings; the job runs (unoptimized) and its
    // report carries the lint summary.
    let engine = Engine::with_config(EngineConfig {
        opt: quipper_exec::OptLevel::Off,
        ..EngineConfig::default()
    });
    let result = engine.run(&Job::new(&bc).shots(10)).unwrap();
    let lint = result.report.lint.expect("engine-built reports carry lint");
    assert_eq!((lint.errors, lint.warnings), (0, 2));
    assert!(result.report.to_string().contains("lint: 0E/2W"));

    // The default optimizer deletes the H·H pair, after which the abstract
    // domain proves the assertion: the lint gate judges the rewritten
    // circuit, so even DenyWarnings now admits the job.
    let strict_opt = Engine::with_config(EngineConfig {
        lint: LintGate::DenyWarnings,
        ..EngineConfig::default()
    });
    let result = strict_opt.run(&Job::new(&bc).shots(10)).unwrap();
    let lint = result.report.lint.unwrap();
    assert_eq!((lint.errors, lint.warnings), (0, 0));
    let opt = result
        .report
        .opt
        .expect("default level reports the optimizer");
    assert!(opt.gates_before > opt.gates_after);
}
