//! Property tests of backend auto-selection: randomly generated circuits in
//! a restricted gate set must route to the cheap simulator for that set, and
//! the cheap simulator must agree with the exact state-vector reference.

use proptest::prelude::*;
use quipper::{Circ, Qubit};
use quipper_circuit::BCircuit;
use quipper_exec::{Engine, EngineConfig, Job, OptLevel};

/// Routing is asserted on the circuit *as written*, so the optimizer is
/// pinned off: at the default level a random Clifford sequence whose first
/// op is H(0) cancels the leading Hadamard, and the survivor can legally
/// route to the cheaper classical backend.
fn routing_engine() -> Engine {
    Engine::with_config(EngineConfig {
        opt: OptLevel::Off,
        ..EngineConfig::default()
    })
}

const QUBITS: usize = 3;

/// One random Clifford instruction on a 3-qubit register.
#[derive(Clone, Copy, Debug)]
enum CliffordOp {
    H(usize),
    S(usize),
    X(usize),
    Z(usize),
    Cnot(usize, usize),
    Swap(usize, usize),
}

fn clifford_op() -> impl Strategy<Value = CliffordOp> {
    prop_oneof![
        (0..QUBITS).prop_map(CliffordOp::H),
        (0..QUBITS).prop_map(CliffordOp::S),
        (0..QUBITS).prop_map(CliffordOp::X),
        (0..QUBITS).prop_map(CliffordOp::Z),
        (0..QUBITS, 0..QUBITS).prop_map(|(a, b)| CliffordOp::Cnot(a, b)),
        (0..QUBITS, 0..QUBITS).prop_map(|(a, b)| CliffordOp::Swap(a, b)),
    ]
}

/// Builds the circuit: |0…0⟩, a leading Hadamard (so the circuit is
/// genuinely quantum and cannot route to the classical backend), the op
/// sequence, measure everything. Two-qubit ops with coinciding wires are
/// skipped.
fn clifford_circuit(ops: &[CliffordOp]) -> BCircuit {
    let mut c = Circ::new();
    let qs: Vec<Qubit> = (0..QUBITS).map(|_| c.qinit_bit(false)).collect();
    c.hadamard(qs[0]);
    for &op in ops {
        match op {
            CliffordOp::H(a) => c.hadamard(qs[a]),
            CliffordOp::S(a) => c.gate_s(qs[a]),
            CliffordOp::X(a) => c.qnot(qs[a]),
            CliffordOp::Z(a) => c.gate_z(qs[a]),
            CliffordOp::Cnot(a, b) if a != b => c.cnot(qs[a], qs[b]),
            CliffordOp::Swap(a, b) if a != b => c.swap(qs[a], qs[b]),
            CliffordOp::Cnot(..) | CliffordOp::Swap(..) => {}
        }
    }
    let ms: Vec<_> = qs.into_iter().map(|q| c.measure_bit(q)).collect();
    c.finish(&ms)
}

/// A random classical (basis-permutation) instruction.
#[derive(Clone, Copy, Debug)]
enum ClassicalOp {
    X(usize),
    Cnot(usize, usize),
    Toffoli(usize, usize, usize),
}

fn classical_op() -> impl Strategy<Value = ClassicalOp> {
    prop_oneof![
        (0..QUBITS).prop_map(ClassicalOp::X),
        (0..QUBITS, 0..QUBITS).prop_map(|(a, b)| ClassicalOp::Cnot(a, b)),
        (0..QUBITS, 0..QUBITS, 0..QUBITS).prop_map(|(a, b, d)| ClassicalOp::Toffoli(a, b, d)),
    ]
}

fn classical_circuit(ops: &[ClassicalOp]) -> BCircuit {
    let mut c = Circ::new();
    let qs: Vec<Qubit> = (0..QUBITS).map(|_| c.qinit_bit(false)).collect();
    for &op in ops {
        match op {
            ClassicalOp::X(a) => c.qnot(qs[a]),
            ClassicalOp::Cnot(a, b) if a != b => c.cnot(qs[a], qs[b]),
            ClassicalOp::Toffoli(t, a, b) if t != a && t != b && a != b => {
                c.toffoli(qs[t], qs[a], qs[b]);
            }
            ClassicalOp::Cnot(..) | ClassicalOp::Toffoli(..) => {}
        }
    }
    let ms: Vec<_> = qs.into_iter().map(|q| c.measure_bit(q)).collect();
    c.finish(&ms)
}

/// Normalized histogram distance: ½ Σ |p₁(x) − p₂(x)| ∈ [0, 1].
fn total_variation(a: &[(Vec<bool>, u64)], b: &[(Vec<bool>, u64)]) -> f64 {
    let total_a: u64 = a.iter().map(|&(_, n)| n).sum();
    let total_b: u64 = b.iter().map(|&(_, n)| n).sum();
    let mut patterns: Vec<&Vec<bool>> = a.iter().chain(b).map(|(p, _)| p).collect();
    patterns.sort();
    patterns.dedup();
    let freq = |hist: &[(Vec<bool>, u64)], p: &Vec<bool>, total: u64| {
        hist.iter()
            .find(|(q, _)| q == p)
            .map_or(0.0, |&(_, n)| n as f64 / total as f64)
    };
    patterns
        .iter()
        .map(|p| (freq(a, p, total_a) - freq(b, p, total_b)).abs())
        .sum::<f64>()
        / 2.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any Clifford-only circuit routes to the stabilizer backend, and the
    /// stabilizer's sampled measurement distribution agrees with the exact
    /// state-vector simulation of the same circuit.
    #[test]
    fn clifford_circuits_route_to_stabilizer_and_match_statevec(
        ops in proptest::collection::vec(clifford_op(), 0..14)
    ) {
        let bc = clifford_circuit(&ops);
        let engine = routing_engine();
        prop_assert_eq!(engine.select_backend(&bc).unwrap(), "stabilizer");

        // Clifford outcome probabilities are multiples of 2^-k, so modest
        // shot counts resolve the distribution well; the threshold leaves
        // ample sampling slack (the whole test is seeded/deterministic).
        let shots = 1024;
        let auto = engine.run(&Job::new(&bc).shots(shots).seed(101)).unwrap();
        prop_assert_eq!(auto.report.backend, "stabilizer");
        let exact = engine
            .run(&Job::new(&bc).shots(shots).seed(2020).on_backend("statevec"))
            .unwrap();
        let tv = total_variation(&auto.histogram, &exact.histogram);
        prop_assert!(tv < 0.15, "distributions diverge: tv = {} for {:?}", tv, ops);
    }

    /// Any classical-only circuit routes to the bit-per-wire backend and is
    /// deterministic: its single outcome equals the state-vector result.
    #[test]
    fn classical_circuits_route_to_classical_and_match_statevec(
        ops in proptest::collection::vec(classical_op(), 0..20)
    ) {
        let bc = classical_circuit(&ops);
        let engine = routing_engine();
        prop_assert_eq!(engine.select_backend(&bc).unwrap(), "classical");

        let auto = engine.run(&Job::new(&bc).shots(5).seed(3)).unwrap();
        prop_assert_eq!(auto.report.backend, "classical");
        prop_assert_eq!(auto.histogram.len(), 1, "basis permutations are deterministic");
        let exact = engine.run(&Job::new(&bc).on_backend("statevec")).unwrap();
        prop_assert_eq!(auto.most_frequent(), exact.most_frequent());
    }
}
