//! Compiled execution plans and the fingerprint-keyed plan cache.
//!
//! Preparing a circuit for execution — validation, inlining every boxed
//! subroutine (paper §4.4.4), and profiling for backend selection — costs as
//! much as a simulation shot for classical circuits, and repeated jobs over
//! the same circuit family (multi-shot sampling, benchmark sweeps) would pay
//! it every time. A [`Plan`] captures the prepared form once; the
//! [`PlanCache`] keys plans by the structural
//! [`fingerprint`](quipper_circuit::fingerprint) of the hierarchical circuit,
//! so a repeat submission skips validation and flattening entirely.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use quipper_circuit::flatten::inline_all;
use quipper_circuit::{validate, BCircuit, Circuit};
use quipper_lint::{LintReport, Severity};
use quipper_opt::{optimize, OptLevel, OptReport};
use quipper_sim::{fuse_circuit, FuseStats, FusedCircuit};

use crate::error::ExecError;
use crate::profile::{profile, CircuitProfile};

/// How strictly the engine's static-analysis gate treats lint findings when
/// compiling a plan.
///
/// The lint passes (`quipper-lint`) always run during [`Plan::compile`] and
/// their report travels with the plan; the gate only decides whether findings
/// *block* caching and execution. A plan that fails the gate is rejected with
/// [`ExecError::Lint`] and is **not** inserted into the cache, so a later
/// submission under a laxer gate recompiles and re-decides.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum LintGate {
    /// Never block; findings are still reported on the plan.
    Off,
    /// Block on error-severity findings (e.g. a provably violated
    /// assertive termination). The default.
    #[default]
    DenyErrors,
    /// Block on warning-severity findings and above.
    DenyWarnings,
}

impl LintGate {
    /// The severity at or above which this gate blocks, if any.
    pub fn threshold(self) -> Option<Severity> {
        match self {
            LintGate::Off => None,
            LintGate::DenyErrors => Some(Severity::Error),
            LintGate::DenyWarnings => Some(Severity::Warning),
        }
    }

    /// Checks a report against this gate.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Lint`] carrying a clone of the report when any
    /// finding reaches the gate's threshold.
    pub fn check(self, report: &LintReport) -> Result<(), ExecError> {
        match self.threshold() {
            Some(threshold) if report.fails_at(threshold) => Err(ExecError::Lint(report.clone())),
            _ => Ok(()),
        }
    }
}

/// A circuit prepared for repeated execution: validated, flattened, profiled
/// and gate-fused. Plans are immutable and shared (`Arc`) between the cache,
/// jobs in flight, and worker threads.
#[derive(Debug)]
pub struct Plan {
    /// Structural fingerprint of the *hierarchical* circuit this plan was
    /// compiled from (the cache key).
    pub fingerprint: u64,
    /// The flattened circuit: every subroutine call inlined.
    pub flat: Circuit,
    /// The flat circuit with runs of single-qubit gates fused, for backends
    /// that replay the stream many times (state vector). Fused once here so
    /// multi-shot jobs and cached resubmissions never re-fuse.
    pub fused: FusedCircuit,
    /// Backend-selection profile of the flat circuit.
    pub profile: CircuitProfile,
    /// Static-analysis findings for the hierarchical circuit. Always
    /// populated; whether findings block execution is the [`LintGate`]'s
    /// decision, not the plan's. When an optimizer level is active the
    /// *rewritten* circuit is what gets linted — the gate must judge what
    /// will actually run.
    pub lint: LintReport,
    /// What the optimizer did, when a level other than
    /// [`OptLevel::Off`] was active at compile time.
    pub opt: Option<OptReport>,
    /// How long validation + optimization + inlining + profiling + fusion
    /// took.
    pub compile_time: Duration,
}

impl Plan {
    /// Validates, flattens, profiles and fuses a hierarchical circuit.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Circuit`] if validation or inlining fails.
    pub fn compile(bc: &BCircuit) -> Result<Plan, ExecError> {
        Plan::compile_with(bc, OptLevel::Off)
    }

    /// As [`Plan::compile`], but running the `quipper-opt` pipeline at
    /// `level` between validation and flattening. `OptLevel::Off`
    /// reproduces the unoptimized pipeline exactly. Lint runs on the
    /// *optimized* hierarchical circuit, so a [`LintGate`] judges the
    /// circuit that will actually execute.
    ///
    /// # Errors
    ///
    /// As [`Plan::compile`].
    pub fn compile_with(bc: &BCircuit, level: OptLevel) -> Result<Plan, ExecError> {
        let _span = quipper_trace::span(quipper_trace::Phase::Compile, "plan.compile");
        let start = Instant::now();
        // The plan is keyed by the fingerprint of the circuit *as
        // submitted* — rewriting must never change which cache slot a
        // submission lands in.
        let fingerprint = bc.fingerprint();
        validate::validate(&bc.db, &bc.main)?;
        let (bc, opt) = match level {
            OptLevel::Off => (bc.clone(), None),
            level => {
                let (optimized, report) = optimize(bc, level);
                // The rewritten hierarchy must still be well-formed; a pass
                // bug should surface here, not as a backend panic.
                validate::validate(&optimized.db, &optimized.main)?;
                (optimized, Some(report))
            }
        };
        // Lint the *hierarchical* circuit (box summaries need the call
        // structure), before flattening discards it.
        let lint = quipper_lint::lint(&bc);
        let flat = inline_all(&bc.db, &bc.main)?;
        let profile = {
            let _span = quipper_trace::span(quipper_trace::Phase::Compile, "profile");
            profile(&flat)
        };
        let fused = {
            let _span = quipper_trace::span(quipper_trace::Phase::Compile, "fuse");
            fuse_circuit(&flat)
        };
        Ok(Plan {
            fingerprint,
            flat,
            fused,
            profile,
            lint,
            opt,
            compile_time: start.elapsed(),
        })
    }

    /// What fusion did to this plan's gate stream (static per plan).
    pub fn fuse_stats(&self) -> FuseStats {
        self.fused.stats
    }
}

/// A thread-safe cache of compiled plans keyed by circuit fingerprint and
/// optimizer level, with hit/miss counters surfaced in execution reports.
///
/// The level is part of the key because the same circuit compiled at
/// different levels yields genuinely different plans (different flat gate
/// streams); a job asking for `Aggressive` must never receive a plan
/// compiled at `Off`.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<(u64, OptLevel), Arc<Plan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Returns the cached plan for this circuit, compiling and inserting it
    /// on first sight. The boolean is `true` on a cache hit.
    ///
    /// # Errors
    ///
    /// Propagates [`Plan::compile`] errors; failed compilations are not
    /// cached.
    pub fn get_or_compile(&self, bc: &BCircuit) -> Result<(Arc<Plan>, bool), ExecError> {
        self.get_or_compile_opt(bc, LintGate::Off, OptLevel::Off)
    }

    /// As [`PlanCache::get_or_compile`], but refusing plans whose lint report
    /// fails `gate`. The gate is applied on the cache-hit path too (the plan
    /// may have been admitted under a laxer gate), and a rejected compilation
    /// is **not** cached — the cache only ever holds plans that passed the
    /// gate they were compiled under.
    ///
    /// # Errors
    ///
    /// [`ExecError::Lint`] when the report fails the gate, plus all
    /// [`Plan::compile`] errors.
    pub fn get_or_compile_gated(
        &self,
        bc: &BCircuit,
        gate: LintGate,
    ) -> Result<(Arc<Plan>, bool), ExecError> {
        self.get_or_compile_opt(bc, gate, OptLevel::Off)
    }

    /// As [`PlanCache::get_or_compile_gated`], but compiling at the given
    /// optimizer level. Plans are cached per `(fingerprint, level)`, so
    /// mixed-level workloads over the same circuit coexist in the cache.
    ///
    /// # Errors
    ///
    /// As [`PlanCache::get_or_compile_gated`].
    pub fn get_or_compile_opt(
        &self,
        bc: &BCircuit,
        gate: LintGate,
        level: OptLevel,
    ) -> Result<(Arc<Plan>, bool), ExecError> {
        let key = (bc.fingerprint(), level);
        if let Some(plan) = self.plans.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let plan = Arc::clone(plan);
            gate.check(&plan.lint)?;
            return Ok((plan, true));
        }
        // Compile outside the lock: plans can be large and compilation is the
        // expensive path. Two threads racing on the same new circuit both
        // compile; the entry is just overwritten with an identical plan.
        let plan = Arc::new(Plan::compile_with(bc, level)?);
        gate.check(&plan.lint)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.plans.lock().unwrap().insert(key, Arc::clone(&plan));
        Ok((plan, false))
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (compilations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct plans currently cached.
    pub fn len(&self) -> usize {
        self.plans.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached plans and resets the counters.
    pub fn clear(&self) {
        self.plans.lock().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quipper::{Circ, Qubit};

    fn bell() -> BCircuit {
        Circ::build(&(false, false), |c, (a, b): (Qubit, Qubit)| {
            c.hadamard(a);
            c.cnot(b, a);
            (c.measure(a), c.measure(b))
        })
    }

    #[test]
    fn repeat_submission_hits_cache() {
        let cache = PlanCache::new();
        let bc = bell();
        let (p1, hit1) = cache.get_or_compile(&bc).unwrap();
        let (p2, hit2) = cache.get_or_compile(&bc).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn structurally_equal_circuits_share_a_plan() {
        // Two independent builds of the same circuit fingerprint identically.
        let cache = PlanCache::new();
        cache.get_or_compile(&bell()).unwrap();
        let (_, hit) = cache.get_or_compile(&bell()).unwrap();
        assert!(hit);
        assert_eq!(cache.len(), 1);
    }

    /// An ancilla is CNOT-entangled with a superposed wire, then asserted
    /// |0⟩: the termination pass flags this (warning severity — the
    /// assertion is unjustified, not provably wrong).
    fn entangled_qterm() -> BCircuit {
        Circ::build(&false, |c, q: Qubit| {
            c.hadamard(q);
            let anc = c.qinit_bit(false);
            c.cnot(anc, q);
            c.qterm_bit(false, anc);
            q
        })
    }

    /// The assertion is provably wrong on a known basis state: error
    /// severity, failing even the default `DenyErrors` gate.
    fn provably_wrong_qterm() -> BCircuit {
        Circ::build(&(), |c, ()| {
            let anc = c.qinit_bit(false);
            c.qnot(anc);
            c.qterm_bit(false, anc);
        })
    }

    #[test]
    fn gate_refuses_and_does_not_cache_a_flagged_plan() {
        let cache = PlanCache::new();
        let bc = provably_wrong_qterm();
        let err = cache.get_or_compile_gated(&bc, LintGate::DenyErrors);
        match err {
            Err(ExecError::Lint(report)) => {
                assert!(report.fails_at(quipper_lint::Severity::Error));
                assert_eq!(report.findings[0].code, "QL001");
            }
            other => panic!("expected lint rejection, got {other:?}"),
        }
        assert_eq!(cache.len(), 0, "rejected plans must not be cached");
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn deny_warnings_blocks_what_deny_errors_admits() {
        let cache = PlanCache::new();
        let bc = entangled_qterm();
        // Warning-level finding: passes the default gate…
        let (plan, _) = cache
            .get_or_compile_gated(&bc, LintGate::DenyErrors)
            .unwrap();
        assert!(plan.lint.fails_at(quipper_lint::Severity::Warning));
        // …but the stricter gate rejects it even on the cache-hit path.
        assert!(matches!(
            cache.get_or_compile_gated(&bc, LintGate::DenyWarnings),
            Err(ExecError::Lint(_))
        ));
        assert_eq!(cache.len(), 1, "hit-path rejection keeps the cached plan");
    }

    #[test]
    fn gate_off_compiles_and_caches_anything_lintable() {
        let cache = PlanCache::new();
        let (plan, hit) = cache
            .get_or_compile_gated(&provably_wrong_qterm(), LintGate::Off)
            .unwrap();
        assert!(!hit);
        assert_eq!(plan.lint.summary().errors, 1);
        assert_eq!(cache.len(), 1);
    }

    /// A circuit with an obvious cancelling pair, so `Default` provably
    /// differs from `Off`.
    fn cancelling_pair() -> BCircuit {
        Circ::build(&false, |c, q: Qubit| {
            c.hadamard(q);
            c.hadamard(q);
            c.gate_t(q);
            c.measure(q)
        })
    }

    #[test]
    fn off_level_reproduces_unoptimized_plans_bit_identically() {
        let bc = cancelling_pair();
        let plain = Plan::compile(&bc).unwrap();
        let off = Plan::compile_with(&bc, OptLevel::Off).unwrap();
        assert_eq!(off.fingerprint, plain.fingerprint);
        assert_eq!(off.flat, plain.flat);
        assert_eq!(off.fuse_stats(), plain.fuse_stats());
        assert!(off.opt.is_none());
    }

    #[test]
    fn optimized_plans_shrink_and_carry_the_report() {
        let bc = cancelling_pair();
        let off = Plan::compile_with(&bc, OptLevel::Off).unwrap();
        let opt = Plan::compile_with(&bc, OptLevel::Default).unwrap();
        assert!(opt.flat.gates.len() < off.flat.gates.len());
        let report = opt.opt.as_ref().expect("optimized plan carries a report");
        // H·H cancels (−2), and the terminal T is absorbed into the
        // measurement by the Clifford-push pass (−1).
        assert_eq!(report.removed(), 3);
        // The cache key is the circuit as submitted, not as rewritten.
        assert_eq!(opt.fingerprint, bc.fingerprint());
    }

    #[test]
    fn cache_keys_plans_per_opt_level() {
        let cache = PlanCache::new();
        let bc = cancelling_pair();
        let (off_plan, hit0) = cache
            .get_or_compile_opt(&bc, LintGate::Off, OptLevel::Off)
            .unwrap();
        let (opt_plan, hit1) = cache
            .get_or_compile_opt(&bc, LintGate::Off, OptLevel::Default)
            .unwrap();
        // Same fingerprint, different level: a real compile, not a hit.
        assert!(!hit0);
        assert!(!hit1);
        assert_eq!(cache.len(), 2);
        assert!(opt_plan.flat.gates.len() < off_plan.flat.gates.len());
        let (again, hit2) = cache
            .get_or_compile_opt(&bc, LintGate::Off, OptLevel::Default)
            .unwrap();
        assert!(hit2);
        assert!(Arc::ptr_eq(&opt_plan, &again));
    }

    #[test]
    fn different_circuits_do_not_collide() {
        let cache = PlanCache::new();
        cache.get_or_compile(&bell()).unwrap();
        let other = Circ::build(&false, |c, q: Qubit| {
            c.gate_t(q);
            q
        });
        let (_, hit) = cache.get_or_compile(&other).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }
}
