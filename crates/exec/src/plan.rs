//! Compiled execution plans and the fingerprint-keyed plan cache.
//!
//! Preparing a circuit for execution — validation, inlining every boxed
//! subroutine (paper §4.4.4), and profiling for backend selection — costs as
//! much as a simulation shot for classical circuits, and repeated jobs over
//! the same circuit family (multi-shot sampling, benchmark sweeps) would pay
//! it every time. A [`Plan`] captures the prepared form once; the
//! [`PlanCache`] keys plans by the structural
//! [`fingerprint`](quipper_circuit::fingerprint) of the hierarchical circuit,
//! so a repeat submission skips validation and flattening entirely.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use quipper_circuit::flatten::inline_all;
use quipper_circuit::{validate, BCircuit, Circuit};
use quipper_sim::{fuse_circuit, FuseStats, FusedCircuit};

use crate::error::ExecError;
use crate::profile::{profile, CircuitProfile};

/// A circuit prepared for repeated execution: validated, flattened, profiled
/// and gate-fused. Plans are immutable and shared (`Arc`) between the cache,
/// jobs in flight, and worker threads.
#[derive(Debug)]
pub struct Plan {
    /// Structural fingerprint of the *hierarchical* circuit this plan was
    /// compiled from (the cache key).
    pub fingerprint: u64,
    /// The flattened circuit: every subroutine call inlined.
    pub flat: Circuit,
    /// The flat circuit with runs of single-qubit gates fused, for backends
    /// that replay the stream many times (state vector). Fused once here so
    /// multi-shot jobs and cached resubmissions never re-fuse.
    pub fused: FusedCircuit,
    /// Backend-selection profile of the flat circuit.
    pub profile: CircuitProfile,
    /// How long validation + inlining + profiling + fusion took.
    pub compile_time: Duration,
}

impl Plan {
    /// Validates, flattens, profiles and fuses a hierarchical circuit.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Circuit`] if validation or inlining fails.
    pub fn compile(bc: &BCircuit) -> Result<Plan, ExecError> {
        let _span = quipper_trace::span(quipper_trace::Phase::Compile, "plan.compile");
        let start = Instant::now();
        validate::validate(&bc.db, &bc.main)?;
        let flat = inline_all(&bc.db, &bc.main)?;
        let profile = {
            let _span = quipper_trace::span(quipper_trace::Phase::Compile, "profile");
            profile(&flat)
        };
        let fused = {
            let _span = quipper_trace::span(quipper_trace::Phase::Compile, "fuse");
            fuse_circuit(&flat)
        };
        Ok(Plan {
            fingerprint: bc.fingerprint(),
            flat,
            fused,
            profile,
            compile_time: start.elapsed(),
        })
    }

    /// What fusion did to this plan's gate stream (static per plan).
    pub fn fuse_stats(&self) -> FuseStats {
        self.fused.stats
    }
}

/// A thread-safe cache of compiled plans keyed by circuit fingerprint, with
/// hit/miss counters surfaced in execution reports.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<u64, Arc<Plan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Returns the cached plan for this circuit, compiling and inserting it
    /// on first sight. The boolean is `true` on a cache hit.
    ///
    /// # Errors
    ///
    /// Propagates [`Plan::compile`] errors; failed compilations are not
    /// cached.
    pub fn get_or_compile(&self, bc: &BCircuit) -> Result<(Arc<Plan>, bool), ExecError> {
        let key = bc.fingerprint();
        if let Some(plan) = self.plans.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(plan), true));
        }
        // Compile outside the lock: plans can be large and compilation is the
        // expensive path. Two threads racing on the same new circuit both
        // compile; the entry is just overwritten with an identical plan.
        let plan = Arc::new(Plan::compile(bc)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.plans.lock().unwrap().insert(key, Arc::clone(&plan));
        Ok((plan, false))
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (compilations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct plans currently cached.
    pub fn len(&self) -> usize {
        self.plans.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached plans and resets the counters.
    pub fn clear(&self) {
        self.plans.lock().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quipper::{Circ, Qubit};

    fn bell() -> BCircuit {
        Circ::build(&(false, false), |c, (a, b): (Qubit, Qubit)| {
            c.hadamard(a);
            c.cnot(b, a);
            (c.measure(a), c.measure(b))
        })
    }

    #[test]
    fn repeat_submission_hits_cache() {
        let cache = PlanCache::new();
        let bc = bell();
        let (p1, hit1) = cache.get_or_compile(&bc).unwrap();
        let (p2, hit2) = cache.get_or_compile(&bc).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn structurally_equal_circuits_share_a_plan() {
        // Two independent builds of the same circuit fingerprint identically.
        let cache = PlanCache::new();
        cache.get_or_compile(&bell()).unwrap();
        let (_, hit) = cache.get_or_compile(&bell()).unwrap();
        assert!(hit);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_circuits_do_not_collide() {
        let cache = PlanCache::new();
        cache.get_or_compile(&bell()).unwrap();
        let other = Circ::build(&false, |c, q: Qubit| {
            c.gate_t(q);
            q
        });
        let (_, hit) = cache.get_or_compile(&other).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }
}
