//! Cooperative cancellation for in-flight jobs.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between whoever
//! owns a job (a service scheduler, a timeout watchdog, a client connection)
//! and the engine's shot loop. The shot loop polls the token between shots,
//! so a cancel or an expired deadline stops *real work* mid-job — not just a
//! dequeue that had not started yet. Polling costs one relaxed atomic load
//! (plus a monotonic clock read when a deadline is set), which is noise next
//! to even a classical simulation shot.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a token fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called (client cancel, shutdown, ...).
    Cancelled,
    /// The token's deadline passed while work was still running.
    DeadlineExceeded,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::Cancelled => write!(f, "cancelled"),
            CancelReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

const STATE_LIVE: u8 = 0;
const STATE_CANCELLED: u8 = 1;
const STATE_DEADLINE: u8 = 2;

struct Inner {
    state: AtomicU8,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle, optionally carrying a deadline.
///
/// All clones observe the same state; once fired, a token stays fired and
/// the *first* reason wins (an explicit cancel is not reclassified as a
/// deadline miss later, and vice versa).
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("fired", &self.fired())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that only fires on an explicit [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(STATE_LIVE),
                deadline: None,
            }),
        }
    }

    /// A token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(STATE_LIVE),
                deadline: Some(deadline),
            }),
        }
    }

    /// As [`CancelToken::with_deadline`], measured from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Fire the token with [`CancelReason::Cancelled`]. Idempotent; a no-op
    /// if the token already fired for any reason.
    pub fn cancel(&self) {
        let _ = self.inner.state.compare_exchange(
            STATE_LIVE,
            STATE_CANCELLED,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// The deadline this token enforces, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Whether the token has fired (without checking the deadline clock).
    pub fn fired(&self) -> bool {
        self.inner.state.load(Ordering::Relaxed) != STATE_LIVE
    }

    /// Poll the token: `Err` with the firing reason once cancelled or past
    /// the deadline, `Ok(())` while work may continue. This is the call the
    /// shot loop makes between shots.
    pub fn check(&self) -> Result<(), CancelReason> {
        match self.inner.state.load(Ordering::Relaxed) {
            STATE_CANCELLED => return Err(CancelReason::Cancelled),
            STATE_DEADLINE => return Err(CancelReason::DeadlineExceeded),
            _ => {}
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                let _ = self.inner.state.compare_exchange(
                    STATE_LIVE,
                    STATE_DEADLINE,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                // Re-read: a racing cancel() may have won; its reason sticks.
                return self.check();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_fires_once_and_sticks() {
        let t = CancelToken::new();
        assert_eq!(t.check(), Ok(()));
        assert!(!t.fired());
        let clone = t.clone();
        clone.cancel();
        assert!(t.fired());
        assert_eq!(t.check(), Err(CancelReason::Cancelled));
        t.cancel(); // idempotent
        assert_eq!(t.check(), Err(CancelReason::Cancelled));
    }

    #[test]
    fn past_deadline_fires_as_deadline_exceeded() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.check(), Err(CancelReason::DeadlineExceeded));
        // The reason does not get reclassified by a later cancel.
        t.cancel();
        assert_eq!(t.check(), Err(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_does_not_fire_early() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert_eq!(t.check(), Ok(()));
        // An explicit cancel beats a pending deadline.
        t.cancel();
        assert_eq!(t.check(), Err(CancelReason::Cancelled));
    }
}
