//! The execution engine: jobs, backend routing, shot scheduling, reports.
//!
//! [`Engine`] fronts every run function behind one subsystem. A [`Job`]
//! couples a circuit with inputs, a shot count and a base seed; the engine
//! compiles the circuit through its [`PlanCache`], routes the plan to the
//! cheapest capable [`Backend`], fans the shots out over a worker pool, and
//! returns an [`ExecResult`] whose [`ExecReport`] records what happened.
//!
//! # Determinism
//!
//! Shot `i` always runs with seed `base_seed + i`, regardless of which worker
//! executes it, and per-shot outcomes are merged into a histogram by
//! commutative addition before a canonical sort (count descending, then
//! pattern ascending). Parallel results are therefore bit-identical to
//! sequential ones for the same base seed.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use quipper::{Circ, QCData, Shape};
use quipper_circuit::BCircuit;
use quipper_opt::{OptLevel, OptSummary, PassStats};
use quipper_sim::{FuseStats, StateVecConfig};
use quipper_trace::{fmt_duration, names, Phase, ProfileSummary, TraceSummary, Tracer};

use crate::backend::{
    Backend, ClassicalBackend, CountingBackend, ResourceEstimate, StabilizerBackend,
    StateVecBackend,
};
use crate::cancel::CancelToken;
use crate::error::ExecError;
use crate::plan::{LintGate, Plan, PlanCache};
use crate::profile::CircuitProfile;

use quipper_lint::LintSummary;

/// Tuning knobs for [`Engine::with_config`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads for multi-shot fan-out; `1` runs everything inline.
    pub workers: usize,
    /// Peak live-qubit cap for the state-vector backend.
    pub max_qubits: usize,
    /// State-vector hot-path tuning (gate fusion, kernel threading).
    pub statevec: StateVecConfig,
    /// Static-analysis gate applied when compiling plans: findings at or
    /// above the gate's severity make the job fail with [`ExecError::Lint`]
    /// before anything is cached or executed. Defaults to
    /// [`LintGate::DenyErrors`].
    pub lint: LintGate,
    /// Optimizer level applied when compiling plans (jobs can override it
    /// per submission via [`Job::opt`]). Defaults to [`OptLevel::Default`]:
    /// facts-seeded cleanup, cancellation and rotation merging;
    /// [`OptLevel::Off`] reproduces pre-optimizer plans bit-identically.
    pub opt: OptLevel,
    /// Tracing sink for spans, cache/routing events and latency metrics.
    /// Defaults to the process-wide [`quipper_trace::tracer`] (disabled until
    /// someone enables it); use [`Tracer::leaked`] for a dedicated sink.
    pub trace: &'static Tracer,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            max_qubits: crate::backend::DEFAULT_MAX_QUBITS,
            statevec: StateVecConfig::default(),
            lint: LintGate::default(),
            opt: OptLevel::default(),
            trace: quipper_trace::tracer(),
        }
    }
}

/// A unit of work: one circuit, its basis-state inputs, how many shots to
/// run, and the base seed. Built fluently:
///
/// ```ignore
/// let result = engine.run(&Job::new(&circuit).shots(1000).seed(42))?;
/// ```
#[derive(Clone, Debug)]
pub struct Job<'a> {
    circuit: &'a BCircuit,
    inputs: Vec<bool>,
    shots: u64,
    base_seed: u64,
    backend: Option<String>,
    label: String,
    cancel: Option<CancelToken>,
    opt: Option<OptLevel>,
}

impl<'a> Job<'a> {
    /// A single-shot job with no inputs and seed 0.
    pub fn new(circuit: &'a BCircuit) -> Job<'a> {
        Job {
            circuit,
            inputs: Vec::new(),
            shots: 1,
            base_seed: 0,
            backend: None,
            label: String::new(),
            cancel: None,
            opt: None,
        }
    }

    /// Sets the basis-state values of the circuit's input wires.
    pub fn inputs(mut self, inputs: Vec<bool>) -> Self {
        self.inputs = inputs;
        self
    }

    /// Sets the number of shots.
    pub fn shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Sets the base seed; shot `i` runs with seed `base_seed + i`.
    pub fn seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Pins the job to a named backend instead of auto-selection.
    pub fn on_backend(mut self, name: &str) -> Self {
        self.backend = Some(name.to_string());
        self
    }

    /// Attaches a caller-chosen label, carried into [`JobQueue`] results so
    /// batch outcomes can be correlated with submissions without positional
    /// indexing.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Attaches a cancellation token. The shot loop polls it between shots:
    /// once it fires, remaining shots are abandoned and the job fails with
    /// [`ExecError::Cancelled`].
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Overrides the engine's optimizer level for this job only. Plans are
    /// cached per `(fingerprint, level)`, so overriding never poisons other
    /// jobs' cached plans.
    pub fn opt(mut self, level: OptLevel) -> Self {
        self.opt = Some(level);
        self
    }
}

/// What the engine did for one job, attached to every [`ExecResult`].
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Which backend executed the shots.
    pub backend: &'static str,
    /// Number of shots run.
    pub shots: u64,
    /// Worker threads actually used.
    pub workers: usize,
    /// Whether the compiled plan came from the cache.
    pub cache_hit: bool,
    /// Structural fingerprint of the circuit (the cache key).
    pub fingerprint: u64,
    /// Wall-clock time spent compiling the plan (validation, inlining,
    /// profiling, fusion) in this call; (near) zero on a cache hit.
    pub compile: Duration,
    /// Wall-clock time spent executing the shots.
    pub execute: Duration,
    /// Fusion and kernel-classification counters of the executed plan
    /// (static per plan, independent of shot count).
    pub fuse: FuseStats,
    /// Why the job ran on `backend`: the routing decision derived from the
    /// plan's [`CircuitProfile`] (or the pin requested by the job).
    pub route_reason: String,
    /// Static-analysis summary of the executed plan (static per plan).
    /// `None` only for reports built outside the engine.
    pub lint: Option<LintSummary>,
    /// What the optimizer did to the executed plan (static per plan).
    /// `None` when the plan was compiled at [`OptLevel::Off`].
    pub opt: Option<OptSummary>,
    /// Per-pass optimizer deltas for the executed plan, in pipeline order
    /// (static per plan). `None` when the plan was compiled at
    /// [`OptLevel::Off`], or for reports built outside the engine.
    pub opt_passes: Option<Vec<PassStats>>,
    /// Trace accounting for this job, when tracing was enabled during it.
    pub trace: Option<TraceSummary>,
    /// Sampling-profiler attribution for this job's state-vector windows,
    /// when the profiler ([`StateVecConfig::profile`]) and the process-wide
    /// tracer were both enabled. Computed as a counter delta over the job,
    /// so concurrent jobs in one process fold into each other's summaries
    /// (the same caveat as `trace`).
    pub profile: Option<ProfileSummary>,
}

impl ExecReport {
    /// Total wall-clock time: compile + execute.
    pub fn wall(&self) -> Duration {
        self.compile + self.execute
    }
}

impl fmt::Display for ExecReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>6} shots on {:<10} | plan {:#018x} {} | workers {:<2} | compile {:>9} | exec {:>9} | fused {}/{} | route: {}",
            self.shots,
            self.backend,
            self.fingerprint,
            if self.cache_hit { "hit " } else { "miss" },
            self.workers,
            fmt_duration(self.compile),
            fmt_duration(self.execute),
            self.fuse.fused_away,
            self.fuse.gates_in,
            self.route_reason,
        )?;
        if let Some(opt) = &self.opt {
            write!(f, " | opt: {opt}")?;
        }
        if let Some(lint) = &self.lint {
            if !lint.is_empty() {
                write!(f, " | lint: {lint}")?;
            }
        }
        if let Some(trace) = &self.trace {
            write!(f, " | trace: {trace}")?;
        }
        if let Some(profile) = &self.profile {
            if !profile.is_empty() {
                write!(f, " | profile: {profile}")?;
            }
        }
        Ok(())
    }
}

/// The outcome histogram of a job plus its report.
#[derive(Clone, Debug)]
pub struct ExecResult {
    /// Distinct output bit patterns with their occurrence counts, sorted by
    /// count descending, ties broken by pattern ascending.
    pub histogram: Vec<(Vec<bool>, u64)>,
    /// What the engine did.
    pub report: ExecReport,
}

impl ExecResult {
    /// The most frequent output pattern, if any shots ran.
    pub fn most_frequent(&self) -> Option<&[bool]> {
        self.histogram.first().map(|(p, _)| p.as_slice())
    }

    /// How many shots produced exactly this pattern.
    pub fn count_of(&self, pattern: &[bool]) -> u64 {
        self.histogram
            .iter()
            .find(|(p, _)| p == pattern)
            .map_or(0, |&(_, n)| n)
    }
}

/// Cumulative engine counters, snapshot via [`Engine::stats`].
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Jobs executed successfully.
    pub jobs: u64,
    /// Total shots executed.
    pub shots: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses (compilations).
    pub cache_misses: u64,
    /// Distinct plans currently cached.
    pub cached_plans: usize,
    /// Jobs per backend, sorted by backend name.
    pub backend_jobs: Vec<(&'static str, u64)>,
    /// Interactive (dynamic-lifting) builds executed.
    pub interactive_runs: u64,
    /// Gates eliminated by single-qubit fusion, summed over executed jobs'
    /// plans.
    pub fused_gates: u64,
    /// Plan ops dispatched to the diagonal kernel, summed over executed jobs.
    pub diagonal_ops: u64,
    /// Plan ops dispatched to the permutation kernel, summed over executed
    /// jobs.
    pub permutation_ops: u64,
    /// Plan ops dispatched to the dense 2×2 kernel, summed over executed
    /// jobs.
    pub general_ops: u64,
    /// Gates removed by the optimizer, summed over executed jobs' plans
    /// (zero when every job ran at [`OptLevel::Off`]).
    pub opt_gates_removed: u64,
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<12}{} ({} shots)", "jobs", self.jobs, self.shots)?;
        writeln!(
            f,
            "{:<12}{} hits / {} misses / {} cached",
            "plan cache", self.cache_hits, self.cache_misses, self.cached_plans
        )?;
        writeln!(f, "{:<12}{} gates fused away", "fusion", self.fused_gates)?;
        if self.opt_gates_removed > 0 {
            writeln!(
                f,
                "{:<12}{} gates removed",
                "optimizer", self.opt_gates_removed
            )?;
        }
        writeln!(
            f,
            "{:<12}diagonal {} | permutation {} | general {}",
            "kernel ops", self.diagonal_ops, self.permutation_ops, self.general_ops
        )?;
        write!(f, "{:<12}", "backends")?;
        for (i, (name, n)) in self.backend_jobs.iter().enumerate() {
            write!(f, "{}{name}={n}", if i == 0 { "" } else { " " })?;
        }
        if self.interactive_runs > 0 {
            write!(f, "\n{:<12}{}", "interactive", self.interactive_runs)?;
        }
        Ok(())
    }
}

/// The execution engine: registered backends in routing order, the plan
/// cache, and the worker pool width. Shared freely across threads.
pub struct Engine {
    backends: Vec<Arc<dyn Backend>>,
    counting: CountingBackend,
    cache: PlanCache,
    workers: usize,
    lint: LintGate,
    opt: OptLevel,
    trace: &'static Tracer,
    /// Whether the state-vector backend was configured with the sampling
    /// window profiler; gates the per-job [`ProfileSummary`] delta.
    profile: bool,
    jobs: AtomicU64,
    shots: AtomicU64,
    interactive_runs: AtomicU64,
    fused_gates: AtomicU64,
    diagonal_ops: AtomicU64,
    permutation_ops: AtomicU64,
    general_ops: AtomicU64,
    opt_gates_removed: AtomicU64,
    backend_jobs: Mutex<HashMap<&'static str, u64>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with the default configuration: all built-in backends, one
    /// worker per hardware thread.
    pub fn new() -> Engine {
        Engine::with_config(EngineConfig::default())
    }

    /// An engine with explicit worker count and state-vector width cap.
    ///
    /// Backends are registered cheapest-first; auto-selection takes the first
    /// one that admits the circuit: classical (linear) over stabilizer
    /// (polynomial) over state-vector (exponential).
    pub fn with_config(config: EngineConfig) -> Engine {
        let backends = Engine::default_backends(&config);
        Engine::with_backends(config, backends)
    }

    /// The built-in backend set for a configuration, in routing order.
    /// Useful as the starting point for [`Engine::with_backends`] when
    /// wrapping backends (fault injection, instrumentation).
    pub fn default_backends(config: &EngineConfig) -> Vec<Arc<dyn Backend>> {
        vec![
            Arc::new(ClassicalBackend),
            Arc::new(StabilizerBackend),
            Arc::new(StateVecBackend {
                max_qubits: config.max_qubits,
                config: config.statevec,
            }),
        ]
    }

    /// An engine routing over an explicit backend list (tried in order).
    /// This is how wrappers like a fault injector are installed: wrap the
    /// [`Engine::default_backends`] and hand them back here.
    pub fn with_backends(config: EngineConfig, backends: Vec<Arc<dyn Backend>>) -> Engine {
        Engine {
            backends,
            counting: CountingBackend,
            cache: PlanCache::new(),
            workers: config.workers.max(1),
            lint: config.lint,
            opt: config.opt,
            trace: config.trace,
            profile: config.statevec.profile,
            jobs: AtomicU64::new(0),
            shots: AtomicU64::new(0),
            interactive_runs: AtomicU64::new(0),
            fused_gates: AtomicU64::new(0),
            diagonal_ops: AtomicU64::new(0),
            permutation_ops: AtomicU64::new(0),
            general_ops: AtomicU64::new(0),
            opt_gates_removed: AtomicU64::new(0),
            backend_jobs: Mutex::new(HashMap::new()),
        }
    }

    /// The registered backends, in routing order.
    pub fn backends(&self) -> impl Iterator<Item = &dyn Backend> {
        self.backends.iter().map(|b| &**b)
    }

    /// Compiles (or fetches from cache) the plan for a circuit. Useful for
    /// inspecting the profile the router will see.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Circuit`] if validation or flattening fails, and
    /// [`ExecError::Lint`] if the circuit fails the engine's lint gate.
    pub fn plan(&self, circuit: &BCircuit) -> Result<Arc<Plan>, ExecError> {
        self.plan_with(circuit, self.opt)
    }

    /// As [`Engine::plan`], but compiling at an explicit optimizer level
    /// instead of the engine's configured one.
    ///
    /// # Errors
    ///
    /// As [`Engine::plan`].
    pub fn plan_with(&self, circuit: &BCircuit, level: OptLevel) -> Result<Arc<Plan>, ExecError> {
        Ok(self.cache.get_or_compile_opt(circuit, self.lint, level)?.0)
    }

    /// The optimizer level plans compile at unless a job overrides it.
    pub fn opt_level(&self) -> OptLevel {
        self.opt
    }

    /// The engine's plan cache, for hit/miss accounting and eviction.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Which backend auto-selection would route this circuit to.
    ///
    /// # Errors
    ///
    /// As for [`Engine::run`], minus execution errors.
    pub fn select_backend(&self, circuit: &BCircuit) -> Result<&'static str, ExecError> {
        let (plan, _) = self
            .cache
            .get_or_compile_opt(circuit, self.lint, self.opt)?;
        Ok(self.route(&plan, None)?.name())
    }

    fn route(&self, plan: &Plan, pinned: Option<&str>) -> Result<&dyn Backend, ExecError> {
        if let Some(name) = pinned {
            let backend = self
                .backends
                .iter()
                .find(|b| b.name() == name)
                .ok_or_else(|| ExecError::UnknownBackend {
                    name: name.to_string(),
                })?;
            return match backend.admit(&plan.profile) {
                Ok(()) => Ok(&**backend),
                Err(reason) => Err(ExecError::NoBackend {
                    reason: format!("{name}: {reason}"),
                }),
            };
        }
        let mut reasons = Vec::new();
        for backend in &self.backends {
            match backend.admit(&plan.profile) {
                Ok(()) => return Ok(&**backend),
                Err(reason) => reasons.push(format!("{}: {}", backend.name(), reason)),
            }
        }
        Err(ExecError::NoBackend {
            reason: reasons.join("; "),
        })
    }

    /// Runs a job: compile/cache, route, execute all shots, merge.
    ///
    /// # Errors
    ///
    /// Compilation, lint-gate, routing and per-shot simulation errors. On a
    /// shot error
    /// the whole job fails with the error of the *lowest-indexed* failing
    /// shot, so parallel and sequential schedules report identically.
    pub fn run(&self, job: &Job) -> Result<ExecResult, ExecError> {
        self.run_with_workers(job, self.workers)
    }

    /// As [`Engine::run`], but forcing a sequential (single-worker) schedule.
    ///
    /// # Errors
    ///
    /// As for [`Engine::run`].
    pub fn run_sequential(&self, job: &Job) -> Result<ExecResult, ExecError> {
        self.run_with_workers(job, 1)
    }

    fn run_with_workers(&self, job: &Job, workers: usize) -> Result<ExecResult, ExecError> {
        let trace = self.trace;
        let counts_before = trace.counts();
        // The state-vector runners publish profiler counters to the
        // process-wide tracer, so the per-job delta reads from there (not
        // from `self.trace`, which may be a dedicated sink).
        let prof_before = (self.profile && quipper_trace::enabled()).then(global_profile_counters);
        let _job_span = trace.span(Phase::Execute, "engine.job");

        let compile_start = Instant::now();
        let opt_level = job.opt.unwrap_or(self.opt);
        let (plan, cache_hit) = {
            let _span = trace.span(Phase::Compile, "plan.get_or_compile");
            self.cache
                .get_or_compile_opt(job.circuit, self.lint, opt_level)?
        };
        let compile = compile_start.elapsed();
        if trace.enabled() {
            let (metric, tag) = if cache_hit {
                (names::CACHE_HIT, "hit")
            } else {
                (names::CACHE_MISS, "miss")
            };
            trace.metrics().add(metric, 1);
            trace.instant(
                Phase::Compile,
                "plan.cache",
                Some(format!("{tag} plan {:#018x}", plan.fingerprint)),
            );
        }

        let backend = self.route(&plan, job.backend.as_deref())?;
        let route_reason = route_reason(&plan.profile, backend.name(), job.backend.is_some());
        if trace.enabled() {
            trace.metrics().add(route_metric(backend.name()), 1);
            trace
                .metrics()
                .record_max(names::PEAK_QUBITS, plan.profile.peak_qubits as u64);
            trace.instant(
                Phase::Execute,
                "route",
                Some(format!("{}: {route_reason}", backend.name())),
            );
        }
        if !plan.profile.outputs_classical {
            return Err(ExecError::QuantumOutputs);
        }

        // A token that fired while the job was queued (or compiling) stops
        // the job before any shot runs.
        if let Some(token) = &job.cancel {
            if let Err(reason) = token.check() {
                if trace.enabled() {
                    trace.metrics().add(names::EXEC_CANCELLED, 1);
                }
                return Err(ExecError::Cancelled { reason });
            }
        }

        let workers = workers.clamp(1, job.shots.max(1) as usize);
        let task = ShotTask {
            backend,
            plan: &plan,
            inputs: &job.inputs,
            base_seed: job.base_seed,
            cancel: job.cancel.as_ref(),
            trace,
        };
        let start = Instant::now();
        let histogram = {
            let _span = trace.span(Phase::Execute, "shots");
            if workers == 1 {
                run_shots(&task, 0..job.shots).map_err(|(_, e)| e)?
            } else {
                run_shots_parallel(&task, job.shots, workers)?
            }
        };
        let execute = start.elapsed();

        let mut histogram: Vec<(Vec<bool>, u64)> = histogram.into_iter().collect();
        histogram.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        let fuse = plan.fuse_stats();
        let opt_summary = plan.opt.as_ref().map(|r| r.summary());
        if let Some(opt) = &opt_summary {
            self.opt_gates_removed.fetch_add(
                opt.gates_before.saturating_sub(opt.gates_after),
                Ordering::Relaxed,
            );
        }
        self.jobs.fetch_add(1, Ordering::Relaxed);
        self.shots.fetch_add(job.shots, Ordering::Relaxed);
        self.fused_gates
            .fetch_add(fuse.fused_away as u64, Ordering::Relaxed);
        self.diagonal_ops
            .fetch_add(fuse.diagonal as u64, Ordering::Relaxed);
        self.permutation_ops
            .fetch_add(fuse.permutation as u64, Ordering::Relaxed);
        self.general_ops
            .fetch_add(fuse.general as u64, Ordering::Relaxed);
        *self
            .backend_jobs
            .lock()
            .unwrap()
            .entry(backend.name())
            .or_insert(0) += 1;

        let trace_summary = trace.enabled().then(|| {
            let counts_after = trace.counts();
            TraceSummary {
                events: counts_after.0 - counts_before.0,
                dropped: counts_after.1 - counts_before.1,
            }
        });
        let profile_summary = prof_before.map(|before| {
            let after = global_profile_counters();
            ProfileSummary {
                windows_sampled: after.windows_sampled - before.windows_sampled,
                sampled_ns: after.sampled_ns - before.sampled_ns,
                diagonal_ns: after.diagonal_ns - before.diagonal_ns,
                permutation_ns: after.permutation_ns - before.permutation_ns,
                general_ns: after.general_ns - before.general_ns,
                mat4_ns: after.mat4_ns - before.mat4_ns,
            }
        });

        Ok(ExecResult {
            histogram,
            report: ExecReport {
                backend: backend.name(),
                shots: job.shots,
                workers,
                cache_hit,
                fingerprint: plan.fingerprint,
                compile,
                execute,
                fuse,
                route_reason,
                lint: Some(plan.lint.summary()),
                opt: opt_summary,
                opt_passes: plan.opt.as_ref().map(|r| r.passes.clone()),
                trace: trace_summary,
                profile: profile_summary,
            },
        })
    }

    /// Resource estimation without execution, via the counting backend.
    pub fn estimate(&self, circuit: &BCircuit) -> ResourceEstimate {
        self.counting.estimate(circuit)
    }

    /// Builds a circuit interactively under a dynamic-lifting executor
    /// (paper §4.3): measurement outcomes observed by `dynamic_lift` inside
    /// `f` come from an actual simulation seeded with `seed`, so the returned
    /// circuit records the path the computation really took.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::NoBackend`] if no registered backend supports
    /// dynamic lifting.
    pub fn run_interactive<S: Shape, B: QCData>(
        &self,
        shape: &S,
        seed: u64,
        f: impl FnOnce(&mut Circ, S::Q) -> B,
    ) -> Result<BCircuit, ExecError> {
        let lifter = self
            .backends
            .iter()
            .filter(|b| b.capabilities().dynamic_lifting)
            .find_map(|b| b.make_lifter(seed))
            .ok_or_else(|| ExecError::NoBackend {
                reason: "no registered backend supports dynamic lifting".to_string(),
            })?;
        self.interactive_runs.fetch_add(1, Ordering::Relaxed);
        Ok(Circ::build_interactive(shape, lifter, f))
    }

    /// A snapshot of the engine's cumulative counters.
    pub fn stats(&self) -> EngineStats {
        let mut backend_jobs: Vec<(&'static str, u64)> = self
            .backend_jobs
            .lock()
            .unwrap()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect();
        backend_jobs.sort_unstable();
        EngineStats {
            jobs: self.jobs.load(Ordering::Relaxed),
            shots: self.shots.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cached_plans: self.cache.len(),
            backend_jobs,
            interactive_runs: self.interactive_runs.load(Ordering::Relaxed),
            fused_gates: self.fused_gates.load(Ordering::Relaxed),
            diagonal_ops: self.diagonal_ops.load(Ordering::Relaxed),
            permutation_ops: self.permutation_ops.load(Ordering::Relaxed),
            general_ops: self.general_ops.load(Ordering::Relaxed),
            opt_gates_removed: self.opt_gates_removed.load(Ordering::Relaxed),
        }
    }
}

type Histogram = HashMap<Vec<bool>, u64>;

/// Why the router picked `backend`, phrased from the circuit profile. The
/// registration order is cheapest-first, so each backend's reason states the
/// profile property that admitted it.
fn route_reason(profile: &CircuitProfile, backend: &'static str, pinned: bool) -> String {
    if pinned {
        return format!("pinned to `{backend}` by the job");
    }
    match backend {
        "classical" => "classical-only circuit; boolean evaluation suffices".to_string(),
        "stabilizer" => "Clifford-only circuit; polynomial stabilizer simulation".to_string(),
        "statevec" => format!(
            "universal gate set; peak {} qubit{} within state-vector cap",
            profile.peak_qubits,
            if profile.peak_qubits == 1 { "" } else { "s" },
        ),
        other => format!("first capable backend `{other}`"),
    }
}

/// The routing-decision counter for a backend name.
fn route_metric(backend: &'static str) -> &'static str {
    match backend {
        "classical" => names::ROUTE_CLASSICAL,
        "stabilizer" => names::ROUTE_STABILIZER,
        "statevec" => names::ROUTE_STATEVEC,
        _ => names::ROUTE_OTHER,
    }
}

/// Current process-wide `sim.profile.*` counter values as a summary; two
/// readings bracket a job to produce its [`ProfileSummary`] delta.
fn global_profile_counters() -> ProfileSummary {
    let m = quipper_trace::tracer().metrics();
    ProfileSummary {
        windows_sampled: m.counter(names::PROF_WINDOWS_SAMPLED),
        sampled_ns: m.counter(names::PROF_SAMPLED_NS),
        diagonal_ns: m.counter(names::PROF_DIAGONAL_NS),
        permutation_ns: m.counter(names::PROF_PERMUTATION_NS),
        general_ns: m.counter(names::PROF_GENERAL_NS),
        mat4_ns: m.counter(names::PROF_MAT4_NS),
    }
}

/// Everything a shot worker needs, shared read-only across workers.
struct ShotTask<'a> {
    backend: &'a dyn Backend,
    plan: &'a Plan,
    inputs: &'a [bool],
    base_seed: u64,
    cancel: Option<&'a CancelToken>,
    trace: &'a Tracer,
}

/// How many shots run between cancellation polls. Each poll is a relaxed
/// atomic load (plus one clock read when a deadline is set) — cheap, but a
/// chunk keeps even that off the per-shot path for tokenless jobs' peers.
const CANCEL_POLL_CHUNK: u64 = 8;

/// Runs a contiguous range of shots, accumulating a local histogram. On
/// error, reports the failing shot's index so callers can pick the
/// lowest-indexed error deterministically. The job's cancellation token is
/// polled between chunks of [`CANCEL_POLL_CHUNK`] shots, so a fired token
/// abandons in-progress work rather than only unstarted jobs.
fn run_shots(task: &ShotTask, shots: std::ops::Range<u64>) -> Result<Histogram, (u64, ExecError)> {
    // Per-shot timing costs two clock reads; only pay them while tracing.
    let timed = task.trace.enabled();
    let first = shots.start;
    let mut histogram = Histogram::new();
    for shot in shots {
        if let Some(token) = task.cancel {
            if (shot - first).is_multiple_of(CANCEL_POLL_CHUNK) {
                if let Err(reason) = token.check() {
                    if timed {
                        task.trace.metrics().add(names::EXEC_CANCELLED, 1);
                    }
                    return Err((shot, ExecError::Cancelled { reason }));
                }
            }
        }
        let shot_start = timed.then(Instant::now);
        match task
            .backend
            .run_shot(task.plan, task.inputs, task.base_seed.wrapping_add(shot))
        {
            Ok(bits) => *histogram.entry(bits).or_insert(0) += 1,
            Err(e) => return Err((shot, e)),
        }
        if timed {
            task.trace.metrics().add(names::SHOTS_RUN, 1);
        }
        if let Some(start) = shot_start {
            task.trace
                .metrics()
                .observe(names::SHOT_LATENCY_US, start.elapsed().as_micros() as u64);
        }
    }
    Ok(histogram)
}

/// Fans `shots` out over `workers` scoped threads in contiguous chunks and
/// merges the per-worker histograms. Seeds depend only on the shot index, and
/// histogram addition commutes, so the merged result is bit-identical to a
/// sequential run.
fn run_shots_parallel(task: &ShotTask, shots: u64, workers: usize) -> Result<Histogram, ExecError> {
    let next_chunk = AtomicUsize::new(0);
    let chunks: Vec<std::ops::Range<u64>> = (0..workers as u64)
        .map(|i| (i * shots / workers as u64)..((i + 1) * shots / workers as u64))
        .collect();

    let results: Vec<Result<Histogram, (u64, ExecError)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next_chunk = &next_chunk;
                let chunks = &chunks;
                scope.spawn(move || {
                    let mut merged = Histogram::new();
                    // Chunk-claiming loop: with one chunk per worker this is
                    // one iteration, but it also tolerates workers > chunks.
                    loop {
                        let i = next_chunk.fetch_add(1, Ordering::Relaxed);
                        let Some(range) = chunks.get(i) else {
                            return Ok(merged);
                        };
                        let _span = task.trace.enabled().then(|| {
                            task.trace.span(
                                Phase::Execute,
                                format!("shots[{}..{}]", range.start, range.end),
                            )
                        });
                        let local = run_shots(task, range.clone())?;
                        for (bits, n) in local {
                            *merged.entry(bits).or_insert(0) += n;
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shot worker panicked"))
            .collect()
    });

    let mut merged = Histogram::new();
    let mut first_error: Option<(u64, ExecError)> = None;
    for result in results {
        match result {
            Ok(local) => {
                for (bits, n) in local {
                    *merged.entry(bits).or_insert(0) += n;
                }
            }
            Err((shot, e)) => {
                if first_error.as_ref().is_none_or(|(s, _)| shot < *s) {
                    first_error = Some((shot, e));
                }
            }
        }
    }
    match first_error {
        Some((_, e)) => Err(e),
        None => Ok(merged),
    }
}

/// One job's outcome from [`JobQueue::run_all`], carrying the label the job
/// was submitted with so callers correlate results with submissions without
/// positional indexing.
#[derive(Debug)]
pub struct JobResult {
    /// The label the job was built with ([`Job::label`]); empty if none.
    pub label: String,
    /// The job's execution outcome.
    pub result: Result<ExecResult, ExecError>,
}

impl JobResult {
    /// The result, discarding the label (convenience for positional use).
    pub fn into_result(self) -> Result<ExecResult, ExecError> {
        self.result
    }
}

/// A batch of jobs executed through one engine, fanning out *across jobs*
/// (each job runs its shots sequentially on its worker, so results remain
/// independent of the schedule).
#[derive(Default)]
pub struct JobQueue<'a> {
    jobs: Vec<Job<'a>>,
}

impl<'a> JobQueue<'a> {
    /// An empty queue (equivalently, `JobQueue::default()`).
    pub fn new() -> JobQueue<'a> {
        JobQueue::default()
    }

    /// Appends a job; returns its index in the results of
    /// [`JobQueue::run_all`].
    pub fn push(&mut self, job: Job<'a>) -> usize {
        self.jobs.push(job);
        self.jobs.len() - 1
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every queued job, returning per-job labelled results in push
    /// order. Jobs are distributed over the engine's workers; each job's
    /// outcome is deterministic, so the batch result does not depend on the
    /// schedule.
    pub fn run_all(self, engine: &Engine) -> Vec<JobResult> {
        let labels: Vec<String> = self.jobs.iter().map(|j| j.label.clone()).collect();
        let results: Vec<Result<ExecResult, ExecError>> =
            if engine.workers <= 1 || self.jobs.len() <= 1 {
                self.jobs.iter().map(|j| engine.run_sequential(j)).collect()
            } else {
                let workers = engine.workers.min(self.jobs.len());
                let next_job = AtomicUsize::new(0);
                let slots: Vec<Mutex<Option<Result<ExecResult, ExecError>>>> =
                    self.jobs.iter().map(|_| Mutex::new(None)).collect();
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        let next_job = &next_job;
                        let slots = &slots;
                        let jobs = &self.jobs;
                        scope.spawn(move || loop {
                            let i = next_job.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(i) else { return };
                            *slots[i].lock().unwrap() = Some(engine.run_sequential(job));
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|slot| slot.into_inner().unwrap().expect("every job slot filled"))
                    .collect()
            };
        labels
            .into_iter()
            .zip(results)
            .map(|(label, result)| JobResult { label, result })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ExecReport {
        ExecReport {
            backend: "statevec",
            shots: 1000,
            workers: 4,
            cache_hit: false,
            fingerprint: 0xdead_beef,
            compile: Duration::from_micros(1_500),
            execute: Duration::from_micros(250),
            fuse: FuseStats {
                gates_in: 210,
                gates_out: 198,
                fused_away: 12,
                fused_2q: 4,
                windowable: 150,
                diagonal: 20,
                permutation: 30,
                general: 100,
                other: 48,
            },
            route_reason: "universal gate set; peak 9 qubits within state-vector cap".into(),
            lint: None,
            opt: None,
            opt_passes: None,
            trace: None,
            profile: None,
        }
    }

    // Golden tests: the exact rendering is part of the interface (logs and
    // example output are diffed across PRs), so any change must be explicit.
    #[test]
    fn exec_report_display_golden() {
        assert_eq!(
            sample_report().to_string(),
            "  1000 shots on statevec   | plan 0x00000000deadbeef miss | workers 4  | \
             compile    1.50ms | exec  250.00µs | fused 12/210 | \
             route: universal gate set; peak 9 qubits within state-vector cap"
        );
    }

    #[test]
    fn exec_report_display_with_cache_hit_and_trace() {
        let report = ExecReport {
            cache_hit: true,
            compile: Duration::from_nanos(480),
            execute: Duration::from_millis(2_500),
            trace: Some(TraceSummary {
                events: 42,
                dropped: 0,
            }),
            route_reason: "pinned to `statevec` by the job".into(),
            ..sample_report()
        };
        assert_eq!(
            report.to_string(),
            "  1000 shots on statevec   | plan 0x00000000deadbeef hit  | workers 4  | \
             compile     480ns | exec     2.50s | fused 12/210 | \
             route: pinned to `statevec` by the job | trace: 42 events"
        );
    }

    #[test]
    fn exec_report_display_mentions_lint_only_when_findings_exist() {
        let clean = ExecReport {
            lint: Some(LintSummary::default()),
            ..sample_report()
        };
        assert!(!clean.to_string().contains("lint:"));
        let flagged = ExecReport {
            lint: Some(LintSummary {
                errors: 0,
                warnings: 2,
                notes: 1,
                proved_terms: 3,
            }),
            ..sample_report()
        };
        assert_eq!(
            flagged.to_string(),
            "  1000 shots on statevec   | plan 0x00000000deadbeef miss | workers 4  | \
             compile    1.50ms | exec  250.00µs | fused 12/210 | \
             route: universal gate set; peak 9 qubits within state-vector cap | \
             lint: 0E/2W/1N (3 proved)"
        );
    }

    #[test]
    fn engine_stats_display_golden() {
        let stats = EngineStats {
            jobs: 3,
            shots: 600,
            cache_hits: 2,
            cache_misses: 1,
            cached_plans: 1,
            backend_jobs: vec![("stabilizer", 1), ("statevec", 2)],
            interactive_runs: 1,
            fused_gates: 36,
            diagonal_ops: 24,
            permutation_ops: 30,
            general_ops: 61,
            opt_gates_removed: 0,
        };
        assert_eq!(
            stats.to_string(),
            "jobs        3 (600 shots)\n\
             plan cache  2 hits / 1 misses / 1 cached\n\
             fusion      36 gates fused away\n\
             kernel ops  diagonal 24 | permutation 30 | general 61\n\
             backends    stabilizer=1 statevec=2\n\
             interactive 1"
        );
        // The optimizer line only appears once the optimizer removed
        // something, so `Off`-only workloads render exactly as before.
        let with_opt = EngineStats {
            opt_gates_removed: 17,
            ..stats
        };
        assert!(with_opt
            .to_string()
            .contains("optimizer   17 gates removed"));
    }

    #[test]
    fn exec_report_display_mentions_opt_when_a_level_ran() {
        let report = ExecReport {
            opt: Some(OptSummary {
                level: OptLevel::Default,
                gates_before: 220,
                gates_after: 198,
                rewrites: 11,
            }),
            ..sample_report()
        };
        assert_eq!(
            report.to_string(),
            "  1000 shots on statevec   | plan 0x00000000deadbeef miss | workers 4  | \
             compile    1.50ms | exec  250.00µs | fused 12/210 | \
             route: universal gate set; peak 9 qubits within state-vector cap | \
             opt: default 220->198"
        );
    }

    #[test]
    fn route_reasons_name_the_deciding_profile_property() {
        let profile = CircuitProfile {
            classical_only: false,
            clifford_only: false,
            peak_qubits: 9,
            num_inputs: 3,
            num_gates: 210,
            outputs_classical: true,
        };
        assert_eq!(
            route_reason(&profile, "statevec", false),
            "universal gate set; peak 9 qubits within state-vector cap"
        );
        assert!(route_reason(&profile, "classical", false).contains("classical-only"));
        assert!(route_reason(&profile, "stabilizer", false).contains("Clifford-only"));
        assert_eq!(
            route_reason(&profile, "statevec", true),
            "pinned to `statevec` by the job"
        );
        assert_eq!(route_metric("statevec"), names::ROUTE_STATEVEC);
        assert_eq!(route_metric("mystery"), names::ROUTE_OTHER);
    }
}
