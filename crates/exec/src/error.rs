//! Errors of the execution engine.

use std::fmt;

use quipper_circuit::CircuitError;
use quipper_lint::LintReport;
use quipper_sim::SimError;

use crate::cancel::CancelReason;

/// Anything that can go wrong preparing or executing a job.
#[derive(Debug)]
pub enum ExecError {
    /// The circuit failed validation or flattening.
    Circuit(CircuitError),
    /// The circuit failed static analysis at the engine's configured lint
    /// gate severity. The full report is attached; the plan was not cached.
    Lint(LintReport),
    /// A backend rejected a gate or assertion at execution time.
    Sim {
        /// Which backend was executing.
        backend: &'static str,
        /// The underlying simulator error.
        source: SimError,
    },
    /// No registered backend can execute the circuit.
    NoBackend {
        /// Why each candidate was rejected.
        reason: String,
    },
    /// A backend was requested by name but is not registered.
    UnknownBackend {
        /// The requested name.
        name: String,
    },
    /// A sampling job needs every circuit output to be classical (measure
    /// quantum outputs inside the circuit).
    QuantumOutputs,
    /// The operation is not supported by the chosen backend.
    Unsupported {
        /// Which backend.
        backend: &'static str,
        /// What was attempted.
        what: &'static str,
    },
    /// The job's [`CancelToken`](crate::CancelToken) fired while shots were
    /// running; remaining shots were abandoned.
    Cancelled {
        /// Why the token fired.
        reason: CancelReason,
    },
    /// A backend reported a transient fault (device hiccup, injected
    /// failure): the shot did not run, but an identical retry may succeed.
    /// Schedulers are expected to retry these; all other errors are
    /// permanent for the submitted circuit.
    Transient {
        /// Which backend faulted.
        backend: &'static str,
        /// Human-readable fault description.
        detail: String,
    },
}

impl ExecError {
    /// Whether a retry of the identical job may succeed. Only
    /// [`ExecError::Transient`] qualifies; every other error is a property
    /// of the circuit, the configuration, or an explicit cancellation.
    pub fn is_transient(&self) -> bool {
        matches!(self, ExecError::Transient { .. })
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Circuit(e) => write!(f, "circuit error: {e}"),
            ExecError::Lint(report) => {
                write!(f, "circuit rejected by lint gate: {}", report.summary())?;
                if let Some(first) = report.findings.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            ExecError::Sim { backend, source } => {
                write!(f, "backend `{backend}` failed: {source}")
            }
            ExecError::NoBackend { reason } => {
                write!(f, "no backend can execute this circuit: {reason}")
            }
            ExecError::UnknownBackend { name } => {
                write!(f, "no backend named `{name}` is registered")
            }
            ExecError::QuantumOutputs => write!(
                f,
                "sampling requires classical outputs only; measure quantum outputs in the circuit"
            ),
            ExecError::Unsupported { backend, what } => {
                write!(f, "backend `{backend}` does not support {what}")
            }
            ExecError::Cancelled { reason } => write!(f, "job {reason} during execution"),
            ExecError::Transient { backend, detail } => {
                write!(f, "transient fault on backend `{backend}`: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Circuit(e) => Some(e),
            ExecError::Sim { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CircuitError> for ExecError {
    fn from(e: CircuitError) -> Self {
        ExecError::Circuit(e)
    }
}
