//! The backend abstraction and the built-in simulator adapters.
//!
//! Quipper separates circuit *description* from the run functions that
//! consume circuits (paper §4.4.5). A [`Backend`] packages one run function
//! behind a uniform capability-checked interface so the engine can route each
//! compiled plan to the cheapest simulator that can execute it:
//!
//! * [`ClassicalBackend`] — bit-per-wire permutation simulation, linear time.
//! * [`StabilizerBackend`] — CHP tableau simulation, polynomial in width.
//! * [`StateVecBackend`] — exact state vectors, exponential in width but
//!   universal; the only backend supporting *dynamic lifting* (paper §4.3).
//! * [`CountingBackend`] — no simulation at all: resource estimation over the
//!   hierarchical circuit (gate counts, peak width, depth).

use std::cell::RefCell;
use std::rc::Rc;

use quipper::Lifter;
use quipper_circuit::count::{self, GateCount, Peak};
use quipper_circuit::BCircuit;
use quipper_sim::{
    run_classical_flat, run_clifford_flat, run_flat_with, run_fused, SimError, SimLifter,
    StateVecConfig,
};

use crate::error::ExecError;
use crate::plan::Plan;
use crate::profile::CircuitProfile;

/// What a backend can do, advertised statically for routing and reporting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Capabilities {
    /// Can execute gates that create superpositions (H, V, W, rotations).
    pub superposition: bool,
    /// Can execute non-Clifford gates (T, rotations, arbitrary named gates).
    pub non_clifford: bool,
    /// Hard upper bound on the peak number of live qubits, if any.
    pub max_qubits: Option<usize>,
    /// Supports dynamic lifting: measurement outcomes fed back into circuit
    /// generation (paper §4.3).
    pub dynamic_lifting: bool,
}

/// A run function behind a uniform interface: capability advertisement,
/// admission check, and single-shot execution of a compiled [`Plan`].
///
/// Backends are stateless between shots — every per-shot state lives on the
/// worker's stack — so one backend instance is shared (`Send + Sync`) across
/// the engine's worker threads.
pub trait Backend: Send + Sync {
    /// Stable short name, used in reports and for explicit backend selection.
    fn name(&self) -> &'static str;

    /// Static capabilities of this backend.
    fn capabilities(&self) -> Capabilities;

    /// Whether this backend can execute circuits with the given profile;
    /// `Err` carries a human-readable rejection reason.
    fn admit(&self, profile: &CircuitProfile) -> Result<(), String>;

    /// Executes one shot of a compiled plan on basis-state `inputs`,
    /// returning the circuit's output bits. `seed` drives any measurement
    /// randomness; equal seeds give equal outcomes.
    fn run_shot(&self, plan: &Plan, inputs: &[bool], seed: u64) -> Result<Vec<bool>, ExecError>;

    /// A dynamic-lifting executor seeded with `seed`, if this backend
    /// supports interleaving circuit generation with execution.
    fn make_lifter(&self, _seed: u64) -> Option<Rc<RefCell<dyn Lifter>>> {
        None
    }
}

fn sim_err(backend: &'static str) -> impl Fn(SimError) -> ExecError {
    move |source| ExecError::Sim { backend, source }
}

/// Adapter over the exact state-vector simulator (`run_generic`): universal
/// but exponential in circuit width.
#[derive(Clone, Copy, Debug)]
pub struct StateVecBackend {
    /// Reject circuits whose peak live-qubit count exceeds this; the state
    /// vector holds `2^peak` complex amplitudes.
    pub max_qubits: usize,
    /// Hot-path tuning: gate fusion, kernel threading and its threshold.
    pub config: StateVecConfig,
}

/// The default width cap: 2²⁴ amplitudes ≈ 256 MiB, a safe single-host bound.
pub const DEFAULT_MAX_QUBITS: usize = 24;

impl Default for StateVecBackend {
    fn default() -> Self {
        StateVecBackend {
            max_qubits: DEFAULT_MAX_QUBITS,
            config: StateVecConfig::default(),
        }
    }
}

impl Backend for StateVecBackend {
    fn name(&self) -> &'static str {
        "statevec"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            superposition: true,
            non_clifford: true,
            max_qubits: Some(self.max_qubits),
            dynamic_lifting: true,
        }
    }

    fn admit(&self, profile: &CircuitProfile) -> Result<(), String> {
        if profile.peak_qubits > self.max_qubits {
            return Err(format!(
                "peak width {} qubits exceeds the state-vector cap of {}",
                profile.peak_qubits, self.max_qubits
            ));
        }
        Ok(())
    }

    fn run_shot(&self, plan: &Plan, inputs: &[bool], seed: u64) -> Result<Vec<bool>, ExecError> {
        // Replay the plan's pre-fused op stream (fused once at compile time)
        // unless fusion is disabled, in which case run the raw gate list.
        let result = if self.config.fuse {
            run_fused(&plan.fused, inputs, seed, self.config)
        } else {
            run_flat_with(&plan.flat, inputs, seed, self.config)
        }
        .map_err(sim_err(self.name()))?;
        // The engine admits only all-classical-output circuits to sampling,
        // so this cannot hit `classical_outputs`' quantum-output panic.
        Ok(result.classical_outputs())
    }

    fn make_lifter(&self, seed: u64) -> Option<Rc<RefCell<dyn Lifter>>> {
        Some(Rc::new(RefCell::new(SimLifter::new(seed))))
    }
}

/// Adapter over the bit-per-wire classical simulator
/// (`run_classical_generic`): linear time, deterministic, but only for
/// circuits that permute computational basis states.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassicalBackend;

impl Backend for ClassicalBackend {
    fn name(&self) -> &'static str {
        "classical"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            superposition: false,
            non_clifford: true, // Toffoli et al. are fine: still permutations.
            max_qubits: None,
            dynamic_lifting: false,
        }
    }

    fn admit(&self, profile: &CircuitProfile) -> Result<(), String> {
        if !profile.classical_only {
            return Err("circuit contains superposition-creating gates".to_string());
        }
        Ok(())
    }

    fn run_shot(&self, plan: &Plan, inputs: &[bool], _seed: u64) -> Result<Vec<bool>, ExecError> {
        run_classical_flat(&plan.flat, inputs).map_err(sim_err(self.name()))
    }
}

/// Adapter over the CHP tableau simulator (`run_clifford_generic`):
/// polynomial in width, but only for Clifford circuits.
#[derive(Clone, Copy, Debug, Default)]
pub struct StabilizerBackend;

impl Backend for StabilizerBackend {
    fn name(&self) -> &'static str {
        "stabilizer"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            superposition: true,
            non_clifford: false,
            max_qubits: None,
            dynamic_lifting: false,
        }
    }

    fn admit(&self, profile: &CircuitProfile) -> Result<(), String> {
        if !profile.clifford_only {
            return Err("circuit contains non-Clifford gates".to_string());
        }
        Ok(())
    }

    fn run_shot(&self, plan: &Plan, inputs: &[bool], seed: u64) -> Result<Vec<bool>, ExecError> {
        run_clifford_flat(&plan.flat, inputs, seed).map_err(sim_err(self.name()))
    }
}

/// Resource estimates produced by the [`CountingBackend`].
#[derive(Clone, Debug)]
pub struct ResourceEstimate {
    /// Gate counts by class, as printed by the paper's `print_generic`
    /// counting output.
    pub gates: GateCount,
    /// Peak simultaneously-alive wires.
    pub peak: Peak,
    /// Circuit depth (longest wire-dependency chain).
    pub depth: u128,
}

/// A "backend" that never executes anything: it walks the *hierarchical*
/// circuit, multiplying through subroutine repetitions, to produce resource
/// estimates — the paper's third run function alongside printing and
/// simulation (§4.4.5).
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingBackend;

impl CountingBackend {
    /// Counts gates, peak width and depth without flattening the circuit.
    pub fn estimate(&self, bc: &BCircuit) -> ResourceEstimate {
        ResourceEstimate {
            gates: count::count(&bc.db, &bc.main),
            peak: count::max_alive(&bc.db, &bc.main),
            depth: count::depth(&bc.db, &bc.main),
        }
    }
}

impl Backend for CountingBackend {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            superposition: false,
            non_clifford: false,
            max_qubits: None,
            dynamic_lifting: false,
        }
    }

    fn admit(&self, _profile: &CircuitProfile) -> Result<(), String> {
        Err("counting backend estimates resources; it cannot run shots".to_string())
    }

    fn run_shot(&self, _plan: &Plan, _inputs: &[bool], _seed: u64) -> Result<Vec<bool>, ExecError> {
        Err(ExecError::Unsupported {
            backend: self.name(),
            what: "shot execution",
        })
    }
}
