//! `quipper-exec`: a backend-abstracted execution engine for Quipper
//! circuits.
//!
//! Quipper keeps circuit *description* separate from the run functions that
//! consume circuits — printing, resource counting, and the various simulators
//! (paper §4.4.5). The lower crates each expose one run function; this crate
//! puts them all behind a single subsystem:
//!
//! * [`Backend`] — one run function with advertised [`Capabilities`] and an
//!   admission check; adapters wrap the state-vector, classical and
//!   stabilizer simulators, plus a [`CountingBackend`] for resource
//!   estimation.
//! * **Auto-selection** — each circuit is profiled once
//!   ([`CircuitProfile`]) and routed to the cheapest capable backend:
//!   classical-only circuits to the bit-per-wire simulator, Clifford-only
//!   circuits to the CHP tableau, everything else to the state vector.
//! * [`Plan`] / [`PlanCache`] — validation and flattening happen once per
//!   structurally-distinct circuit, keyed by the stable circuit
//!   [`fingerprint`](quipper_circuit::fingerprint); repeat submissions skip
//!   straight to execution.
//! * [`LintGate`] — the `quipper-lint` static passes run on every plan
//!   compilation; findings at or above the gate's severity reject the job
//!   ([`ExecError::Lint`]) before anything is cached or executed.
//! * [`Job`] / [`JobQueue`] — multi-shot and batched-circuit scheduling over
//!   a worker thread pool, with deterministic per-shot seed derivation
//!   (`base_seed + shot_index`) so parallel results are bit-identical to
//!   sequential ones.
//! * [`ExecReport`] / [`EngineStats`] — per-job and cumulative observability:
//!   shots, wall time, cache hits, backend chosen.
//!
//! ```
//! use quipper::{Circ, Qubit};
//! use quipper_exec::{Engine, Job};
//!
//! let bell = Circ::build(&(false, false), |c, (a, b): (Qubit, Qubit)| {
//!     c.hadamard(a);
//!     c.cnot(b, a);
//!     (c.measure(a), c.measure(b))
//! });
//! let engine = Engine::new();
//! let job = Job::new(&bell).inputs(vec![false, false]).shots(100).seed(7);
//! let result = engine.run(&job).unwrap();
//! assert_eq!(result.report.backend, "stabilizer"); // Clifford-only circuit
//! // Bell measurement outcomes are perfectly correlated.
//! assert!(result.histogram.iter().all(|(bits, _)| bits[0] == bits[1]));
//! ```

pub mod backend;
pub mod cancel;
pub mod engine;
pub mod error;
pub mod plan;
pub mod profile;

pub use backend::{
    Backend, Capabilities, ClassicalBackend, CountingBackend, ResourceEstimate, StabilizerBackend,
    StateVecBackend,
};
pub use cancel::{CancelReason, CancelToken};
pub use engine::{
    Engine, EngineConfig, EngineStats, ExecReport, ExecResult, Job, JobQueue, JobResult,
};
pub use error::ExecError;
pub use plan::{LintGate, Plan, PlanCache};
pub use profile::{profile, CircuitProfile};
pub use quipper_lint::{LintReport, LintSummary, Severity};
pub use quipper_opt::{OptLevel, OptReport, OptSummary};
pub use quipper_trace::{ProfileSummary, TraceSummary, Tracer};

// The engine is shared across scoped worker threads; keep that a compile-time
// guarantee rather than an emergent property of field types.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<PlanCache>();
    assert_send_sync::<ExecError>();
    assert_send_sync::<ExecResult>();
};
