//! Static analysis of flattened circuits for backend selection.
//!
//! The engine routes each circuit to the cheapest capable simulator; the
//! routing decision is made once per compiled plan from a [`CircuitProfile`]
//! computed by a single linear walk over the flat gate list. The walk tracks
//! each live wire's current type (measurement turns quantum wires classical,
//! paper §4.2.3), which matters because a *classical* control on a quantum
//! gate is harmless for the stabilizer simulator while a *negative quantum*
//! control is not.

use std::collections::HashMap;

use quipper_circuit::{Circuit, Control, Gate, GateName, Wire, WireType};

/// What a flat circuit needs from a simulator, computed in one pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CircuitProfile {
    /// Every gate is a permutation of computational basis states (X / swap /
    /// Z-basis phases / classical gates), so the bit-per-wire simulator can
    /// run it.
    pub classical_only: bool,
    /// Every gate is in the Clifford set accepted by the CHP tableau
    /// simulator: H, S/S†, V/V†, X, Y, Z, swap, CNOT, CZ — with at most one
    /// positive quantum control — plus initializations, assertive
    /// terminations, measurements and discards.
    pub clifford_only: bool,
    /// Peak number of simultaneously live quantum wires. State-vector cost is
    /// `2^peak_qubits` amplitudes, so this bounds which circuits the exact
    /// simulator will accept.
    pub peak_qubits: usize,
    /// Number of circuit inputs (quantum and classical).
    pub num_inputs: usize,
    /// Total gate count of the flattened circuit.
    pub num_gates: usize,
    /// Every circuit output is a classical wire, i.e. the circuit measures or
    /// asserts away all its qubits. Sampling jobs require this.
    pub outputs_classical: bool,
}

/// Splits the controls of a gate by the *current* type of the control wire.
/// Returns `(quantum_positive, quantum_negative, classical)` counts. Controls
/// on unknown wires are conservatively counted as quantum-negative (they will
/// fail simulation anyway).
fn split_controls(controls: &[Control], types: &HashMap<Wire, WireType>) -> (usize, usize, usize) {
    let (mut qpos, mut qneg, mut cls) = (0, 0, 0);
    for c in controls {
        match types.get(&c.wire) {
            Some(WireType::Classical) => cls += 1,
            Some(WireType::Quantum) if c.positive => qpos += 1,
            _ => qneg += 1,
        }
    }
    (qpos, qneg, cls)
}

/// Whether the bit-per-wire classical simulator accepts this gate (mirrors
/// `ClassicalState::apply`).
fn is_classical(gate: &Gate) -> bool {
    match gate {
        Gate::Comment { .. }
        | Gate::QInit { .. }
        | Gate::CInit { .. }
        | Gate::QTerm { .. }
        | Gate::CTerm { .. }
        | Gate::QMeas { .. }
        | Gate::QDiscard { .. }
        | Gate::CDiscard { .. }
        | Gate::GPhase { .. } => true,
        Gate::QGate { name, .. } => matches!(
            name,
            GateName::X | GateName::Swap | GateName::Z | GateName::S | GateName::T
        ),
        Gate::CGate { name, .. } => matches!(&**name, "xor" | "and" | "or" | "not"),
        Gate::QRot { .. } | Gate::Subroutine { .. } => false,
    }
}

/// Whether the CHP stabilizer simulator accepts this gate (mirrors
/// `Stabilizer`-based `run_clifford_flat`). Needs the current wire types to
/// distinguish classical controls (fine: they gate the whole operation) from
/// quantum ones (only single positive controls of X and Z are Clifford here).
fn is_clifford(gate: &Gate, types: &HashMap<Wire, WireType>) -> bool {
    match gate {
        Gate::Comment { .. }
        | Gate::QInit { .. }
        | Gate::CInit { .. }
        | Gate::QTerm { .. }
        | Gate::CTerm { .. }
        | Gate::QMeas { .. }
        | Gate::QDiscard { .. }
        | Gate::CDiscard { .. } => true,
        Gate::QGate { name, controls, .. } => {
            let (qpos, qneg, _cls) = split_controls(controls, types);
            if qneg > 0 {
                return false;
            }
            match name {
                GateName::X | GateName::Z => qpos <= 1,
                GateName::Y | GateName::H | GateName::S | GateName::V | GateName::Swap => qpos == 0,
                GateName::T | GateName::W | GateName::Named(_) => false,
            }
        }
        Gate::QRot { .. } | Gate::GPhase { .. } | Gate::CGate { .. } | Gate::Subroutine { .. } => {
            false
        }
    }
}

/// Profiles a flattened circuit in one linear pass.
///
/// Subroutine calls are not expected in flat circuits; if one appears it is
/// conservatively classified as neither classical nor Clifford.
pub fn profile(flat: &Circuit) -> CircuitProfile {
    let mut types: HashMap<Wire, WireType> = flat.inputs.iter().copied().collect();
    let mut live_qubits = flat
        .inputs
        .iter()
        .filter(|(_, t)| *t == WireType::Quantum)
        .count();
    let mut peak_qubits = live_qubits;
    let mut classical_only = true;
    let mut clifford_only = true;

    for gate in &flat.gates {
        classical_only = classical_only && is_classical(gate);
        clifford_only = clifford_only && is_clifford(gate, &types);
        // Update wire types and the live-qubit count.
        match gate {
            Gate::QInit { wire, .. }
                if types.insert(*wire, WireType::Quantum) != Some(WireType::Quantum) =>
            {
                live_qubits += 1;
                peak_qubits = peak_qubits.max(live_qubits);
            }
            Gate::CInit { wire, .. }
                if types.insert(*wire, WireType::Classical) == Some(WireType::Quantum) =>
            {
                live_qubits -= 1;
            }
            Gate::CGate { target, .. } => {
                types.insert(*target, WireType::Classical);
            }
            Gate::QMeas { wire }
                if types.insert(*wire, WireType::Classical) == Some(WireType::Quantum) =>
            {
                live_qubits -= 1;
            }
            Gate::QTerm { wire, .. } | Gate::QDiscard { wire }
                if types.remove(wire) == Some(WireType::Quantum) =>
            {
                live_qubits -= 1;
            }
            Gate::CTerm { wire, .. } | Gate::CDiscard { wire } => {
                types.remove(wire);
            }
            _ => {}
        }
    }

    CircuitProfile {
        classical_only,
        clifford_only,
        peak_qubits,
        num_inputs: flat.inputs.len(),
        num_gates: flat.gates.len(),
        outputs_classical: flat.outputs.iter().all(|(_, t)| *t == WireType::Classical),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quipper::{Circ, Qubit};
    use quipper_circuit::flatten::inline_all;

    fn profile_of(bc: &quipper_circuit::BCircuit) -> CircuitProfile {
        profile(&inline_all(&bc.db, &bc.main).unwrap())
    }

    #[test]
    fn toffoli_circuit_is_classical_but_not_clifford() {
        let bc = Circ::build(
            &(false, false, false),
            |c, (a, b, t): (Qubit, Qubit, Qubit)| {
                c.toffoli(t, a, b);
                (a, b, t)
            },
        );
        let p = profile_of(&bc);
        assert!(p.classical_only);
        assert!(!p.clifford_only, "doubly-controlled X is not Clifford");
        assert_eq!(p.peak_qubits, 3);
    }

    #[test]
    fn bell_pair_is_clifford_but_not_classical() {
        let bc = Circ::build(&(false, false), |c, (a, b): (Qubit, Qubit)| {
            c.hadamard(a);
            c.cnot(b, a);
            let x = c.measure(a);
            let y = c.measure(b);
            (x, y)
        });
        let p = profile_of(&bc);
        assert!(!p.classical_only);
        assert!(p.clifford_only);
        assert!(p.outputs_classical);
    }

    #[test]
    fn t_gate_breaks_clifford() {
        let bc = Circ::build(&false, |c, q: Qubit| {
            c.hadamard(q);
            c.gate_t(q);
            q
        });
        let p = profile_of(&bc);
        assert!(!p.clifford_only);
        assert!(!p.classical_only);
        assert!(!p.outputs_classical);
    }

    #[test]
    fn peak_counts_ancillas() {
        let bc = Circ::build(&false, |c, q: Qubit| {
            let a = c.qinit_bit(false);
            let b = c.qinit_bit(false);
            c.qterm_bit(false, a);
            let d = c.qinit_bit(false);
            c.qterm_bit(false, b);
            c.qterm_bit(false, d);
            q
        });
        // Alive: q plus at most two ancillas at once.
        assert_eq!(profile_of(&bc).peak_qubits, 3);
    }

    #[test]
    fn measurement_makes_control_classical() {
        // A classically-controlled X after measurement stays Clifford even
        // with a second (classical) control — the stabilizer simulator gates
        // the whole operation on classical controls.
        let bc = Circ::build(
            &(false, false, false),
            |c, (a, b, t): (Qubit, Qubit, Qubit)| {
                c.hadamard(a);
                let ma = c.measure(a);
                let mb = c.measure(b);
                c.qnot_ctrl(t, &(ma, mb));
                (ma, mb, c.measure(t))
            },
        );
        let p = profile_of(&bc);
        assert!(p.clifford_only, "two classical controls are fine for CHP");
    }
}
