//! Printing circuits: Quipper's text format and a 2-D ASCII-art renderer.
//!
//! Quipper's `print_generic` supports several output formats (paper §4.4.5);
//! we provide the textual gate-list format (the format Quipper uses for
//! machine-readable output) and an ASCII-art rendering for small circuits,
//! standing in for the paper's PostScript/PDF output.

use std::fmt::Write as _;

use crate::circuit::{BCircuit, Circuit, CircuitDb};
use crate::error::CircuitError;
use crate::flatten::inline_all;
use crate::gate::{Gate, GateName};
use crate::wire::{Control, Wire, WireType};

/// Renders a circuit (and the subroutines it references) in Quipper's textual
/// gate-list format.
///
/// # Examples
///
/// ```
/// use quipper_circuit::{print::to_text, BCircuit, Circuit, Gate, GateName, Wire, WireType};
///
/// let mut c = Circuit::with_inputs(vec![(Wire(0), WireType::Quantum)]);
/// c.gates.push(Gate::unary(GateName::H, Wire(0)));
/// let text = to_text(&BCircuit::new(Default::default(), c));
/// assert!(text.contains("QGate[\"H\"](0)"));
/// ```
pub fn to_text(bc: &BCircuit) -> String {
    let names: Vec<String> = bc.db.iter().map(|(_, d)| d.name.clone()).collect();
    let mut s = String::new();
    write_circuit(&mut s, &bc.main, &names);
    for (_, def) in bc.db.iter() {
        s.push('\n');
        let _ = writeln!(s, "Subroutine: \"{}\"", def.name);
        let _ = writeln!(s, "Shape: \"{}\"", def.shape);
        write_circuit(&mut s, &def.circuit, &names);
    }
    s
}

fn arity_line(label: &str, wires: &[(Wire, WireType)]) -> String {
    if wires.is_empty() {
        return format!("{label}: none\n");
    }
    let body: Vec<String> = wires.iter().map(|(w, t)| format!("{w}:{t}")).collect();
    format!("{label}: {}\n", body.join(", "))
}

fn controls_suffix(controls: &[Control]) -> String {
    if controls.is_empty() {
        String::new()
    } else {
        let cs: Vec<String> = controls.iter().map(|c| c.to_string()).collect();
        format!(" with controls=[{}]", cs.join(","))
    }
}

fn write_circuit(s: &mut String, c: &Circuit, names: &[String]) {
    s.push_str(&arity_line("Inputs", &c.inputs));
    for g in &c.gates {
        write_gate(s, g, names);
    }
    s.push_str(&arity_line("Outputs", &c.outputs));
}

fn wire_list(ws: &[Wire]) -> String {
    ws.iter()
        .map(|w| w.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn write_gate(s: &mut String, g: &Gate, names: &[String]) {
    match g {
        Gate::QGate {
            name,
            inverted,
            targets,
            controls,
        } => {
            let _ = writeln!(
                s,
                "QGate[\"{name}\"]{}({}){}",
                if *inverted { "*" } else { "" },
                wire_list(targets),
                controls_suffix(controls)
            );
        }
        Gate::QRot {
            name,
            inverted,
            angle,
            targets,
            controls,
        } => {
            let _ = writeln!(
                s,
                "QRot[\"{name}\",{angle}]{}({}){}",
                if *inverted { "*" } else { "" },
                wire_list(targets),
                controls_suffix(controls)
            );
        }
        Gate::GPhase { angle, controls } => {
            let _ = writeln!(s, "GPhase[{angle}]{}", controls_suffix(controls));
        }
        Gate::QInit { value, wire } => {
            let _ = writeln!(s, "QInit{}({wire})", u8::from(*value));
        }
        Gate::CInit { value, wire } => {
            let _ = writeln!(s, "CInit{}({wire})", u8::from(*value));
        }
        Gate::QTerm { value, wire } => {
            let _ = writeln!(s, "QTerm{}({wire})", u8::from(*value));
        }
        Gate::CTerm { value, wire } => {
            let _ = writeln!(s, "CTerm{}({wire})", u8::from(*value));
        }
        Gate::QMeas { wire } => {
            let _ = writeln!(s, "QMeas({wire})");
        }
        Gate::QDiscard { wire } => {
            let _ = writeln!(s, "QDiscard({wire})");
        }
        Gate::CDiscard { wire } => {
            let _ = writeln!(s, "CDiscard({wire})");
        }
        Gate::CGate {
            name,
            inverted,
            target,
            inputs,
        } => {
            let _ = writeln!(
                s,
                "CGate[\"{name}\"]{}({target}; {})",
                if *inverted { "*" } else { "" },
                wire_list(inputs)
            );
        }
        Gate::Subroutine {
            id,
            inverted,
            inputs,
            outputs,
            controls,
            repetitions,
        } => {
            let reps = if *repetitions != 1 {
                format!(" x{repetitions}")
            } else {
                String::new()
            };
            let name = names
                .get(id.index())
                .map(|n| format!("\"{n}\""))
                .unwrap_or_else(|| format!("#{}", id.index()));
            let _ = writeln!(
                s,
                "Subroutine[{name}]{}{reps}({}) -> ({}){}",
                if *inverted { "*" } else { "" },
                wire_list(inputs),
                wire_list(outputs),
                controls_suffix(controls)
            );
        }
        Gate::Comment { text, labels } => {
            let ls: Vec<String> = labels.iter().map(|(w, l)| format!("{w}:\"{l}\"")).collect();
            let _ = writeln!(s, "Comment[\"{text}\"]({})", ls.join(", "));
        }
    }
}

/// Renders a small circuit as 2-D ASCII art, one row per wire, time flowing
/// left to right.
///
/// Boxed subcircuits are inlined first, so this is only suitable for small
/// circuits (the function refuses to render more than `max_gates` columns).
///
/// # Errors
///
/// Returns an error if inlining fails or if the flattened circuit exceeds
/// `max_gates` gates.
pub fn to_ascii(
    db: &CircuitDb,
    circuit: &Circuit,
    max_gates: usize,
) -> Result<String, CircuitError> {
    let flat = inline_all(db, circuit)?;
    if flat.gates.len() > max_gates {
        return Err(CircuitError::OutputMismatch {
            detail: format!(
                "circuit too large to render: {} gates (limit {max_gates})",
                flat.gates.len()
            ),
        });
    }
    Ok(render_ascii(&flat))
}

fn render_ascii(c: &Circuit) -> String {
    // Assign each wire a lane in order of first appearance.
    let mut lane_of: std::collections::HashMap<Wire, usize> = std::collections::HashMap::new();
    let mut lanes: Vec<Wire> = Vec::new();
    let touch =
        |w: Wire, lane_of: &mut std::collections::HashMap<Wire, usize>, lanes: &mut Vec<Wire>| {
            lane_of.entry(w).or_insert_with(|| {
                lanes.push(w);
                lanes.len() - 1
            });
        };
    for &(w, _) in &c.inputs {
        touch(w, &mut lane_of, &mut lanes);
    }
    for g in &c.gates {
        g.for_each_wire(&mut |w| touch(w, &mut lane_of, &mut lanes));
    }

    let n_lanes = lanes.len();
    // Track which lanes are alive at each column so we can draw wire segments
    // only inside ancilla scopes.
    let mut alive = vec![false; n_lanes];
    for &(w, _) in &c.inputs {
        alive[lane_of[&w]] = true;
    }

    // Each gate renders as a fixed-width column of cells, with a wire-segment
    // column between gates.
    const W: usize = 5;
    let mut grid: Vec<String> = vec![String::new(); n_lanes];
    let pad = |s: &str| -> String {
        let len = s.chars().count();
        let left = (W - len.min(W)) / 2;
        let right = W - len.min(W) - left;
        format!("{}{}{}", "─".repeat(left), s, "─".repeat(right))
    };
    let pad_space = |s: &str| -> String {
        let len = s.chars().count();
        let left = (W - len.min(W)) / 2;
        let right = W - len.min(W) - left;
        format!("{}{}{}", " ".repeat(left), s, " ".repeat(right))
    };

    for g in &c.gates {
        if matches!(g, Gate::Comment { .. }) {
            continue;
        }
        // Which lanes does this gate involve and what symbol goes on each?
        let mut cells: Vec<Option<String>> = vec![None; n_lanes];
        let mut span: Option<(usize, usize)> = None;
        let mut mark = |lane: usize, sym: String, span: &mut Option<(usize, usize)>| {
            cells[lane] = Some(sym);
            *span = Some(match span {
                None => (lane, lane),
                Some((lo, hi)) => ((*lo).min(lane), (*hi).max(lane)),
            });
        };
        let symbol_for = |name: &GateName, inverted: bool| -> String {
            match name {
                GateName::X => "⊕".to_string(),
                GateName::Swap => "×".to_string(),
                other => {
                    format!("{}{}", other, if inverted { "†" } else { "" })
                }
            }
        };
        match g {
            Gate::QGate {
                name,
                inverted,
                targets,
                controls,
            } => {
                for &t in targets {
                    mark(lane_of[&t], symbol_for(name, *inverted), &mut span);
                }
                for ctl in controls {
                    mark(
                        lane_of[&ctl.wire],
                        if ctl.positive { "●" } else { "○" }.into(),
                        &mut span,
                    );
                }
            }
            Gate::QRot {
                name,
                inverted,
                targets,
                controls,
                ..
            } => {
                let label: String = if name.contains('Z') {
                    "e".into()
                } else {
                    "R".into()
                };
                for &t in targets {
                    mark(
                        lane_of[&t],
                        format!("[{label}{}]", if *inverted { "†" } else { "" }),
                        &mut span,
                    );
                }
                for ctl in controls {
                    mark(
                        lane_of[&ctl.wire],
                        if ctl.positive { "●" } else { "○" }.into(),
                        &mut span,
                    );
                }
            }
            Gate::GPhase { controls, .. } => {
                for ctl in controls {
                    mark(
                        lane_of[&ctl.wire],
                        if ctl.positive { "●" } else { "○" }.into(),
                        &mut span,
                    );
                }
            }
            Gate::QInit { value, wire } | Gate::CInit { value, wire } => {
                let lane = lane_of[wire];
                alive[lane] = true;
                mark(lane, format!("{}⊢", u8::from(*value)), &mut span);
                span = Some((lane, lane)); // inits never connect vertically
            }
            Gate::QTerm { value, wire } | Gate::CTerm { value, wire } => {
                let lane = lane_of[wire];
                mark(lane, format!("⊣{}", u8::from(*value)), &mut span);
                alive[lane] = false;
                span = Some((lane, lane));
            }
            Gate::QMeas { wire } => {
                mark(lane_of[wire], "◁M▷".into(), &mut span);
            }
            Gate::QDiscard { wire } | Gate::CDiscard { wire } => {
                let lane = lane_of[wire];
                mark(lane, "⊣".into(), &mut span);
                alive[lane] = false;
            }
            Gate::CGate { target, inputs, .. } => {
                let lane = lane_of[target];
                alive[lane] = true;
                mark(lane, "[C]".into(), &mut span);
                for &w in inputs {
                    mark(lane_of[&w], "●".into(), &mut span);
                }
            }
            Gate::Subroutine {
                inputs, outputs, ..
            } => {
                for &w in inputs {
                    mark(lane_of[&w], "[S]".into(), &mut span);
                }
                for &w in outputs {
                    let lane = lane_of[&w];
                    alive[lane] = true;
                    mark(lane, "[S]".into(), &mut span);
                }
            }
            Gate::Comment { .. } => unreachable!(),
        }
        // Special-case: init/term just rendered toggled aliveness above; for
        // QInit the lane becomes alive *at* this column, for QTerm it dies
        // after it.
        let (lo, hi) = span.unwrap_or((0, 0));
        for lane in 0..n_lanes {
            let cell = match &cells[lane] {
                Some(sym) => {
                    if alive[lane] || matches!(c.gates.first(), _) {
                        pad(sym)
                    } else {
                        pad_space(sym)
                    }
                }
                None => {
                    let on_wire = alive[lane];
                    let crossed = lane > lo && lane < hi;
                    match (on_wire, crossed) {
                        (true, true) => pad("┼"),
                        (true, false) => "─".repeat(W),
                        (false, true) => pad_space("│"),
                        (false, false) => " ".repeat(W),
                    }
                }
            };
            grid[lane].push_str(&cell);
        }
    }

    let mut out = String::new();
    for (lane, row) in grid.iter().enumerate() {
        let w = lanes[lane];
        let _ = writeln!(out, "{:>3} ─{row}─", w.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::BCircuit;

    fn q(w: u32) -> (Wire, WireType) {
        (Wire(w), WireType::Quantum)
    }

    fn sample() -> Circuit {
        let mut c = Circuit::with_inputs(vec![q(0), q(1)]);
        c.gates.push(Gate::unary(GateName::H, Wire(0)));
        c.gates.push(Gate::cnot(Wire(1), Wire(0)));
        c.gates.push(Gate::QInit {
            value: false,
            wire: Wire(2),
        });
        c.gates.push(Gate::toffoli(Wire(2), Wire(0), Wire(1)));
        c.gates.push(Gate::QTerm {
            value: false,
            wire: Wire(2),
        });
        c.recompute_wire_bound();
        c
    }

    #[test]
    fn text_format_lists_gates_in_order() {
        let text = to_text(&BCircuit::new(CircuitDb::new(), sample()));
        let h = text.find("QGate[\"H\"](0)").unwrap();
        let cnot = text.find("QGate[\"not\"](1) with controls=[+0]").unwrap();
        let init = text.find("QInit0(2)").unwrap();
        let toff = text
            .find("QGate[\"not\"](2) with controls=[+0,+1]")
            .unwrap();
        let term = text.find("QTerm0(2)").unwrap();
        assert!(h < cnot && cnot < init && init < toff && toff < term);
        assert!(text.starts_with("Inputs: 0:Qubit, 1:Qubit\n"));
        assert!(text.trim_end().ends_with("Outputs: 0:Qubit, 1:Qubit"));
    }

    #[test]
    fn ascii_renders_each_input_wire_row() {
        let art = to_ascii(&CircuitDb::new(), &sample(), 100).unwrap();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('H'));
        assert!(lines[1].contains('⊕'));
        assert!(lines[2].contains("0⊢"));
        assert!(lines[2].contains("⊣0"));
    }

    #[test]
    fn ascii_refuses_large_circuits() {
        assert!(to_ascii(&CircuitDb::new(), &sample(), 2).is_err());
    }
}
