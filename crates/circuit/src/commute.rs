//! Commutation analysis for rewrite passes.
//!
//! Two gates commute when, on every wire they share, both act *diagonally in
//! the same basis*: a control wire or a Z/S/T/phase-rotation target is
//! diagonal in the computational basis, an X/V target (including the target
//! of a CNOT) is diagonal in the X basis, and a Y/Ry target in the Y basis.
//! Gates sharing no wires commute trivially. This per-wire classification is
//! sound but deliberately incomplete — anything it cannot classify is
//! `Opaque` and blocks commutation — which is exactly the right trade for an
//! optimizer: a missed commutation costs a rewrite, a wrong one costs
//! correctness.

use std::collections::HashMap;

use crate::gate::{Gate, GateName};
use crate::wire::{Control, Wire};

/// How a gate acts on one of its wires, for commutation purposes.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WireAction {
    /// Diagonal in the computational basis: controls, Z/S/T targets,
    /// Z-axis rotations, (controlled) global phases.
    ZDiagonal,
    /// Diagonal in the X basis: X and V = √X targets.
    XDiagonal,
    /// Diagonal in the Y basis: Y targets and `Ry(%)` rotations.
    YDiagonal,
    /// Unclassified; blocks commutation on this wire.
    Opaque,
}

/// Rotation families diagonal in the computational basis.
const Z_ROTS: &[&str] = &["exp(-i%Z)", "R(%)", "R(2pi/%)"];

/// Classifies how `gate` acts on each wire it touches. Wires the gate does
/// not touch are absent from the map.
pub fn wire_actions(gate: &Gate) -> HashMap<Wire, WireAction> {
    let mut actions = HashMap::new();
    let opaque_all = |actions: &mut HashMap<Wire, WireAction>| {
        gate.for_each_wire(&mut |w| {
            actions.insert(w, WireAction::Opaque);
        });
    };
    match gate {
        Gate::QGate {
            name,
            targets,
            controls,
            ..
        } => {
            let action = match name {
                GateName::Z | GateName::S | GateName::T => WireAction::ZDiagonal,
                GateName::X | GateName::V => WireAction::XDiagonal,
                GateName::Y => WireAction::YDiagonal,
                GateName::H | GateName::W | GateName::Swap | GateName::Named(_) => {
                    WireAction::Opaque
                }
            };
            for &t in targets {
                actions.insert(t, action);
            }
            mark_controls(&mut actions, controls);
        }
        Gate::QRot {
            name,
            targets,
            controls,
            ..
        } => {
            let action = if targets.len() == 1 && Z_ROTS.contains(&name.as_ref()) {
                WireAction::ZDiagonal
            } else if targets.len() == 1 && name.as_ref() == "Ry(%)" {
                WireAction::YDiagonal
            } else {
                WireAction::Opaque
            };
            for &t in targets {
                actions.insert(t, action);
            }
            mark_controls(&mut actions, controls);
        }
        Gate::GPhase { controls, .. } => mark_controls(&mut actions, controls),
        // Everything else — initialization, termination, measurement,
        // discard, classical gates, whole subroutine calls, comments — is
        // treated as opaque on every wire it touches.
        _ => opaque_all(&mut actions),
    }
    actions
}

/// A control wire is read in the computational basis — Z-diagonal — unless a
/// target action already claimed the wire (a self-controlled gate would be
/// malformed anyway; stay conservative).
fn mark_controls(actions: &mut HashMap<Wire, WireAction>, controls: &[Control]) {
    for c in controls {
        actions.entry(c.wire).or_insert(WireAction::ZDiagonal);
    }
}

/// Whether `a` and `b` provably commute: on every shared wire both act
/// diagonally in the same basis. Sound, not complete.
pub fn commutes(a: &Gate, b: &Gate) -> bool {
    commutes_with(&wire_actions(a), b)
}

/// [`commutes`] against a precomputed action map, so a look-back scan
/// classifies the moving gate once.
pub fn commutes_with(a: &HashMap<Wire, WireAction>, b: &Gate) -> bool {
    let b_actions = wire_actions(b);
    b_actions.iter().all(|(w, &bact)| match a.get(w) {
        None => true,
        Some(&aact) => aact == bact && aact != WireAction::Opaque,
    })
}

/// Whether two control lists denote the same set of signed controls,
/// ignoring order.
pub fn same_control_set(a: &[Control], b: &[Control]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut ca = a.to_vec();
    let mut cb = b.to_vec();
    ca.sort_unstable();
    cb.sort_unstable();
    ca == cb
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnot(target: u32, control: u32) -> Gate {
        Gate::cnot(Wire(target), Wire(control))
    }

    #[test]
    fn disjoint_gates_commute() {
        assert!(commutes(
            &Gate::unary(GateName::H, Wire(0)),
            &Gate::unary(GateName::H, Wire(1))
        ));
    }

    #[test]
    fn cnots_commute_through_shared_controls_and_targets() {
        // Shared control: both read wire 0 in the Z basis.
        assert!(commutes(&cnot(1, 0), &cnot(2, 0)));
        // Shared target: both flip wire 2 in the X basis.
        assert!(commutes(&cnot(2, 0), &cnot(2, 1)));
        // Control of one is the target of the other: do not commute.
        assert!(!commutes(&cnot(1, 0), &cnot(0, 2)));
    }

    #[test]
    fn diagonals_commute_with_controls() {
        let t = Gate::unary(GateName::T, Wire(0));
        assert!(commutes(&t, &cnot(1, 0)));
        assert!(!commutes(&t, &cnot(0, 1)));
        let x = Gate::unary(GateName::X, Wire(0));
        assert!(!commutes(&t, &x));
        assert!(commutes(&x, &cnot(0, 1)));
    }

    #[test]
    fn rotations_classify_by_family() {
        let rz = Gate::QRot {
            name: "exp(-i%Z)".into(),
            inverted: false,
            angle: 0.3,
            targets: vec![Wire(0)],
            controls: vec![],
        };
        let ry = Gate::QRot {
            name: "Ry(%)".into(),
            inverted: false,
            angle: 0.3,
            targets: vec![Wire(0)],
            controls: vec![],
        };
        assert!(commutes(&rz, &Gate::unary(GateName::Z, Wire(0))));
        assert!(commutes(&ry, &Gate::unary(GateName::Y, Wire(0))));
        assert!(!commutes(&rz, &ry));
        assert!(!commutes(&ry, &Gate::unary(GateName::X, Wire(0))));
    }

    #[test]
    fn measurement_is_opaque() {
        let m = Gate::QMeas { wire: Wire(0) };
        assert!(!commutes(&m, &Gate::unary(GateName::Z, Wire(0))));
        assert!(commutes(&m, &Gate::unary(GateName::Z, Wire(1))));
    }

    #[test]
    fn control_sets_compare_unordered() {
        let a = [Control::positive(Wire(0)), Control::negative(Wire(1))];
        let b = [Control::negative(Wire(1)), Control::positive(Wire(0))];
        assert!(same_control_set(&a, &b));
        assert!(!same_control_set(&a, &b[..1]));
    }
}
