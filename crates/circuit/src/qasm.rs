//! OpenQASM 2.0 export.
//!
//! The paper separates circuit description from circuit consumption
//! (§4.4.5); this module is a consumer that lowers a circuit to OpenQASM
//! 2.0 for interoperability with other toolchains. It also implements the
//! "register allocation" phase the paper anticipates (§4.2.1): wire
//! identifiers are virtual, and scoped ancillas are mapped onto a *pool*
//! of physical qubits — a terminated ancilla's slot is reset and reused by
//! the next initialization, so the emitted `qreg` has the circuit's peak
//! width, not its total wire count.
//!
//! Measurement results land in *per-wire one-bit registers* (`creg c0[1];`,
//! `creg c1[1];`, …) rather than one wide register: OpenQASM 2.0's `if`
//! compares a whole creg against an integer, so one-bit registers are what
//! makes a single measurement outcome usable as a gate condition. A
//! classically-controlled quantum gate (the paper's dynamic lifting,
//! e.g. teleportation's corrections) emits as an `if(cN==1) ...;` prefix.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::circuit::{BCircuit, Circuit};
use crate::error::CircuitError;
use crate::flatten::inline_all;
use crate::gate::{Gate, GateName};
use crate::qelib;
use crate::qelib::format_angle;
use crate::wire::{Control, Wire};

/// Lowers a hierarchical circuit to OpenQASM 2.0.
///
/// Boxed subcircuits are inlined; virtual wires are allocated onto a
/// physical-qubit pool with reuse across ancilla scopes. Circuits must be
/// in (at most) the Toffoli gate base with the standard gate vocabulary —
/// run [`decompose`](https://docs.rs/quipper) first for anything fancier.
///
/// # Errors
///
/// Returns [`CircuitError::NotControllable`] (reused as "not expressible")
/// for gates with no OpenQASM 2.0 counterpart: classical logic gates
/// (`CInit`/`CGate`), custom named gates, gates with more controls than
/// `ccx`/`cswap` allow, multiply-controlled phases, and gates conditioned
/// on more than one classical bit (QASM 2.0 allows one `if` per
/// statement). Classical *controls* on single-statement gates are
/// supported; `CTerm`/`CDiscard` end a classical wire's scope and emit
/// nothing.
pub fn to_qasm(bc: &BCircuit) -> Result<String, CircuitError> {
    let flat = inline_all(&bc.db, &bc.main)?;
    emit(&flat)
}

struct Alloc {
    slot_of: HashMap<Wire, usize>,
    free: Vec<usize>,
    next: usize,
    /// Classical bit allocation (for measurement results).
    creg_of: HashMap<Wire, usize>,
    next_creg: usize,
}

impl Alloc {
    fn acquire(&mut self, w: Wire) -> usize {
        let slot = self.free.pop().unwrap_or_else(|| {
            let s = self.next;
            self.next += 1;
            s
        });
        self.slot_of.insert(w, slot);
        slot
    }

    fn get(&self, w: Wire) -> Result<usize, CircuitError> {
        self.slot_of.get(&w).copied().ok_or(CircuitError::DeadWire {
            wire: w,
            context: "qasm emission".into(),
        })
    }

    fn release(&mut self, w: Wire) -> Result<usize, CircuitError> {
        let slot = self.get(w)?;
        self.slot_of.remove(&w);
        self.free.push(slot);
        Ok(slot)
    }

    fn creg(&mut self, w: Wire) -> usize {
        *self.creg_of.entry(w).or_insert_with(|| {
            let c = self.next_creg;
            self.next_creg += 1;
            c
        })
    }
}

fn unsupported(gate: &Gate) -> CircuitError {
    CircuitError::NotControllable {
        gate: format!("{} (no OpenQASM 2.0 form)", gate.describe()),
    }
}

fn emit(c: &Circuit) -> Result<String, CircuitError> {
    let mut alloc = Alloc {
        slot_of: HashMap::new(),
        free: Vec::new(),
        next: 0,
        creg_of: HashMap::new(),
        next_creg: 0,
    };
    for &(w, ty) in &c.inputs {
        match ty {
            crate::wire::WireType::Quantum => {
                alloc.acquire(w);
            }
            crate::wire::WireType::Classical => {
                alloc.creg(w);
            }
        }
    }

    let mut body = String::new();
    for gate in &c.gates {
        emit_gate(&mut body, gate, &mut alloc)?;
    }

    let mut out = String::new();
    let _ = writeln!(out, "OPENQASM 2.0;");
    let _ = writeln!(out, "include \"qelib1.inc\";");
    let _ = writeln!(out, "qreg q[{}];", alloc.next.max(1));
    for i in 0..alloc.next_creg {
        let _ = writeln!(out, "creg c{i}[1];");
    }
    out.push_str(&body);
    Ok(out)
}

/// Opened controls of one gate: quantum control slots, the slots that were
/// X-conjugated for negative polarity, and the `if(cN==v) ` condition
/// prefix contributed by a classical control.
struct Opened {
    slots: Vec<usize>,
    flipped: Vec<usize>,
    cond: String,
}

/// Splits controls into quantum slots (emitting X-conjugation for negative
/// polarity, returned so the caller can close them) and at most one
/// classical condition, rendered as a statement prefix.
fn open_controls(
    s: &mut String,
    controls: &[Control],
    alloc: &Alloc,
) -> Result<Opened, CircuitError> {
    let mut opened = Opened {
        slots: Vec::new(),
        flipped: Vec::new(),
        cond: String::new(),
    };
    for c in controls {
        if let Some(&creg) = alloc.creg_of.get(&c.wire) {
            if !opened.cond.is_empty() {
                // QASM 2.0 allows one `if` per statement.
                return Err(CircuitError::NotControllable {
                    gate: "gate with multiple classical controls (no OpenQASM 2.0 form)".into(),
                });
            }
            let _ = write!(opened.cond, "if(c{creg}=={}) ", u8::from(c.positive));
        } else {
            let slot = alloc.get(c.wire)?;
            opened.slots.push(slot);
            if !c.positive {
                let _ = writeln!(s, "x q[{slot}];");
                opened.flipped.push(slot);
            }
        }
    }
    Ok(opened)
}

fn close_controls(s: &mut String, flipped: &[usize]) {
    for &slot in flipped.iter().rev() {
        let _ = writeln!(s, "x q[{slot}];");
    }
}

fn emit_gate(s: &mut String, gate: &Gate, alloc: &mut Alloc) -> Result<(), CircuitError> {
    match gate {
        Gate::Comment { text, .. } => {
            let _ = writeln!(s, "// {text}");
            Ok(())
        }
        Gate::QInit { value, wire } => {
            let slot = alloc.acquire(*wire);
            let _ = writeln!(s, "reset q[{slot}];");
            if *value {
                let _ = writeln!(s, "x q[{slot}];");
            }
            Ok(())
        }
        Gate::QTerm { wire, .. } | Gate::QDiscard { wire } => {
            // The slot returns to the pool; physical reset happens at the
            // next acquisition.
            alloc.release(*wire)?;
            Ok(())
        }
        Gate::QMeas { wire } => {
            let slot = alloc.get(*wire)?;
            let creg = alloc.creg(*wire);
            let _ = writeln!(s, "measure q[{slot}] -> c{creg}[0];");
            // The wire becomes classical; the qubit slot is reusable.
            alloc.release(*wire)?;
            Ok(())
        }
        Gate::CTerm { .. } | Gate::CDiscard { .. } => {
            // The classical wire's scope ends; its creg (if it was ever
            // measured into) simply keeps its final value.
            Ok(())
        }
        Gate::CInit { .. } | Gate::CGate { .. } => Err(unsupported(gate)),
        Gate::GPhase { angle, controls } => {
            let o = open_controls(s, controls, alloc)?;
            let theta = angle * std::f64::consts::PI;
            match o.slots.len() {
                // Without a quantum control the phase is global: unobservable
                // (conditioned or not).
                0 => {}
                // A controlled global phase is u1 on the control ...
                1 => {
                    let _ = writeln!(s, "{}u1({theta}) q[{}];", o.cond, o.slots[0]);
                }
                // ... a doubly-controlled one is cu1 between the controls ...
                2 => {
                    let _ = writeln!(
                        s,
                        "{}cu1({theta}) q[{}],q[{}];",
                        o.cond, o.slots[0], o.slots[1]
                    );
                }
                // ... and three controls take the standard C²-U1 ladder
                // (Grover's diffusion over 3 qubits lands here). Five
                // statements, so no classical condition can cover it.
                3 if o.cond.is_empty() => {
                    let (a, b, c) = (o.slots[0], o.slots[1], o.slots[2]);
                    let half = theta / 2.0;
                    let _ = writeln!(s, "cu1({half}) q[{b}],q[{c}];");
                    let _ = writeln!(s, "cx q[{a}],q[{b}];");
                    let _ = writeln!(s, "cu1({}) q[{b}],q[{c}];", -half);
                    let _ = writeln!(s, "cx q[{a}],q[{b}];");
                    let _ = writeln!(s, "cu1({half}) q[{a}],q[{c}];");
                }
                _ => return Err(unsupported(gate)),
            }
            close_controls(s, &o.flipped);
            Ok(())
        }
        Gate::QRot {
            name,
            inverted,
            angle,
            targets,
            controls,
        } => {
            let t = alloc.get(targets[0])?;
            let sign = if *inverted { -1.0 } else { 1.0 };
            let o = open_controls(s, controls, alloc)?;
            // R(2pi/%) carries its parameter as a power-of-two exponent; fold
            // it to the concrete phase so the shared table (which only deals
            // in radian-parameter families) covers it as R(%).
            let (family, angle) = if &**name == qelib::FAMILY_R2PI {
                (
                    qelib::FAMILY_R,
                    2.0 * std::f64::consts::PI / f64::powf(2.0, *angle),
                )
            } else {
                (&**name, *angle)
            };
            let (mnemonic, scale) =
                qelib::rotation_mnemonic(family, o.slots.len()).ok_or_else(|| unsupported(gate))?;
            let mut args = String::new();
            for slot in &o.slots {
                let _ = write!(args, "q[{slot}],");
            }
            let _ = writeln!(
                s,
                "{}{mnemonic}({}) {args}q[{t}];",
                o.cond,
                format_angle(sign * angle / scale),
            );
            close_controls(s, &o.flipped);
            Ok(())
        }
        Gate::QGate {
            name,
            inverted,
            targets,
            controls,
        } => {
            let o = open_controls(s, controls, alloc)?;
            let slots = &o.slots;
            let t0 = alloc.get(targets[0])?;
            let line = match (name, slots.len()) {
                (GateName::V, 0) => {
                    // √X = Rx(π/2) up to global phase.
                    let a = if *inverted { -1.0 } else { 1.0 };
                    format!("rx({}) q[{t0}];", format_angle(a * qelib::RX_V_ANGLE))
                }
                (GateName::V, 1) => {
                    // Controlled-√X: cu3 with the Rx angles plus the phase
                    // correction cu1(±π/2) on the control. Two statements, so
                    // a classical condition cannot cover it.
                    if !o.cond.is_empty() {
                        return Err(unsupported(gate));
                    }
                    let a = if *inverted { -1.0 } else { 1.0 };
                    let half = a * std::f64::consts::FRAC_PI_2;
                    let _ = writeln!(
                        s,
                        "cu3({half},{},{}) q[{}],q[{t0}];",
                        -std::f64::consts::FRAC_PI_2,
                        std::f64::consts::FRAC_PI_2,
                        slots[0]
                    );
                    format!("u1({}) q[{}];", a * std::f64::consts::FRAC_PI_4, slots[0])
                }
                (GateName::W, 0) => {
                    // W = CX(b; a) · CH(a; b) · CX(b; a). Three statements, so
                    // a classical condition cannot cover it.
                    if !o.cond.is_empty() {
                        return Err(unsupported(gate));
                    }
                    let t1 = alloc.get(targets[1])?;
                    let _ = writeln!(s, "cx q[{t0}],q[{t1}];");
                    let _ = writeln!(s, "ch q[{t1}],q[{t0}];");
                    format!("cx q[{t0}],q[{t1}];")
                }
                _ => {
                    // Everything else goes through the shared qelib table:
                    // control slots first, then targets, matching OpenQASM
                    // argument order.
                    let mnemonic = qelib::unitary_mnemonic(name, *inverted, slots.len())
                        .ok_or_else(|| unsupported(gate))?;
                    let mut args = String::new();
                    for slot in slots {
                        let _ = write!(args, "q[{slot}],");
                    }
                    let _ = write!(args, "q[{t0}]");
                    for t in &targets[1..] {
                        let _ = write!(args, ",q[{}]", alloc.get(*t)?);
                    }
                    format!("{mnemonic} {args};")
                }
            };
            let _ = writeln!(s, "{}{line}", o.cond);
            close_controls(s, &o.flipped);
            Ok(())
        }
        Gate::Subroutine { .. } => unreachable!("inlined before emission"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitDb;
    use crate::wire::WireType;

    fn q(w: u32) -> (Wire, WireType) {
        (Wire(w), WireType::Quantum)
    }

    #[test]
    fn bell_pair_emits_standard_gates() {
        let mut c = Circuit::with_inputs(vec![q(0), q(1)]);
        c.gates.push(Gate::unary(GateName::H, Wire(0)));
        c.gates.push(Gate::cnot(Wire(1), Wire(0)));
        c.gates.push(Gate::QMeas { wire: Wire(0) });
        c.gates.push(Gate::QMeas { wire: Wire(1) });
        c.outputs = vec![
            (Wire(0), WireType::Classical),
            (Wire(1), WireType::Classical),
        ];
        let qasm = to_qasm(&BCircuit::new(CircuitDb::new(), c)).unwrap();
        assert!(qasm.starts_with("OPENQASM 2.0;\n"));
        assert!(qasm.contains("qreg q[2];"));
        assert!(qasm.contains("creg c0[1];"));
        assert!(qasm.contains("creg c1[1];"));
        assert!(qasm.contains("h q[0];"));
        assert!(qasm.contains("cx q[0],q[1];"));
        assert!(qasm.contains("measure q[0] -> c0[0];"));
    }

    #[test]
    fn classical_controls_emit_if_prefixes() {
        // measure q0, then X on q1 conditioned on the outcome (positive and
        // negative polarity), then discard the classical bit.
        let mut c = Circuit::with_inputs(vec![q(0), q(1)]);
        c.gates.push(Gate::QMeas { wire: Wire(0) });
        c.gates.push(Gate::QGate {
            name: GateName::X,
            inverted: false,
            targets: vec![Wire(1)],
            controls: vec![Control::positive(Wire(0))],
        });
        c.gates.push(Gate::QGate {
            name: GateName::Z,
            inverted: false,
            targets: vec![Wire(1)],
            controls: vec![Control::negative(Wire(0))],
        });
        c.gates.push(Gate::CDiscard { wire: Wire(0) });
        c.outputs = vec![(Wire(1), WireType::Quantum)];
        let qasm = to_qasm(&BCircuit::new(CircuitDb::new(), c)).unwrap();
        assert!(qasm.contains("creg c0[1];"), "{qasm}");
        assert!(qasm.contains("measure q[0] -> c0[0];"), "{qasm}");
        assert!(qasm.contains("if(c0==1) x q[1];"), "{qasm}");
        assert!(qasm.contains("if(c0==0) z q[1];"), "{qasm}");
    }

    #[test]
    fn doubly_classical_conditions_are_rejected() {
        let mut c = Circuit::with_inputs(vec![q(0), q(1), q(2)]);
        c.gates.push(Gate::QMeas { wire: Wire(0) });
        c.gates.push(Gate::QMeas { wire: Wire(1) });
        c.gates.push(Gate::QGate {
            name: GateName::X,
            inverted: false,
            targets: vec![Wire(2)],
            controls: vec![Control::positive(Wire(0)), Control::positive(Wire(1))],
        });
        c.outputs = vec![(Wire(2), WireType::Quantum)];
        assert!(to_qasm(&BCircuit::new(CircuitDb::new(), c)).is_err());
    }

    #[test]
    fn ancilla_slots_are_pooled() {
        // Two sequential scoped ancillas share one physical slot: the qreg
        // has width 2, not 3.
        let mut c = Circuit::with_inputs(vec![q(0)]);
        for _ in 0..2 {
            let w = Wire(c.wire_bound);
            c.wire_bound += 1;
            c.gates.push(Gate::QInit {
                value: false,
                wire: w,
            });
            c.gates.push(Gate::cnot(w, Wire(0)));
            c.gates.push(Gate::cnot(w, Wire(0)));
            c.gates.push(Gate::QTerm {
                value: false,
                wire: w,
            });
        }
        let qasm = to_qasm(&BCircuit::new(CircuitDb::new(), c)).unwrap();
        assert!(qasm.contains("qreg q[2];"), "pooled allocation:\n{qasm}");
        // The reuse resets the slot before the second scope.
        assert_eq!(qasm.matches("reset q[1];").count(), 2);
    }

    #[test]
    fn negative_controls_are_conjugated() {
        let mut c = Circuit::with_inputs(vec![q(0), q(1)]);
        c.gates.push(Gate::QGate {
            name: GateName::X,
            inverted: false,
            targets: vec![Wire(0)],
            controls: vec![Control::negative(Wire(1))],
        });
        let qasm = to_qasm(&BCircuit::new(CircuitDb::new(), c)).unwrap();
        let x_count = qasm.matches("x q[1];").count();
        assert_eq!(x_count, 2, "conjugating X pair:\n{qasm}");
        assert!(qasm.contains("cx q[1],q[0];"));
    }

    #[test]
    fn rotations_map_to_qelib_rotations() {
        let mut c = Circuit::with_inputs(vec![q(0)]);
        c.gates.push(Gate::QRot {
            name: std::sync::Arc::from("exp(-i%Z)"),
            inverted: false,
            angle: 0.25,
            targets: vec![Wire(0)],
            controls: vec![],
        });
        let qasm = to_qasm(&BCircuit::new(CircuitDb::new(), c)).unwrap();
        assert!(qasm.contains("rz(0.5) q[0];"), "{qasm}");
    }

    #[test]
    fn classical_gates_are_rejected() {
        let mut c = Circuit::default();
        c.gates.push(Gate::CInit {
            value: false,
            wire: Wire(0),
        });
        c.outputs = vec![(Wire(0), WireType::Classical)];
        c.recompute_wire_bound();
        assert!(to_qasm(&BCircuit::new(CircuitDb::new(), c)).is_err());
    }

    #[test]
    fn boxed_circuits_inline_before_emission() {
        let mut db = CircuitDb::new();
        let mut body = Circuit::with_inputs(vec![q(0)]);
        body.gates.push(Gate::unary(GateName::H, Wire(0)));
        let id = db.insert(crate::circuit::SubDef {
            name: "h".into(),
            shape: "".into(),
            circuit: body,
        });
        let mut main = Circuit::with_inputs(vec![q(0)]);
        main.gates.push(Gate::Subroutine {
            id,
            inverted: false,
            inputs: vec![Wire(0)],
            outputs: vec![Wire(0)],
            controls: vec![],
            repetitions: 3,
        });
        let qasm = to_qasm(&BCircuit::new(db, main)).unwrap();
        assert_eq!(qasm.matches("h q[0];").count(), 3);
    }
}
