//! Circuit reversal.
//!
//! Quipper reverses circuits containing qubit initializations and assertive
//! terminations "without complaint" (paper §4.2.2): such circuits denote
//! unitary bijections between the subspaces carved out by the assertions, so
//! reversal is meaningful. Reversal fails only on genuinely irreversible
//! gates: measurements, discards and classical gates.

use crate::circuit::Circuit;
use crate::error::CircuitError;

/// Returns the reverse of `circuit`.
///
/// Inputs and outputs are exchanged, the gate list is reversed, and every
/// gate is replaced by its inverse: initializations become assertive
/// terminations and vice versa, rotations are inverted, and calls to boxed
/// subcircuits have their `inverted` flag toggled (the subroutine *body* is
/// shared, not duplicated).
///
/// # Errors
///
/// Returns [`CircuitError::NotReversible`] if the circuit contains a
/// measurement, discard or classical gate.
///
/// # Examples
///
/// ```
/// use quipper_circuit::{reverse::reverse_circuit, Circuit, Gate, Wire, WireType};
///
/// let mut c = Circuit::with_inputs(vec![(Wire(0), WireType::Quantum)]);
/// c.gates.push(Gate::QInit { value: false, wire: Wire(1) });
/// c.gates.push(Gate::cnot(Wire(1), Wire(0)));
/// c.gates.push(Gate::QTerm { value: false, wire: Wire(1) });
/// c.recompute_wire_bound();
///
/// let r = reverse_circuit(&c)?;
/// assert_eq!(r.gates.len(), 3);
/// assert_eq!(r.gates[0], Gate::QInit { value: false, wire: Wire(1) });
/// # Ok::<(), quipper_circuit::CircuitError>(())
/// ```
pub fn reverse_circuit(circuit: &Circuit) -> Result<Circuit, CircuitError> {
    let mut gates = Vec::with_capacity(circuit.gates.len());
    for gate in circuit.gates.iter().rev() {
        gates.push(gate.inverse()?);
    }
    Ok(Circuit {
        inputs: circuit.outputs.clone(),
        gates,
        outputs: circuit.inputs.clone(),
        wire_bound: circuit.wire_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitDb;
    use crate::gate::{Gate, GateName};
    use crate::wire::{Wire, WireType};

    fn q(w: u32) -> (Wire, WireType) {
        (Wire(w), WireType::Quantum)
    }

    #[test]
    fn double_reverse_is_identity() {
        let mut c = Circuit::with_inputs(vec![q(0), q(1)]);
        c.gates.push(Gate::unary(GateName::H, Wire(0)));
        c.gates.push(Gate::QInit {
            value: true,
            wire: Wire(2),
        });
        c.gates.push(Gate::toffoli(Wire(2), Wire(0), Wire(1)));
        c.gates.push(Gate::QTerm {
            value: true,
            wire: Wire(2),
        });
        c.recompute_wire_bound();
        let rr = reverse_circuit(&reverse_circuit(&c).unwrap()).unwrap();
        assert_eq!(rr, c);
    }

    #[test]
    fn reversed_circuit_with_ancillas_validates() {
        // Reversal of a circuit whose ancilla scope is well-formed is again
        // well-formed: inits become terms and vice versa (paper §4.2.2).
        let mut c = Circuit::with_inputs(vec![q(0)]);
        c.gates.push(Gate::QInit {
            value: false,
            wire: Wire(1),
        });
        c.gates.push(Gate::cnot(Wire(1), Wire(0)));
        c.gates.push(Gate::unary(GateName::H, Wire(1)));
        c.gates.push(Gate::QDiscard { wire: Wire(1) });
        assert!(reverse_circuit(&c).is_err(), "discard is not reversible");

        let mut c2 = Circuit::with_inputs(vec![q(0)]);
        c2.gates.push(Gate::QInit {
            value: false,
            wire: Wire(1),
        });
        c2.gates.push(Gate::cnot(Wire(1), Wire(0)));
        c2.gates.push(Gate::cnot(Wire(1), Wire(0)));
        c2.gates.push(Gate::QTerm {
            value: false,
            wire: Wire(1),
        });
        c2.recompute_wire_bound();
        let r = reverse_circuit(&c2).unwrap();
        r.validate(&CircuitDb::new()).unwrap();
    }

    #[test]
    fn measurement_blocks_reversal() {
        let mut c = Circuit::with_inputs(vec![q(0)]);
        c.gates.push(Gate::QMeas { wire: Wire(0) });
        c.outputs = vec![(Wire(0), WireType::Classical)];
        assert!(matches!(
            reverse_circuit(&c),
            Err(CircuitError::NotReversible { .. })
        ));
    }
}
