//! Gates of the extended circuit model.
//!
//! The gate vocabulary mirrors Quipper's internal representation: pure quantum
//! gates (with optional inversion and signed controls), rotations with a real
//! parameter, global phases, explicit qubit/bit initialization and assertive
//! termination, measurement, discard, classical gates, comments with wire
//! labels, and calls to boxed subcircuits.

use std::fmt;
use std::sync::Arc;

use crate::circuit::BoxId;
use crate::error::CircuitError;
use crate::wire::{Control, Wire};

/// The name of a primitive unitary gate.
///
/// Common gates get dedicated variants so they can be matched on cheaply;
/// everything else uses [`GateName::Named`], which carries a shared string.
/// The set matches the gates used throughout the paper: `not` (X), Hadamard,
/// Pauli Y/Z, the phase gates S and T, V = √X (used when decomposing Toffoli
/// gates into binary gates, paper §4.4.3), the two-qubit W gate from the
/// Binary Welded Tree algorithm (Figure 1), and swap.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum GateName {
    /// Pauli X, printed as `not`.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// The phase gate S = diag(1, i).
    S,
    /// The π/8 gate T = diag(1, e^{iπ/4}).
    T,
    /// V = √X, used in binary decompositions of the Toffoli gate.
    V,
    /// The two-qubit W gate of the Binary Welded Tree algorithm: it maps
    /// |01⟩ ↦ (|01⟩+|10⟩)/√2 and |10⟩ ↦ (|01⟩−|10⟩)/√2, fixing |00⟩ and |11⟩.
    W,
    /// Two-qubit swap.
    Swap,
    /// Any other named gate.
    Named(Arc<str>),
}

impl GateName {
    /// Creates a custom named gate.
    pub fn named(name: &str) -> Self {
        GateName::Named(Arc::from(name))
    }

    /// Whether the gate is its own inverse, so that the `inverted` flag is
    /// irrelevant for it.
    pub fn is_self_inverse(&self) -> bool {
        matches!(
            self,
            GateName::X | GateName::Y | GateName::Z | GateName::H | GateName::Swap
        )
    }

    /// The number of target wires the gate acts on, if fixed.
    pub fn fixed_arity(&self) -> Option<usize> {
        match self {
            GateName::X
            | GateName::Y
            | GateName::Z
            | GateName::H
            | GateName::S
            | GateName::T
            | GateName::V => Some(1),
            GateName::W | GateName::Swap => Some(2),
            GateName::Named(_) => None,
        }
    }
}

impl fmt::Display for GateName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateName::X => write!(f, "not"),
            GateName::Y => write!(f, "Y"),
            GateName::Z => write!(f, "Z"),
            GateName::H => write!(f, "H"),
            GateName::S => write!(f, "S"),
            GateName::T => write!(f, "T"),
            GateName::V => write!(f, "V"),
            GateName::W => write!(f, "W"),
            GateName::Swap => write!(f, "swap"),
            GateName::Named(s) => write!(f, "{s}"),
        }
    }
}

/// A single gate in the extended circuit model.
#[derive(Clone, PartialEq, Debug)]
pub enum Gate {
    /// A primitive unitary gate applied to `targets`, under signed `controls`.
    QGate {
        /// Which gate.
        name: GateName,
        /// Apply the inverse of the gate instead.
        inverted: bool,
        /// Target wires (quantum).
        targets: Vec<Wire>,
        /// Signed controls (quantum or classical wires).
        controls: Vec<Control>,
    },
    /// A rotation gate parameterized by a real angle, such as `exp(-i Z t)`
    /// from the Binary Welded Tree diffusion step (Figure 1).
    QRot {
        /// Rotation family name, e.g. `"exp(-i%Z)"` or `"R(2pi/%)"`.
        name: Arc<str>,
        /// Apply the inverse rotation.
        inverted: bool,
        /// The rotation parameter.
        angle: f64,
        /// Target wires.
        targets: Vec<Wire>,
        /// Signed controls.
        controls: Vec<Control>,
    },
    /// A global phase `e^{iπ·angle}`; with controls it becomes a relative
    /// phase.
    GPhase {
        /// Phase exponent in units of π.
        angle: f64,
        /// Signed controls.
        controls: Vec<Control>,
    },
    /// Allocate a fresh qubit in state |0⟩ or |1⟩ (written `0 |−` in the
    /// paper's notation).
    QInit {
        /// Initial state.
        value: bool,
        /// The freshly allocated wire.
        wire: Wire,
    },
    /// Allocate a fresh classical bit.
    CInit {
        /// Initial value.
        value: bool,
        /// The freshly allocated wire.
        wire: Wire,
    },
    /// Deallocate a qubit, *asserting* it is in the given computational basis
    /// state (paper §4.2.2, written `−| 0`). The programmer, not the
    /// compiler, is responsible for the assertion's correctness.
    QTerm {
        /// Asserted state.
        value: bool,
        /// The wire to deallocate.
        wire: Wire,
    },
    /// Deallocate a classical bit, asserting its value.
    CTerm {
        /// Asserted value.
        value: bool,
        /// The wire to deallocate.
        wire: Wire,
    },
    /// Measure a qubit in the computational basis. The wire survives but its
    /// type changes from quantum to classical.
    QMeas {
        /// The wire to measure.
        wire: Wire,
    },
    /// Drop a qubit without any assertion, resulting in a possibly mixed
    /// state. Unlike [`Gate::QTerm`] this is not reversible even in
    /// principle.
    QDiscard {
        /// The wire to discard.
        wire: Wire,
    },
    /// Drop a classical bit.
    CDiscard {
        /// The wire to discard.
        wire: Wire,
    },
    /// A classical gate computing a named boolean function of `inputs` into
    /// the freshly allocated classical wire `target`.
    CGate {
        /// Function name, e.g. `"xor"`, `"and"`.
        name: Arc<str>,
        /// Invert the output.
        inverted: bool,
        /// Freshly allocated output wire.
        target: Wire,
        /// Classical input wires (remain alive).
        inputs: Vec<Wire>,
    },
    /// A call to a boxed subcircuit (paper §4.4.4). The `inputs` are consumed
    /// and the `outputs` are brought alive; with `repetitions > 1` the body is
    /// iterated, which requires its input and output shapes to agree.
    Subroutine {
        /// Which subroutine in the [`CircuitDb`](crate::CircuitDb).
        id: BoxId,
        /// Run the reverse of the subroutine.
        inverted: bool,
        /// Wires consumed (must match the definition's input arity).
        inputs: Vec<Wire>,
        /// Wires produced (must match the definition's output arity).
        outputs: Vec<Wire>,
        /// Signed controls applied to the whole call.
        controls: Vec<Control>,
        /// Number of times to iterate the body.
        repetitions: u64,
    },
    /// A comment with optional wire labels, used to annotate large circuits
    /// (`comment_with_label` in the paper's §5.3.1).
    Comment {
        /// Comment text.
        text: String,
        /// Wire labels, e.g. `[(w, "x[0]"), …]`.
        labels: Vec<(Wire, String)>,
    },
}

impl Gate {
    /// A convenience constructor: an uncontrolled single-target gate.
    pub fn unary(name: GateName, target: Wire) -> Self {
        Gate::QGate {
            name,
            inverted: false,
            targets: vec![target],
            controls: Vec::new(),
        }
    }

    /// A controlled-not with one positive control.
    pub fn cnot(target: Wire, control: Wire) -> Self {
        Gate::QGate {
            name: GateName::X,
            inverted: false,
            targets: vec![target],
            controls: vec![Control::positive(control)],
        }
    }

    /// A Toffoli gate (doubly-controlled not) with positive controls.
    pub fn toffoli(target: Wire, c1: Wire, c2: Wire) -> Self {
        Gate::QGate {
            name: GateName::X,
            inverted: false,
            targets: vec![target],
            controls: vec![Control::positive(c1), Control::positive(c2)],
        }
    }

    /// A short human-readable description of the gate, for error messages.
    pub fn describe(&self) -> String {
        match self {
            Gate::QGate { name, .. } => format!("QGate[\"{name}\"]"),
            Gate::QRot { name, .. } => format!("QRot[\"{name}\"]"),
            Gate::GPhase { .. } => "GPhase".to_string(),
            Gate::QInit { value, .. } => format!("QInit{}", u8::from(*value)),
            Gate::CInit { value, .. } => format!("CInit{}", u8::from(*value)),
            Gate::QTerm { value, .. } => format!("QTerm{}", u8::from(*value)),
            Gate::CTerm { value, .. } => format!("CTerm{}", u8::from(*value)),
            Gate::QMeas { .. } => "QMeas".to_string(),
            Gate::QDiscard { .. } => "QDiscard".to_string(),
            Gate::CDiscard { .. } => "CDiscard".to_string(),
            Gate::CGate { name, .. } => format!("CGate[\"{name}\"]"),
            Gate::Subroutine { .. } => "Subroutine".to_string(),
            Gate::Comment { .. } => "Comment".to_string(),
        }
    }

    /// The controls of the gate, if it carries any.
    pub fn controls(&self) -> &[Control] {
        match self {
            Gate::QGate { controls, .. }
            | Gate::QRot { controls, .. }
            | Gate::GPhase { controls, .. }
            | Gate::Subroutine { controls, .. } => controls,
            _ => &[],
        }
    }

    /// Whether adding controls to this gate is meaningful.
    ///
    /// Initialization, termination and comments are *control-neutral*: they
    /// are allowed to appear inside a controlled block and simply remain
    /// uncontrolled (this is how Quipper scopes ancillas inside
    /// `with_controls` blocks). Measurement and discard are neither
    /// controllable nor control-neutral.
    pub fn controllable(&self) -> Controllability {
        match self {
            Gate::QGate { .. }
            | Gate::QRot { .. }
            | Gate::GPhase { .. }
            | Gate::Subroutine { .. }
            | Gate::CGate { .. } => Controllability::Controllable,
            Gate::QInit { .. }
            | Gate::CInit { .. }
            | Gate::QTerm { .. }
            | Gate::CTerm { .. }
            | Gate::Comment { .. } => Controllability::ControlNeutral,
            Gate::QMeas { .. } | Gate::QDiscard { .. } | Gate::CDiscard { .. } => {
                Controllability::NotControllable
            }
        }
    }

    /// Returns a copy of this gate with the given controls appended.
    ///
    /// Control-neutral gates are returned unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotControllable`] for gates that cannot appear
    /// under controls at all (measurement, discard).
    pub fn with_controls(&self, extra: &[Control]) -> Result<Gate, CircuitError> {
        if extra.is_empty() {
            return Ok(self.clone());
        }
        match self.controllable() {
            Controllability::ControlNeutral => Ok(self.clone()),
            Controllability::NotControllable => Err(CircuitError::NotControllable {
                gate: self.describe(),
            }),
            Controllability::Controllable => {
                let mut g = self.clone();
                match &mut g {
                    Gate::QGate { controls, .. }
                    | Gate::QRot { controls, .. }
                    | Gate::GPhase { controls, .. }
                    | Gate::Subroutine { controls, .. } => {
                        controls.extend_from_slice(extra);
                    }
                    Gate::CGate { .. } => {
                        // A controlled classical gate: model by renaming.
                        // CGate semantics are "target := f(inputs)"; under a
                        // control the target must instead be xor-ed. We keep
                        // the simple model: classical gates under quantum
                        // controls are not supported.
                        return Err(CircuitError::NotControllable { gate: g.describe() });
                    }
                    _ => unreachable!("controllable gates carry controls"),
                }
                Ok(g)
            }
        }
    }

    /// Returns the inverse gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotReversible`] for measurements, discards and
    /// classical gates.
    pub fn inverse(&self) -> Result<Gate, CircuitError> {
        match self {
            Gate::QGate {
                name,
                inverted,
                targets,
                controls,
            } => Ok(Gate::QGate {
                name: name.clone(),
                inverted: !inverted && !name.is_self_inverse(),
                targets: targets.clone(),
                controls: controls.clone(),
            }),
            Gate::QRot {
                name,
                inverted,
                angle,
                targets,
                controls,
            } => Ok(Gate::QRot {
                name: name.clone(),
                inverted: !inverted,
                angle: *angle,
                targets: targets.clone(),
                controls: controls.clone(),
            }),
            Gate::GPhase { angle, controls } => Ok(Gate::GPhase {
                angle: -angle,
                controls: controls.clone(),
            }),
            Gate::QInit { value, wire } => Ok(Gate::QTerm {
                value: *value,
                wire: *wire,
            }),
            Gate::QTerm { value, wire } => Ok(Gate::QInit {
                value: *value,
                wire: *wire,
            }),
            Gate::CInit { value, wire } => Ok(Gate::CTerm {
                value: *value,
                wire: *wire,
            }),
            Gate::CTerm { value, wire } => Ok(Gate::CInit {
                value: *value,
                wire: *wire,
            }),
            Gate::Subroutine {
                id,
                inverted,
                inputs,
                outputs,
                controls,
                repetitions,
            } => Ok(Gate::Subroutine {
                id: *id,
                inverted: !inverted,
                inputs: outputs.clone(),
                outputs: inputs.clone(),
                controls: controls.clone(),
                repetitions: *repetitions,
            }),
            Gate::Comment { .. } => Ok(self.clone()),
            Gate::QMeas { .. }
            | Gate::QDiscard { .. }
            | Gate::CDiscard { .. }
            | Gate::CGate { .. } => Err(CircuitError::NotReversible {
                gate: self.describe(),
            }),
        }
    }

    /// Calls `f` on every wire the gate touches (targets, controls,
    /// initialized and terminated wires, labels).
    pub fn for_each_wire(&self, f: &mut impl FnMut(Wire)) {
        match self {
            Gate::QGate {
                targets, controls, ..
            }
            | Gate::QRot {
                targets, controls, ..
            } => {
                targets.iter().copied().for_each(&mut *f);
                controls.iter().for_each(|c| f(c.wire));
            }
            Gate::GPhase { controls, .. } => controls.iter().for_each(|c| f(c.wire)),
            Gate::QInit { wire, .. }
            | Gate::CInit { wire, .. }
            | Gate::QTerm { wire, .. }
            | Gate::CTerm { wire, .. }
            | Gate::QMeas { wire }
            | Gate::QDiscard { wire }
            | Gate::CDiscard { wire } => f(*wire),
            Gate::CGate { target, inputs, .. } => {
                f(*target);
                inputs.iter().copied().for_each(&mut *f);
            }
            Gate::Subroutine {
                inputs,
                outputs,
                controls,
                ..
            } => {
                inputs.iter().copied().for_each(&mut *f);
                outputs.iter().copied().for_each(&mut *f);
                controls.iter().for_each(|c| f(c.wire));
            }
            Gate::Comment { labels, .. } => labels.iter().for_each(|(w, _)| f(*w)),
        }
    }

    /// Returns a copy of this gate with every wire replaced by `f(wire)`.
    pub fn map_wires(&self, f: &mut impl FnMut(Wire) -> Wire) -> Gate {
        let map_controls = |f: &mut dyn FnMut(Wire) -> Wire, cs: &[Control]| -> Vec<Control> {
            cs.iter()
                .map(|c| Control {
                    wire: f(c.wire),
                    positive: c.positive,
                })
                .collect()
        };
        match self {
            Gate::QGate {
                name,
                inverted,
                targets,
                controls,
            } => Gate::QGate {
                name: name.clone(),
                inverted: *inverted,
                targets: targets.iter().map(|&w| f(w)).collect(),
                controls: map_controls(f, controls),
            },
            Gate::QRot {
                name,
                inverted,
                angle,
                targets,
                controls,
            } => Gate::QRot {
                name: name.clone(),
                inverted: *inverted,
                angle: *angle,
                targets: targets.iter().map(|&w| f(w)).collect(),
                controls: map_controls(f, controls),
            },
            Gate::GPhase { angle, controls } => Gate::GPhase {
                angle: *angle,
                controls: map_controls(f, controls),
            },
            Gate::QInit { value, wire } => Gate::QInit {
                value: *value,
                wire: f(*wire),
            },
            Gate::CInit { value, wire } => Gate::CInit {
                value: *value,
                wire: f(*wire),
            },
            Gate::QTerm { value, wire } => Gate::QTerm {
                value: *value,
                wire: f(*wire),
            },
            Gate::CTerm { value, wire } => Gate::CTerm {
                value: *value,
                wire: f(*wire),
            },
            Gate::QMeas { wire } => Gate::QMeas { wire: f(*wire) },
            Gate::QDiscard { wire } => Gate::QDiscard { wire: f(*wire) },
            Gate::CDiscard { wire } => Gate::CDiscard { wire: f(*wire) },
            Gate::CGate {
                name,
                inverted,
                target,
                inputs,
            } => Gate::CGate {
                name: name.clone(),
                inverted: *inverted,
                target: f(*target),
                inputs: inputs.iter().map(|&w| f(w)).collect(),
            },
            Gate::Subroutine {
                id,
                inverted,
                inputs,
                outputs,
                controls,
                repetitions,
            } => Gate::Subroutine {
                id: *id,
                inverted: *inverted,
                inputs: inputs.iter().map(|&w| f(w)).collect(),
                outputs: outputs.iter().map(|&w| f(w)).collect(),
                controls: map_controls(f, controls),
                repetitions: *repetitions,
            },
            Gate::Comment { text, labels } => Gate::Comment {
                text: text.clone(),
                labels: labels.iter().map(|(w, l)| (f(*w), l.clone())).collect(),
            },
        }
    }
}

/// How a gate behaves under controls; see [`Gate::controllable`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Controllability {
    /// Controls can be attached to the gate.
    Controllable,
    /// The gate ignores controls (ancilla initialization/termination,
    /// comments).
    ControlNeutral,
    /// The gate must not appear under controls.
    NotControllable,
}

/// The structural kind of a gate, used as part of the gate-counting key.
///
/// See [`GateClass`](crate::count::GateClass).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum ClassKind {
    /// A primitive unitary (possibly inverted).
    Unitary { name: GateName, inverted: bool },
    /// A rotation family (possibly inverted). Counts do not distinguish
    /// angles within a family.
    Rot { name: Arc<str>, inverted: bool },
    /// A global phase.
    GPhase,
    /// Initialization of a wire to a constant.
    Init { value: bool, classical: bool },
    /// Assertive termination of a wire.
    Term { value: bool, classical: bool },
    /// A measurement.
    Meas,
    /// A discard.
    Discard { classical: bool },
    /// A classical gate.
    Classical { name: Arc<str>, inverted: bool },
}

impl ClassKind {
    /// The kind obtained by inverting a gate of this kind.
    ///
    /// Measurements and discards have no inverse, but for counting purposes
    /// we leave them unchanged (a reversed circuit containing them will be
    /// rejected before counting matters).
    pub fn inverse(&self) -> ClassKind {
        match self {
            ClassKind::Unitary { name, inverted } => ClassKind::Unitary {
                name: name.clone(),
                inverted: !inverted && !name.is_self_inverse(),
            },
            ClassKind::Rot { name, inverted } => ClassKind::Rot {
                name: name.clone(),
                inverted: !inverted,
            },
            ClassKind::GPhase => ClassKind::GPhase,
            ClassKind::Init { value, classical } => ClassKind::Term {
                value: *value,
                classical: *classical,
            },
            ClassKind::Term { value, classical } => ClassKind::Init {
                value: *value,
                classical: *classical,
            },
            ClassKind::Meas => ClassKind::Meas,
            ClassKind::Discard { classical } => ClassKind::Discard {
                classical: *classical,
            },
            ClassKind::Classical { name, inverted } => ClassKind::Classical {
                name: name.clone(),
                inverted: !inverted,
            },
        }
    }
}

impl fmt::Display for ClassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassKind::Unitary { name, inverted } => {
                // Capitalize "not" to "Not" the way the paper's gate counts do.
                let base = match name {
                    GateName::X => "Not".to_string(),
                    other => other.to_string(),
                };
                write!(f, "\"{}{}\"", base, if *inverted { "*" } else { "" })
            }
            ClassKind::Rot { name, inverted } => {
                write!(f, "\"{}{}\"", name, if *inverted { "*" } else { "" })
            }
            ClassKind::GPhase => write!(f, "\"GPhase\""),
            ClassKind::Init { value, classical } => {
                write!(
                    f,
                    "\"{}Init{}\"",
                    if *classical { "C" } else { "" },
                    u8::from(*value)
                )
            }
            ClassKind::Term { value, classical } => {
                write!(
                    f,
                    "\"{}Term{}\"",
                    if *classical { "C" } else { "" },
                    u8::from(*value)
                )
            }
            ClassKind::Meas => write!(f, "\"Meas\""),
            ClassKind::Discard { classical } => {
                write!(f, "\"{}Discard\"", if *classical { "C" } else { "" })
            }
            ClassKind::Classical { name, inverted } => {
                write!(f, "\"C:{}{}\"", name, if *inverted { "*" } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_of_cnot_is_cnot() {
        let g = Gate::cnot(Wire(0), Wire(1));
        assert_eq!(g.inverse().unwrap(), g);
    }

    #[test]
    fn inverse_swaps_init_and_term() {
        let g = Gate::QInit {
            value: true,
            wire: Wire(5),
        };
        assert_eq!(
            g.inverse().unwrap(),
            Gate::QTerm {
                value: true,
                wire: Wire(5)
            }
        );
    }

    #[test]
    fn inverse_flips_rotation() {
        let g = Gate::QRot {
            name: Arc::from("exp(-i%Z)"),
            inverted: false,
            angle: 0.5,
            targets: vec![Wire(0)],
            controls: vec![],
        };
        match g.inverse().unwrap() {
            Gate::QRot { inverted, .. } => assert!(inverted),
            other => panic!("unexpected inverse: {other:?}"),
        }
    }

    #[test]
    fn measurement_is_not_reversible() {
        let g = Gate::QMeas { wire: Wire(0) };
        assert!(matches!(
            g.inverse(),
            Err(CircuitError::NotReversible { .. })
        ));
    }

    #[test]
    fn init_is_control_neutral() {
        let g = Gate::QInit {
            value: false,
            wire: Wire(0),
        };
        let controlled = g.with_controls(&[Control::positive(Wire(1))]).unwrap();
        assert_eq!(controlled, g);
    }

    #[test]
    fn measurement_rejects_controls() {
        let g = Gate::QMeas { wire: Wire(0) };
        assert!(g.with_controls(&[Control::positive(Wire(1))]).is_err());
    }

    #[test]
    fn with_controls_appends() {
        let g = Gate::unary(GateName::H, Wire(0));
        let g2 = g.with_controls(&[Control::negative(Wire(2))]).unwrap();
        assert_eq!(g2.controls(), &[Control::negative(Wire(2))]);
    }

    #[test]
    fn map_wires_renames_everything() {
        let g = Gate::toffoli(Wire(0), Wire(1), Wire(2));
        let mapped = g.map_wires(&mut |w| Wire(w.0 + 10));
        assert_eq!(mapped, Gate::toffoli(Wire(10), Wire(11), Wire(12)));
    }

    #[test]
    fn self_inverse_names() {
        assert!(GateName::X.is_self_inverse());
        assert!(GateName::H.is_self_inverse());
        assert!(!GateName::T.is_self_inverse());
        assert!(!GateName::W.is_self_inverse());
    }

    #[test]
    fn class_kind_display_matches_paper_style() {
        let k = ClassKind::Unitary {
            name: GateName::X,
            inverted: false,
        };
        assert_eq!(k.to_string(), "\"Not\"");
        let init = ClassKind::Init {
            value: false,
            classical: false,
        };
        assert_eq!(init.to_string(), "\"Init0\"");
        let term = ClassKind::Term {
            value: false,
            classical: false,
        };
        assert_eq!(term.to_string(), "\"Term0\"");
    }

    #[test]
    fn class_kind_inverse_roundtrip() {
        let k = ClassKind::Init {
            value: true,
            classical: false,
        };
        assert_eq!(k.inverse().inverse(), k);
        let u = ClassKind::Unitary {
            name: GateName::T,
            inverted: false,
        };
        assert_eq!(u.inverse().inverse(), u);
    }
}
