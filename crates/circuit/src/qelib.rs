//! The shared `qelib1.inc` gate table.
//!
//! Both directions of the OpenQASM bridge consume this module: the exporter
//! ([`crate::qasm`]) maps IR gates to mnemonics, and the `quipper-qasm`
//! parser maps mnemonics back to IR gates. Keeping the mnemonic ↔ IR
//! correspondence (and the angle formatting) in one table is what makes
//! `export ∘ parse` a byte-for-byte fixpoint on exporter output: neither
//! direction can drift without the other noticing.
//!
//! Each [`QelibDef`] records a mnemonic's arity — `params` angle
//! parameters, then `controls` control qubits, then `targets` target
//! qubits, in OpenQASM argument order — plus a [`QelibKind`] describing
//! the IR form. Rotation families carry a `scale` relating the IR
//! parameter to the OpenQASM angle: `ir_angle = qasm_angle · scale`
//! (equivalently `qasm_angle = ir_angle / scale`), exact in both
//! directions because every scale is a power of two.

use crate::gate::GateName;

/// How one qelib mnemonic corresponds to the circuit IR.
#[derive(Clone, PartialEq, Debug)]
pub enum QelibKind {
    /// A primitive unitary: `x`, `sdg`, `ccx`, `swap`, …
    Unitary {
        /// IR gate name.
        name: GateName,
        /// Whether the mnemonic is the *inverse* of the IR gate (`sdg`,
        /// `tdg`). Self-inverse gates always use `false`.
        inverted: bool,
    },
    /// A rotation family: `rz`/`crz` ↦ `exp(-i%Z)`, `u1`/`cu1` ↦ `R(%)`,
    /// `ry`/`cry` ↦ `Ry(%)`.
    Rot {
        /// IR rotation family name.
        family: &'static str,
        /// `ir_angle = qasm_angle · scale`.
        scale: f64,
    },
    /// `rx`/`crx`: at ±π/2 this is the IR's V = √X (up to global phase);
    /// other angles decompose as H·Rz·H.
    RxFamily,
    /// `u2(φ,λ) = u3(π/2,φ,λ)`.
    U2Family,
    /// `u3(θ,φ,λ)` (and the OpenQASM built-in `U`): exactly
    /// `R(φ) · Ry(θ) · R(λ)` in the IR's rotation families, applied
    /// right-to-left (λ first).
    U3Family,
    /// The identity (`id`, `u0`): no IR gate at all.
    Identity,
}

/// One mnemonic of the shared gate set.
#[derive(Clone, PartialEq, Debug)]
pub struct QelibDef {
    /// The OpenQASM mnemonic.
    pub mnemonic: &'static str,
    /// Number of angle parameters.
    pub params: usize,
    /// Number of leading control qubits.
    pub controls: usize,
    /// Number of trailing target qubits.
    pub targets: usize,
    /// The IR correspondence.
    pub kind: QelibKind,
}

const fn unitary(
    mnemonic: &'static str,
    controls: usize,
    targets: usize,
    name: GateName,
    inverted: bool,
) -> QelibDef {
    QelibDef {
        mnemonic,
        params: 0,
        controls,
        targets,
        kind: QelibKind::Unitary { name, inverted },
    }
}

const fn rot(
    mnemonic: &'static str,
    controls: usize,
    family: &'static str,
    scale: f64,
) -> QelibDef {
    QelibDef {
        mnemonic,
        params: 1,
        controls,
        targets: 1,
        kind: QelibKind::Rot { family, scale },
    }
}

/// IR rotation family of `rz`: `exp(-i%Z)` with parameter θ/2.
pub const FAMILY_RZ: &str = "exp(-i%Z)";
/// IR rotation family of `u1`/`cu1`: the phase gate `R(%)` = diag(1, e^{iθ}).
pub const FAMILY_R: &str = "R(%)";
/// IR rotation family of `ry`/`cry`.
pub const FAMILY_RY: &str = "Ry(%)";
/// IR rotation family `R(2pi/%)` (QFT-style power-of-two phases). The
/// exporter folds it to [`FAMILY_R`] before consulting the table; the
/// parser never produces it.
pub const FAMILY_R2PI: &str = "R(2pi/%)";

/// The `rx` angle that is the IR's V = √X (up to global phase).
pub const RX_V_ANGLE: f64 = std::f64::consts::FRAC_PI_2;

/// The shared gate set: standard `qelib1.inc` plus the controlled forms
/// the exporter emits (`cry`, `cswap` are in modern qelib revisions).
pub const TABLE: &[QelibDef] = &[
    unitary("x", 0, 1, GateName::X, false),
    unitary("y", 0, 1, GateName::Y, false),
    unitary("z", 0, 1, GateName::Z, false),
    unitary("h", 0, 1, GateName::H, false),
    unitary("s", 0, 1, GateName::S, false),
    unitary("sdg", 0, 1, GateName::S, true),
    unitary("t", 0, 1, GateName::T, false),
    unitary("tdg", 0, 1, GateName::T, true),
    unitary("cx", 1, 1, GateName::X, false),
    unitary("cy", 1, 1, GateName::Y, false),
    unitary("cz", 1, 1, GateName::Z, false),
    unitary("ch", 1, 1, GateName::H, false),
    unitary("ccx", 2, 1, GateName::X, false),
    unitary("swap", 0, 2, GateName::Swap, false),
    unitary("cswap", 1, 2, GateName::Swap, false),
    rot("rz", 0, FAMILY_RZ, 0.5),
    rot("crz", 1, FAMILY_RZ, 0.5),
    rot("ry", 0, FAMILY_RY, 1.0),
    rot("cry", 1, FAMILY_RY, 1.0),
    rot("u1", 0, FAMILY_R, 1.0),
    rot("cu1", 1, FAMILY_R, 1.0),
    QelibDef {
        mnemonic: "rx",
        params: 1,
        controls: 0,
        targets: 1,
        kind: QelibKind::RxFamily,
    },
    QelibDef {
        mnemonic: "crx",
        params: 1,
        controls: 1,
        targets: 1,
        kind: QelibKind::RxFamily,
    },
    QelibDef {
        mnemonic: "u2",
        params: 2,
        controls: 0,
        targets: 1,
        kind: QelibKind::U2Family,
    },
    QelibDef {
        mnemonic: "u3",
        params: 3,
        controls: 0,
        targets: 1,
        kind: QelibKind::U3Family,
    },
    QelibDef {
        mnemonic: "cu3",
        params: 3,
        controls: 1,
        targets: 1,
        kind: QelibKind::U3Family,
    },
    QelibDef {
        mnemonic: "id",
        params: 0,
        controls: 0,
        targets: 1,
        kind: QelibKind::Identity,
    },
    QelibDef {
        mnemonic: "u0",
        params: 1,
        controls: 0,
        targets: 1,
        kind: QelibKind::Identity,
    },
];

/// Looks up a mnemonic in the shared table.
pub fn find(mnemonic: &str) -> Option<&'static QelibDef> {
    TABLE.iter().find(|d| d.mnemonic == mnemonic)
}

/// Export direction: the mnemonic for a primitive unitary with the given
/// control count, or `None` if the gate set has no such form.
///
/// The `inverted` flag is normalized for self-inverse gates, so `H†`
/// resolves to `h`.
pub fn unitary_mnemonic(name: &GateName, inverted: bool, controls: usize) -> Option<&'static str> {
    let inv = inverted && !name.is_self_inverse();
    TABLE
        .iter()
        .find(|d| {
            d.controls == controls
                && matches!(&d.kind, QelibKind::Unitary { name: n, inverted: i }
                    if n == name && *i == inv)
        })
        .map(|d| d.mnemonic)
}

/// Export direction: the `(mnemonic, scale)` for a rotation family with
/// the given control count (`qasm_angle = ir_angle / scale`).
pub fn rotation_mnemonic(family: &str, controls: usize) -> Option<(&'static str, f64)> {
    TABLE.iter().find_map(|d| match &d.kind {
        QelibKind::Rot { family: f, scale } if *f == family && d.controls == controls => {
            Some((d.mnemonic, *scale))
        }
        _ => None,
    })
}

/// Formats an angle the way the exporter prints it: Rust's shortest
/// round-trip `f64` display, so `parse(format_angle(x)) == x` bit-exactly.
pub fn format_angle(angle: f64) -> String {
    format!("{angle}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<&str> = TABLE.iter().map(|d| d.mnemonic).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn export_lookups_agree_with_the_table() {
        assert_eq!(unitary_mnemonic(&GateName::X, false, 2), Some("ccx"));
        assert_eq!(unitary_mnemonic(&GateName::S, true, 0), Some("sdg"));
        // Self-inverse normalization: H† is still h.
        assert_eq!(unitary_mnemonic(&GateName::H, true, 0), Some("h"));
        assert_eq!(unitary_mnemonic(&GateName::S, true, 1), None);
        assert_eq!(rotation_mnemonic(FAMILY_RZ, 1), Some(("crz", 0.5)));
        assert_eq!(rotation_mnemonic(FAMILY_R, 0), Some(("u1", 1.0)));
        assert_eq!(rotation_mnemonic(FAMILY_RY, 2), None);
    }

    #[test]
    fn scales_are_exact_in_both_directions() {
        for def in TABLE {
            if let QelibKind::Rot { scale, .. } = def.kind {
                // Powers of two only: the qasm↔ir angle conversion must be
                // bit-exact or the round-trip fixpoint breaks.
                assert_eq!(scale.log2().fract(), 0.0, "{}", def.mnemonic);
            }
        }
    }

    #[test]
    fn angle_formatting_round_trips() {
        for x in [
            std::f64::consts::FRAC_PI_2,
            -std::f64::consts::FRAC_PI_2,
            0.7,
            -0.7,
            1e-9,
            12345.678,
        ] {
            assert_eq!(format_angle(x).parse::<f64>().unwrap(), x);
        }
    }
}
