//! Aggregate gate counting over hierarchical circuits.
//!
//! This reproduces Quipper's `-f gatecount` feature (paper §5.3.1, §5.4): a
//! gate count is computed *per boxed subcircuit* and aggregated up the
//! hierarchy by multiplication, so a circuit of trillions of gates — such as
//! the full Triangle Finding algorithm, 30,189,977,982,990 gates in the paper
//! — is counted in milliseconds without ever being expanded. Counts use
//! `u128` arithmetic, and a distinction is made between positive and negative
//! controls, printed `controls a+b` exactly as the paper shows.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

use crate::circuit::{BoxId, Circuit, CircuitDb};
use crate::gate::{ClassKind, Gate};
use crate::wire::{Wire, WireType};

/// The key by which gates are grouped when counting: the gate's structural
/// kind plus its numbers of positive and negative controls.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GateClass {
    /// The structural kind (name, inversion, init/term value …).
    pub kind: ClassKind,
    /// Number of positive controls.
    pub pos: u16,
    /// Number of negative controls.
    pub neg: u16,
}

impl GateClass {
    /// The class of the inverse gate.
    pub fn inverse(&self) -> GateClass {
        GateClass {
            kind: self.kind.inverse(),
            pos: self.pos,
            neg: self.neg,
        }
    }

    /// Whether the class is an initialization, termination, measurement or
    /// discard — the classes excluded from the paper's "Total" row in
    /// Section 6.
    pub fn is_housekeeping(&self) -> bool {
        matches!(
            self.kind,
            ClassKind::Init { .. }
                | ClassKind::Term { .. }
                | ClassKind::Meas
                | ClassKind::Discard { .. }
        )
    }
}

impl fmt::Display for GateClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        // The paper writes `controls a+b`, abbreviating `a+0` to `a`.
        match (self.pos, self.neg) {
            (0, 0) => Ok(()),
            (p, 0) => write!(f, ", controls {p}"),
            (p, n) => write!(f, ", controls {p}+{n}"),
        }
    }
}

/// Classifies a single gate, if it is counted (comments are not).
pub fn classify(gate: &Gate) -> Option<GateClass> {
    let (kind, controls): (ClassKind, &[crate::wire::Control]) = match gate {
        Gate::QGate {
            name,
            inverted,
            controls,
            ..
        } => (
            ClassKind::Unitary {
                name: name.clone(),
                inverted: *inverted && !name.is_self_inverse(),
            },
            controls,
        ),
        Gate::QRot {
            name,
            inverted,
            controls,
            ..
        } => (
            ClassKind::Rot {
                name: name.clone(),
                inverted: *inverted,
            },
            controls,
        ),
        Gate::GPhase { controls, .. } => (ClassKind::GPhase, controls),
        Gate::QInit { value, .. } => (
            ClassKind::Init {
                value: *value,
                classical: false,
            },
            &[],
        ),
        Gate::CInit { value, .. } => (
            ClassKind::Init {
                value: *value,
                classical: true,
            },
            &[],
        ),
        Gate::QTerm { value, .. } => (
            ClassKind::Term {
                value: *value,
                classical: false,
            },
            &[],
        ),
        Gate::CTerm { value, .. } => (
            ClassKind::Term {
                value: *value,
                classical: true,
            },
            &[],
        ),
        Gate::QMeas { .. } => (ClassKind::Meas, &[]),
        Gate::QDiscard { .. } => (ClassKind::Discard { classical: false }, &[]),
        Gate::CDiscard { .. } => (ClassKind::Discard { classical: true }, &[]),
        Gate::CGate { name, inverted, .. } => (
            ClassKind::Classical {
                name: name.clone(),
                inverted: *inverted,
            },
            &[],
        ),
        Gate::Subroutine { .. } | Gate::Comment { .. } => return None,
    };
    let pos = controls.iter().filter(|c| c.positive).count() as u16;
    let neg = controls.iter().filter(|c| !c.positive).count() as u16;
    Some(GateClass { kind, pos, neg })
}

/// An aggregated gate count.
///
/// Displayed in the paper's format:
///
/// ```text
/// Aggregated gate count:
/// 1636: "Init0"
/// 3484: "Not", controls 1
/// ...
/// Total gates: 9632
/// Inputs: 4
/// Outputs: 8
/// Qubits in circuit: 71
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct GateCount {
    /// Count per gate class.
    pub counts: BTreeMap<GateClass, u128>,
    /// Number of circuit inputs.
    pub inputs: usize,
    /// Number of circuit outputs.
    pub outputs: usize,
    /// Maximum number of simultaneously live quantum wires (the paper's
    /// "Qubits in circuit").
    pub qubits_in_circuit: u64,
    /// Maximum number of simultaneously live wires of any type.
    pub wires_in_circuit: u64,
}

impl GateCount {
    /// Total number of gates, including initializations, terminations and
    /// measurements (the "Total gates" line of §5.3.1).
    pub fn total(&self) -> u128 {
        self.counts.values().sum()
    }

    /// Total number of *logical* gates, excluding initialization, termination
    /// and measurement — the "Total" row of the Section 6 comparison table.
    pub fn total_logical(&self) -> u128 {
        self.counts
            .iter()
            .filter(|(c, _)| !c.is_housekeeping())
            .map(|(_, n)| n)
            .sum()
    }

    /// The count for one class, zero if absent.
    pub fn get(&self, class: &GateClass) -> u128 {
        self.counts.get(class).copied().unwrap_or(0)
    }

    /// Sums counts over all classes whose kind display name contains `name`
    /// and whose control signature is `(pos, neg)`.
    pub fn by_name(&self, name: &str, pos: u16, neg: u16) -> u128 {
        self.counts
            .iter()
            .filter(|(c, _)| c.pos == pos && c.neg == neg && c.kind.to_string().contains(name))
            .map(|(_, n)| n)
            .sum()
    }

    /// Sums counts over all classes whose kind display name contains `name`,
    /// regardless of controls.
    pub fn by_name_any_controls(&self, name: &str) -> u128 {
        self.counts
            .iter()
            .filter(|(c, _)| c.kind.to_string().contains(name))
            .map(|(_, n)| n)
            .sum()
    }

    /// Number of T and T† gates, with any controls — the resource that
    /// dominates fault-tolerant execution cost and that the phase-polynomial
    /// optimizer pass tries to reduce.
    pub fn t_count(&self) -> u128 {
        self.counts
            .iter()
            .filter(|(c, _)| {
                matches!(
                    c.kind,
                    ClassKind::Unitary {
                        name: crate::gate::GateName::T,
                        ..
                    }
                )
            })
            .map(|(_, n)| n)
            .sum()
    }

    /// Number of unitaries touching two or more wires: controlled gates plus
    /// uncontrolled multi-target primitives (Swap, W). Named gates of unknown
    /// arity are counted as single-target, so for exotic multi-target customs
    /// this is a lower bound.
    pub fn two_qubit(&self) -> u128 {
        self.counts
            .iter()
            .filter(|(c, _)| {
                let targets = match &c.kind {
                    ClassKind::Unitary { name, .. } => name.fixed_arity().unwrap_or(1),
                    ClassKind::Rot { .. } => 1,
                    ClassKind::GPhase => 0,
                    _ => return false,
                };
                targets + usize::from(c.pos) + usize::from(c.neg) >= 2
            })
            .map(|(_, n)| n)
            .sum()
    }
}

impl fmt::Display for GateCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Aggregated gate count:")?;
        for (class, n) in &self.counts {
            writeln!(f, "{n}: {class}")?;
        }
        writeln!(f, "Total gates: {}", self.total())?;
        writeln!(f, "Inputs: {}", self.inputs)?;
        writeln!(f, "Outputs: {}", self.outputs)?;
        write!(f, "Qubits in circuit: {}", self.qubits_in_circuit)
    }
}

/// Per-subroutine memoized counting data.
struct SubCount {
    counts: BTreeMap<GateClass, u128>,
    /// peak live wires (total, quantum) inside the subroutine.
    peak_total: u64,
    peak_quantum: u64,
    in_total: u64,
    in_quantum: u64,
    out_total: u64,
    out_quantum: u64,
}

struct Counter<'a> {
    db: &'a CircuitDb,
    memo: HashMap<BoxId, Rc<SubCount>>,
    visiting: HashSet<BoxId>,
}

impl<'a> Counter<'a> {
    fn sub_count(&mut self, id: BoxId) -> Rc<SubCount> {
        if let Some(c) = self.memo.get(&id) {
            return Rc::clone(c);
        }
        assert!(
            self.visiting.insert(id),
            "cyclic boxed-subroutine reference involving subroutine id {}",
            id.index()
        );
        let def = self
            .db
            .get(id)
            .expect("subroutine id out of range while counting");
        let sc = Rc::new(self.count_circuit(&def.circuit));
        self.visiting.remove(&id);
        self.memo.insert(id, Rc::clone(&sc));
        sc
    }

    fn count_circuit(&mut self, circuit: &Circuit) -> SubCount {
        let mut counts: BTreeMap<GateClass, u128> = BTreeMap::new();
        let in_total = circuit.inputs.len() as u64;
        let in_quantum = circuit
            .inputs
            .iter()
            .filter(|&&(_, t)| t == WireType::Quantum)
            .count() as u64;
        let mut cur_total = in_total as i128;
        let mut cur_quantum = in_quantum as i128;
        let mut peak_total = cur_total;
        let mut peak_quantum = cur_quantum;

        for gate in &circuit.gates {
            match gate {
                Gate::Subroutine {
                    id,
                    inverted,
                    repetitions,
                    ..
                } => {
                    let sc = self.sub_count(*id);
                    let (s_in_t, s_in_q, s_out_t, s_out_q) = if *inverted {
                        (sc.out_total, sc.out_quantum, sc.in_total, sc.in_quantum)
                    } else {
                        (sc.in_total, sc.in_quantum, sc.out_total, sc.out_quantum)
                    };
                    // While the subroutine runs, its inputs are replaced by
                    // its internal peak.
                    peak_total = peak_total.max(cur_total - s_in_t as i128 + sc.peak_total as i128);
                    peak_quantum =
                        peak_quantum.max(cur_quantum - s_in_q as i128 + sc.peak_quantum as i128);
                    let reps = u128::from(*repetitions);
                    for (class, n) in sc.counts.iter() {
                        let class = if *inverted {
                            class.inverse()
                        } else {
                            class.clone()
                        };
                        *counts.entry(class).or_insert(0) += n * reps;
                    }
                    cur_total += s_out_t as i128 - s_in_t as i128;
                    cur_quantum += s_out_q as i128 - s_in_q as i128;
                }
                Gate::Comment { .. } => {}
                _ => {
                    if let Some(class) = classify(gate) {
                        *counts.entry(class).or_insert(0) += 1;
                    }
                    match gate {
                        Gate::QInit { .. } => {
                            cur_total += 1;
                            cur_quantum += 1;
                        }
                        Gate::CInit { .. } | Gate::CGate { .. } => cur_total += 1,
                        Gate::QTerm { .. } | Gate::QDiscard { .. } => {
                            cur_total -= 1;
                            cur_quantum -= 1;
                        }
                        Gate::CTerm { .. } | Gate::CDiscard { .. } => cur_total -= 1,
                        Gate::QMeas { .. } => cur_quantum -= 1,
                        _ => {}
                    }
                    peak_total = peak_total.max(cur_total);
                    peak_quantum = peak_quantum.max(cur_quantum);
                }
            }
        }

        SubCount {
            counts,
            peak_total: peak_total.max(0) as u64,
            peak_quantum: peak_quantum.max(0) as u64,
            in_total,
            in_quantum,
            out_total: circuit.outputs.len() as u64,
            out_quantum: circuit
                .outputs
                .iter()
                .filter(|&&(_, t)| t == WireType::Quantum)
                .count() as u64,
        }
    }
}

/// Counts the gates of `circuit`, descending through boxed subcircuits in
/// `db` with memoization.
///
/// # Panics
///
/// Panics if the circuit references a subroutine id absent from `db`, or if
/// the subroutine references form a cycle. Both indicate a malformed circuit;
/// run [`validate`](crate::validate::validate) first for a `Result`-based
/// check.
pub fn count(db: &CircuitDb, circuit: &Circuit) -> GateCount {
    let mut counter = Counter {
        db,
        memo: HashMap::new(),
        visiting: HashSet::new(),
    };
    let sc = counter.count_circuit(circuit);
    GateCount {
        counts: sc.counts,
        inputs: circuit.inputs.len(),
        outputs: circuit.outputs.len(),
        qubits_in_circuit: sc.peak_quantum,
        wires_in_circuit: sc.peak_total,
    }
}

/// The peak number of live wires of a circuit (hierarchically).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Peak {
    /// Peak total wires.
    pub total: u64,
    /// Peak quantum wires.
    pub quantum: u64,
}

/// Computes the peak number of simultaneously live wires, descending through
/// boxed subcircuits.
///
/// # Panics
///
/// As for [`count`].
pub fn max_alive(db: &CircuitDb, circuit: &Circuit) -> Peak {
    let mut counter = Counter {
        db,
        memo: HashMap::new(),
        visiting: HashSet::new(),
    };
    let sc = counter.count_circuit(circuit);
    Peak {
        total: sc.peak_total,
        quantum: sc.peak_quantum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SubDef;
    use crate::gate::GateName;
    use crate::wire::Wire;

    fn q(w: u32) -> (Wire, WireType) {
        (Wire(w), WireType::Quantum)
    }

    fn not_class(pos: u16, neg: u16) -> GateClass {
        GateClass {
            kind: ClassKind::Unitary {
                name: GateName::X,
                inverted: false,
            },
            pos,
            neg,
        }
    }

    #[test]
    fn simple_counts() {
        let mut c = Circuit::with_inputs(vec![q(0), q(1)]);
        c.gates.push(Gate::unary(GateName::H, Wire(0)));
        c.gates.push(Gate::cnot(Wire(1), Wire(0)));
        c.gates.push(Gate::cnot(Wire(0), Wire(1)));
        let gc = count(&CircuitDb::new(), &c);
        assert_eq!(gc.total(), 3);
        assert_eq!(gc.get(&not_class(1, 0)), 2);
        assert_eq!(gc.qubits_in_circuit, 2);
    }

    #[test]
    fn counts_multiply_through_boxes() {
        let mut db = CircuitDb::new();
        // Inner subroutine: 3 CNOTs.
        let mut inner = Circuit::with_inputs(vec![q(0), q(1)]);
        for _ in 0..3 {
            inner.gates.push(Gate::cnot(Wire(0), Wire(1)));
        }
        let inner_id = db.insert(SubDef {
            name: "inner".into(),
            shape: "".into(),
            circuit: inner,
        });

        // Middle subroutine: calls inner 5 times via repetitions.
        let mut middle = Circuit::with_inputs(vec![q(0), q(1)]);
        middle.gates.push(Gate::Subroutine {
            id: inner_id,
            inverted: false,
            inputs: vec![Wire(0), Wire(1)],
            outputs: vec![Wire(0), Wire(1)],
            controls: vec![],
            repetitions: 5,
        });
        let middle_id = db.insert(SubDef {
            name: "middle".into(),
            shape: "".into(),
            circuit: middle,
        });

        // Main circuit: calls middle 1000 times.
        let mut main = Circuit::with_inputs(vec![q(0), q(1)]);
        main.gates.push(Gate::Subroutine {
            id: middle_id,
            inverted: false,
            inputs: vec![Wire(0), Wire(1)],
            outputs: vec![Wire(0), Wire(1)],
            controls: vec![],
            repetitions: 1000,
        });
        let gc = count(&db, &main);
        assert_eq!(gc.total(), 15_000);
        assert_eq!(gc.get(&not_class(1, 0)), 15_000);
    }

    #[test]
    fn huge_counts_do_not_overflow() {
        // Chain n levels of boxes, each calling the previous 10 times:
        // 10^25 gates, far beyond u64.
        let mut db = CircuitDb::new();
        let mut base = Circuit::with_inputs(vec![q(0)]);
        base.gates.push(Gate::unary(GateName::H, Wire(0)));
        let mut prev = db.insert(SubDef {
            name: "lvl0".into(),
            shape: "".into(),
            circuit: base,
        });
        for lvl in 1..=25 {
            let mut c = Circuit::with_inputs(vec![q(0)]);
            c.gates.push(Gate::Subroutine {
                id: prev,
                inverted: false,
                inputs: vec![Wire(0)],
                outputs: vec![Wire(0)],
                controls: vec![],
                repetitions: 10,
            });
            prev = db.insert(SubDef {
                name: format!("lvl{lvl}"),
                shape: "".into(),
                circuit: c,
            });
        }
        let def = db.get(prev).unwrap().circuit.clone();
        let gc = count(&db, &def);
        assert_eq!(gc.total(), 10u128.pow(25));
    }

    #[test]
    fn inverted_subroutine_swaps_init_and_term() {
        let mut db = CircuitDb::new();
        // Subroutine allocating an ancilla: 1 init, 1 cnot, 1 term.
        let mut body = Circuit::with_inputs(vec![q(0)]);
        body.gates.push(Gate::QInit {
            value: false,
            wire: Wire(1),
        });
        body.gates.push(Gate::cnot(Wire(1), Wire(0)));
        body.gates.push(Gate::cnot(Wire(1), Wire(0)));
        body.gates.push(Gate::QTerm {
            value: false,
            wire: Wire(1),
        });
        body.recompute_wire_bound();
        let id = db.insert(SubDef {
            name: "s".into(),
            shape: "".into(),
            circuit: body,
        });

        let mut main = Circuit::with_inputs(vec![q(0)]);
        main.gates.push(Gate::Subroutine {
            id,
            inverted: true,
            inputs: vec![Wire(0)],
            outputs: vec![Wire(0)],
            controls: vec![],
            repetitions: 1,
        });
        let gc = count(&db, &main);
        let init0 = GateClass {
            kind: ClassKind::Init {
                value: false,
                classical: false,
            },
            pos: 0,
            neg: 0,
        };
        let term0 = GateClass {
            kind: ClassKind::Term {
                value: false,
                classical: false,
            },
            pos: 0,
            neg: 0,
        };
        assert_eq!(gc.get(&init0), 1);
        assert_eq!(gc.get(&term0), 1);
        assert_eq!(gc.qubits_in_circuit, 2);
    }

    #[test]
    fn peak_width_accounts_for_subroutine_ancillas() {
        let mut db = CircuitDb::new();
        // A subroutine with 1 input that internally allocates 4 ancillas.
        let mut body = Circuit::with_inputs(vec![q(0)]);
        for i in 1..=4 {
            body.gates.push(Gate::QInit {
                value: false,
                wire: Wire(i),
            });
        }
        for i in (1..=4).rev() {
            body.gates.push(Gate::QTerm {
                value: false,
                wire: Wire(i),
            });
        }
        body.recompute_wire_bound();
        let id = db.insert(SubDef {
            name: "anc".into(),
            shape: "".into(),
            circuit: body,
        });

        // Main: 3 live wires, one of which enters the subroutine.
        let mut main = Circuit::with_inputs(vec![q(0), q(1), q(2)]);
        main.gates.push(Gate::Subroutine {
            id,
            inverted: false,
            inputs: vec![Wire(0)],
            outputs: vec![Wire(0)],
            controls: vec![],
            repetitions: 1,
        });
        let gc = count(&db, &main);
        // 2 bystanders + (1 input + 4 ancillas) = 7.
        assert_eq!(gc.qubits_in_circuit, 7);
    }

    #[test]
    fn display_matches_paper_format() {
        let class = not_class(1, 1);
        assert_eq!(class.to_string(), "\"Not\", controls 1+1");
        assert_eq!(not_class(2, 0).to_string(), "\"Not\", controls 2");
    }

    #[test]
    fn total_logical_excludes_housekeeping() {
        let mut c = Circuit::with_inputs(vec![q(0)]);
        c.gates.push(Gate::QInit {
            value: false,
            wire: Wire(1),
        });
        c.gates.push(Gate::cnot(Wire(1), Wire(0)));
        c.gates.push(Gate::QTerm {
            value: false,
            wire: Wire(1),
        });
        c.recompute_wire_bound();
        let gc = count(&CircuitDb::new(), &c);
        assert_eq!(gc.total(), 3);
        assert_eq!(gc.total_logical(), 1);
    }
}

// ---------------------------------------------------------------------
// Critical-path depth
// ---------------------------------------------------------------------

/// Computes the circuit's *depth* — the length of the critical path when
/// gates on disjoint wires run in parallel — descending through boxed
/// subcircuits with memoization.
///
/// Subroutine calls are treated as synchronization barriers across their
/// own wires: every input wire of a call advances by the body's internal
/// depth from the latest input time (a standard, slightly conservative
/// approximation that keeps the computation linear in the hierarchy size).
///
/// Comments contribute nothing; initializations start a wire at the
/// current global minimum of zero.
///
/// # Panics
///
/// As for [`count`]: unknown subroutine ids or cyclic references panic.
pub fn depth(db: &CircuitDb, circuit: &Circuit) -> u128 {
    let mut memo: HashMap<BoxId, u128> = HashMap::new();
    depth_impl(db, circuit, &mut memo)
}

fn sub_depth(db: &CircuitDb, id: BoxId, memo: &mut HashMap<BoxId, u128>) -> u128 {
    if let Some(&d) = memo.get(&id) {
        return d;
    }
    let def = db
        .get(id)
        .expect("subroutine id out of range while computing depth");
    let d = depth_impl(db, &def.circuit, memo);
    memo.insert(id, d);
    d
}

fn depth_impl(db: &CircuitDb, circuit: &Circuit, memo: &mut HashMap<BoxId, u128>) -> u128 {
    // Per-wire completion time.
    let mut time: HashMap<Wire, u128> = HashMap::new();
    for &(w, _) in &circuit.inputs {
        time.insert(w, 0);
    }
    let mut max_time = 0u128;
    for gate in &circuit.gates {
        match gate {
            Gate::Comment { .. } => {}
            Gate::Subroutine {
                id,
                inputs,
                outputs,
                controls,
                repetitions,
                ..
            } => {
                let body = sub_depth(db, *id, memo);
                let start = inputs
                    .iter()
                    .chain(controls.iter().map(|c| &c.wire))
                    .map(|w| time.get(w).copied().unwrap_or(0))
                    .max()
                    .unwrap_or(0);
                let finish = start + body * u128::from(*repetitions);
                for w in inputs {
                    time.remove(w);
                }
                for c in controls {
                    time.insert(c.wire, finish);
                }
                for &w in outputs {
                    time.insert(w, finish);
                }
                max_time = max_time.max(finish);
            }
            g => {
                let mut start = 0u128;
                g.for_each_wire(&mut |w| {
                    start = start.max(time.get(&w).copied().unwrap_or(0));
                });
                let finish = start + 1;
                match g {
                    Gate::QTerm { wire, .. }
                    | Gate::CTerm { wire, .. }
                    | Gate::QDiscard { wire }
                    | Gate::CDiscard { wire } => {
                        time.remove(wire);
                    }
                    _ => {
                        g.for_each_wire(&mut |w| {
                            time.insert(w, finish);
                        });
                    }
                }
                max_time = max_time.max(finish);
            }
        }
    }
    max_time
}

#[cfg(test)]
mod depth_tests {
    use super::*;
    use crate::circuit::SubDef;
    use crate::gate::GateName;
    use crate::wire::{Wire, WireType};

    fn q(w: u32) -> (Wire, WireType) {
        (Wire(w), WireType::Quantum)
    }

    #[test]
    fn parallel_gates_share_a_layer() {
        let mut c = Circuit::with_inputs(vec![q(0), q(1)]);
        c.gates.push(Gate::unary(GateName::H, Wire(0)));
        c.gates.push(Gate::unary(GateName::H, Wire(1))); // parallel
        c.gates.push(Gate::cnot(Wire(1), Wire(0))); // waits for both
        assert_eq!(depth(&CircuitDb::new(), &c), 2);
    }

    #[test]
    fn sequential_gates_stack() {
        let mut c = Circuit::with_inputs(vec![q(0)]);
        for _ in 0..5 {
            c.gates.push(Gate::unary(GateName::T, Wire(0)));
        }
        assert_eq!(depth(&CircuitDb::new(), &c), 5);
    }

    #[test]
    fn repeated_boxes_multiply_depth() {
        let mut db = CircuitDb::new();
        let mut body = Circuit::with_inputs(vec![q(0)]);
        body.gates.push(Gate::unary(GateName::H, Wire(0)));
        body.gates.push(Gate::unary(GateName::T, Wire(0)));
        let id = db.insert(SubDef {
            name: "b".into(),
            shape: "".into(),
            circuit: body,
        });
        let mut main = Circuit::with_inputs(vec![q(0), q(1)]);
        main.gates.push(Gate::Subroutine {
            id,
            inverted: false,
            inputs: vec![Wire(0)],
            outputs: vec![Wire(0)],
            controls: vec![],
            repetitions: 1_000_000,
        });
        // Wire 1 is untouched: depth comes from the repeated box alone.
        assert_eq!(depth(&db, &main), 2_000_000);
    }

    #[test]
    fn controls_synchronize_with_targets() {
        let mut c = Circuit::with_inputs(vec![q(0), q(1)]);
        for _ in 0..3 {
            c.gates.push(Gate::unary(GateName::T, Wire(0)));
        }
        // The CNOT must wait for wire 0's three T gates.
        c.gates.push(Gate::cnot(Wire(1), Wire(0)));
        c.gates.push(Gate::unary(GateName::H, Wire(1)));
        assert_eq!(depth(&CircuitDb::new(), &c), 5);
    }

    #[test]
    fn t_count_and_two_qubit_count() {
        let mut c = Circuit::with_inputs(vec![q(0), q(1), q(2)]);
        c.gates.push(Gate::unary(GateName::T, Wire(0)));
        c.gates.push(Gate::QGate {
            name: GateName::T,
            inverted: true,
            targets: vec![Wire(1)],
            controls: vec![],
        });
        c.gates.push(Gate::unary(GateName::H, Wire(2)));
        c.gates.push(Gate::cnot(Wire(1), Wire(0)));
        c.gates.push(Gate::toffoli(Wire(2), Wire(0), Wire(1)));
        let gc = count(&CircuitDb::new(), &c);
        // T and T† both contribute to the T-count; H does not.
        assert_eq!(gc.t_count(), 2);
        // The CNOT and the Toffoli each touch at least two wires.
        assert_eq!(gc.two_qubit(), 2);
    }
}
