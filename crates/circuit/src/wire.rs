//! Wires and controls.
//!
//! A [`Wire`] is an index into the wire space of a [`Circuit`](crate::Circuit):
//! it names a qubit or classical bit *at a particular point in time*. Wires
//! are created by initialization gates (or by being circuit inputs) and
//! destroyed by termination, discard, or by being consumed as subroutine
//! inputs. The same underlying physical qubit may be represented by several
//! wires over the lifetime of a circuit — the mapping of wires to physical
//! qubits is left to a later "register allocation" phase, exactly as the
//! paper's §4.2.1 prescribes for ancilla pooling.

use std::fmt;

/// A wire identifier inside a circuit.
///
/// `Wire` is a plain index; it carries no type information. The wire's type
/// ([`WireType::Quantum`] or [`WireType::Classical`]) is tracked by the
/// circuit's arity lists and checked by
/// [`validate`](crate::validate::validate).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Wire(pub u32);

impl Wire {
    /// Returns the raw index of this wire.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Wire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The type of a wire: a qubit or a classical bit.
///
/// Quipper's extended circuit model allows classical and quantum data to
/// co-exist in one circuit (paper §4.2.3). Measurement turns a `Quantum` wire
/// into a `Classical` one.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum WireType {
    /// A quantum wire (a qubit).
    Quantum,
    /// A classical wire (a bit).
    Classical,
}

impl fmt::Display for WireType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireType::Quantum => write!(f, "Qubit"),
            WireType::Classical => write!(f, "Bit"),
        }
    }
}

/// A control on a gate: a wire together with a polarity.
///
/// Positive controls ("filled dots" in circuit diagrams) fire when the wire is
/// in state |1⟩ (or the classical bit is 1); negative controls ("empty dots")
/// fire on |0⟩. Controls may be quantum or classical wires — a quantum gate
/// with a classical control is a classically-controlled gate.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Control {
    /// The controlling wire.
    pub wire: Wire,
    /// `true` for a positive control (fires on 1), `false` for negative.
    pub positive: bool,
}

impl Control {
    /// A positive control on `wire`.
    pub fn positive(wire: Wire) -> Self {
        Control {
            wire,
            positive: true,
        }
    }

    /// A negative control on `wire`.
    pub fn negative(wire: Wire) -> Self {
        Control {
            wire,
            positive: false,
        }
    }
}

impl From<Wire> for Control {
    fn from(wire: Wire) -> Self {
        Control::positive(wire)
    }
}

impl fmt::Display for Control {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.positive { '+' } else { '-' }, self.wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_display_uses_polarity_sign() {
        assert_eq!(Control::positive(Wire(3)).to_string(), "+3");
        assert_eq!(Control::negative(Wire(0)).to_string(), "-0");
    }

    #[test]
    fn wire_from_conversion_is_positive() {
        let c: Control = Wire(7).into();
        assert!(c.positive);
        assert_eq!(c.wire, Wire(7));
    }

    #[test]
    fn wire_types_display_like_quipper() {
        assert_eq!(WireType::Quantum.to_string(), "Qubit");
        assert_eq!(WireType::Classical.to_string(), "Bit");
    }
}
