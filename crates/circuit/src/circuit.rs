//! Circuits, boxed subcircuit databases, and splicing.

use std::collections::HashMap;

use crate::error::CircuitError;
use crate::gate::Gate;
use crate::validate;
use crate::wire::{Wire, WireType};

/// An identifier of a boxed subcircuit inside a [`CircuitDb`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BoxId(pub u32);

impl BoxId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The definition of a boxed subcircuit: a name plus its body.
///
/// The `shape` string distinguishes instantiations of the same logical
/// subroutine at different parameter values (e.g. `"o8"` at 4 bits vs 31
/// bits); Quipper keys boxes on name and shape in the same way.
#[derive(Clone, PartialEq, Debug)]
pub struct SubDef {
    /// Human-readable subroutine name (`"o8"`, `"a6"` …).
    pub name: String,
    /// Shape key distinguishing different monomorphic instances.
    pub shape: String,
    /// The body.
    pub circuit: Circuit,
}

/// A store of boxed subcircuit definitions shared by a circuit hierarchy.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CircuitDb {
    subs: Vec<SubDef>,
    by_key: HashMap<(String, String), BoxId>,
}

impl CircuitDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of definitions in the database.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether the database contains no definitions.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Looks up a definition by name and shape key.
    pub fn find(&self, name: &str, shape: &str) -> Option<BoxId> {
        self.by_key
            .get(&(name.to_string(), shape.to_string()))
            .copied()
    }

    /// Inserts a definition, returning its id.
    ///
    /// If a definition with the same name and shape already exists it is
    /// returned unchanged (boxing is idempotent, so that a subroutine used in
    /// many places is stored once — this is the whole point of hierarchical
    /// circuits).
    pub fn insert(&mut self, def: SubDef) -> BoxId {
        if let Some(id) = self.find(&def.name, &def.shape) {
            return id;
        }
        let id = BoxId(self.subs.len() as u32);
        self.by_key
            .insert((def.name.clone(), def.shape.clone()), id);
        self.subs.push(def);
        id
    }

    /// Fetches a definition.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownSubroutine`] if `id` is out of range.
    pub fn get(&self, id: BoxId) -> Result<&SubDef, CircuitError> {
        self.subs
            .get(id.index())
            .ok_or(CircuitError::UnknownSubroutine { id: id.index() })
    }

    /// Iterates over all `(id, definition)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BoxId, &SubDef)> {
        self.subs
            .iter()
            .enumerate()
            .map(|(i, d)| (BoxId(i as u32), d))
    }
}

/// A (possibly non-flat) circuit: a typed input arity, a gate list, and a
/// typed output arity.
///
/// Wire identifiers are local to the circuit; `wire_bound` is an exclusive
/// upper bound on all wire ids used, so fresh wires can be allocated when
/// splicing. Subroutine calls in `gates` refer to a [`CircuitDb`] kept
/// alongside (see [`BCircuit`]).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Circuit {
    /// Input wires with their types, in order.
    pub inputs: Vec<(Wire, WireType)>,
    /// The gate list.
    pub gates: Vec<Gate>,
    /// Output wires with their types, in order.
    pub outputs: Vec<(Wire, WireType)>,
    /// Exclusive upper bound on wire ids used anywhere in the circuit.
    pub wire_bound: u32,
}

impl Circuit {
    /// Creates a circuit with the given inputs, no gates, and outputs equal
    /// to the inputs.
    pub fn with_inputs(inputs: Vec<(Wire, WireType)>) -> Self {
        let wire_bound = inputs.iter().map(|(w, _)| w.0 + 1).max().unwrap_or(0);
        Circuit {
            outputs: inputs.clone(),
            inputs,
            gates: Vec::new(),
            wire_bound,
        }
    }

    /// The input types in order.
    pub fn input_types(&self) -> Vec<WireType> {
        self.inputs.iter().map(|&(_, t)| t).collect()
    }

    /// The output types in order.
    pub fn output_types(&self) -> Vec<WireType> {
        self.outputs.iter().map(|&(_, t)| t).collect()
    }

    /// Validates the circuit against a subroutine database.
    ///
    /// # Errors
    ///
    /// See [`validate::validate`].
    pub fn validate(&self, db: &CircuitDb) -> Result<validate::Report, CircuitError> {
        validate::validate(db, self)
    }

    /// Validates a circuit that contains no subroutine calls.
    ///
    /// # Errors
    ///
    /// See [`validate::validate`].
    pub fn validate_standalone(&self) -> Result<validate::Report, CircuitError> {
        validate::validate(&CircuitDb::new(), self)
    }

    /// Recomputes `wire_bound` from the actual wires used. Useful after
    /// hand-editing a circuit.
    pub fn recompute_wire_bound(&mut self) {
        let mut bound = 0;
        for (w, _) in self.inputs.iter().chain(self.outputs.iter()) {
            bound = bound.max(w.0 + 1);
        }
        for g in &self.gates {
            g.for_each_wire(&mut |w| bound = bound.max(w.0 + 1));
        }
        self.wire_bound = bound;
    }
}

/// A circuit paired with the database of boxed subcircuits it references —
/// Quipper's "hierarchical circuit".
#[derive(Clone, PartialEq, Debug, Default)]
pub struct BCircuit {
    /// The subroutine database.
    pub db: CircuitDb,
    /// The main circuit.
    pub main: Circuit,
}

impl BCircuit {
    /// Creates a boxed circuit from parts.
    pub fn new(db: CircuitDb, main: Circuit) -> Self {
        BCircuit { db, main }
    }

    /// Validates the main circuit and every subroutine body.
    ///
    /// # Errors
    ///
    /// Returns the first validation error found.
    pub fn validate(&self) -> Result<validate::Report, CircuitError> {
        for (_, def) in self.db.iter() {
            def.circuit.validate(&self.db)?;
        }
        self.main.validate(&self.db)
    }

    /// Aggregate gate count of the main circuit, descending through boxes.
    pub fn gate_count(&self) -> crate::count::GateCount {
        crate::count::count(&self.db, &self.main)
    }

    /// Stable structural fingerprint of this circuit (main + reachable
    /// subroutine bodies); see [`crate::fingerprint::fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        crate::fingerprint::fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateName;

    fn q(w: u32) -> (Wire, WireType) {
        (Wire(w), WireType::Quantum)
    }

    #[test]
    fn with_inputs_sets_bound_and_outputs() {
        let c = Circuit::with_inputs(vec![q(0), q(3)]);
        assert_eq!(c.wire_bound, 4);
        assert_eq!(c.outputs, c.inputs);
    }

    #[test]
    fn db_insert_is_idempotent_on_key() {
        let mut db = CircuitDb::new();
        let body = Circuit::with_inputs(vec![q(0)]);
        let id1 = db.insert(SubDef {
            name: "f".into(),
            shape: "1".into(),
            circuit: body.clone(),
        });
        let id2 = db.insert(SubDef {
            name: "f".into(),
            shape: "1".into(),
            circuit: body.clone(),
        });
        let id3 = db.insert(SubDef {
            name: "f".into(),
            shape: "2".into(),
            circuit: body,
        });
        assert_eq!(id1, id2);
        assert_ne!(id1, id3);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn unknown_subroutine_is_an_error() {
        let db = CircuitDb::new();
        assert!(db.get(BoxId(0)).is_err());
    }

    #[test]
    fn recompute_wire_bound_sees_gate_wires() {
        let mut c = Circuit::with_inputs(vec![q(0)]);
        c.gates.push(Gate::unary(GateName::H, Wire(9)));
        c.recompute_wire_bound();
        assert_eq!(c.wire_bound, 10);
    }
}
