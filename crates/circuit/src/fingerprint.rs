//! Stable structural fingerprints of circuits.
//!
//! The execution engine (`quipper-exec`) caches compiled plans keyed by
//! circuit identity. Since the common case is a *freshly rebuilt* circuit
//! with the same structure (shot loops rebuild Grover/BWT circuits per run),
//! identity must be structural, not pointer-based: two circuits with the
//! same inputs, gate list, outputs, and (reachable) subroutine bodies get
//! the same fingerprint, regardless of when or where they were built.
//!
//! The hash is FNV-1a (64-bit) over a canonical serialization of the
//! structure. It is deterministic across processes and platforms — unlike
//! `DefaultHasher`, which Rust does not guarantee stable — so fingerprints
//! can also be logged and compared across runs.

use crate::circuit::{BCircuit, Circuit};
use crate::gate::{Gate, GateName};
use crate::wire::{Control, Wire, WireType};

/// An FNV-1a accumulator over structural tokens.
#[derive(Clone, Debug)]
pub struct Fingerprinter {
    h: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter { h: FNV_OFFSET }
    }
}

impl Fingerprinter {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.h
    }

    fn byte(&mut self, b: u8) {
        self.h ^= u64::from(b);
        self.h = self.h.wrapping_mul(FNV_PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn bool(&mut self, v: bool) {
        self.byte(u8::from(v));
    }

    fn f64(&mut self, v: f64) {
        // Bit pattern, so that e.g. 0.0 and -0.0 are distinct and NaN
        // payloads hash consistently.
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }

    fn wire(&mut self, w: Wire) {
        self.u32(w.0);
    }

    fn wire_type(&mut self, t: WireType) {
        self.byte(match t {
            WireType::Quantum => 0,
            WireType::Classical => 1,
        });
    }

    fn controls(&mut self, cs: &[Control]) {
        self.u64(cs.len() as u64);
        for c in cs {
            self.wire(c.wire);
            self.bool(c.positive);
        }
    }

    fn wires(&mut self, ws: &[Wire]) {
        self.u64(ws.len() as u64);
        for &w in ws {
            self.wire(w);
        }
    }

    fn gate_name(&mut self, n: &GateName) {
        match n {
            GateName::X => self.byte(0),
            GateName::Y => self.byte(1),
            GateName::Z => self.byte(2),
            GateName::H => self.byte(3),
            GateName::S => self.byte(4),
            GateName::T => self.byte(5),
            GateName::V => self.byte(6),
            GateName::W => self.byte(7),
            GateName::Swap => self.byte(8),
            GateName::Named(s) => {
                self.byte(9);
                self.str(s);
            }
        }
    }

    fn gate(&mut self, g: &Gate) {
        match g {
            Gate::QGate {
                name,
                inverted,
                targets,
                controls,
            } => {
                self.byte(1);
                self.gate_name(name);
                self.bool(*inverted);
                self.wires(targets);
                self.controls(controls);
            }
            Gate::QRot {
                name,
                inverted,
                angle,
                targets,
                controls,
            } => {
                self.byte(2);
                self.str(name);
                self.bool(*inverted);
                self.f64(*angle);
                self.wires(targets);
                self.controls(controls);
            }
            Gate::GPhase { angle, controls } => {
                self.byte(3);
                self.f64(*angle);
                self.controls(controls);
            }
            Gate::QInit { value, wire } => {
                self.byte(4);
                self.bool(*value);
                self.wire(*wire);
            }
            Gate::CInit { value, wire } => {
                self.byte(5);
                self.bool(*value);
                self.wire(*wire);
            }
            Gate::QTerm { value, wire } => {
                self.byte(6);
                self.bool(*value);
                self.wire(*wire);
            }
            Gate::CTerm { value, wire } => {
                self.byte(7);
                self.bool(*value);
                self.wire(*wire);
            }
            Gate::QMeas { wire } => {
                self.byte(8);
                self.wire(*wire);
            }
            Gate::QDiscard { wire } => {
                self.byte(9);
                self.wire(*wire);
            }
            Gate::CDiscard { wire } => {
                self.byte(10);
                self.wire(*wire);
            }
            Gate::CGate {
                name,
                inverted,
                target,
                inputs,
            } => {
                self.byte(11);
                self.str(name);
                self.bool(*inverted);
                self.wire(*target);
                self.wires(inputs);
            }
            Gate::Subroutine {
                id,
                inverted,
                inputs,
                outputs,
                controls,
                repetitions,
            } => {
                self.byte(12);
                self.u32(id.0);
                self.bool(*inverted);
                self.wires(inputs);
                self.wires(outputs);
                self.controls(controls);
                self.u64(*repetitions);
            }
            Gate::Comment { text, labels } => {
                self.byte(13);
                self.str(text);
                self.u64(labels.len() as u64);
                for (w, l) in labels {
                    self.wire(*w);
                    self.str(l);
                }
            }
        }
    }

    fn arity(&mut self, arity: &[(Wire, WireType)]) {
        self.u64(arity.len() as u64);
        for &(w, t) in arity {
            self.wire(w);
            self.wire_type(t);
        }
    }

    /// Feeds one circuit (inputs, gates, outputs) into the accumulator.
    pub fn circuit(&mut self, c: &Circuit) {
        self.arity(&c.inputs);
        self.u64(c.gates.len() as u64);
        for g in &c.gates {
            self.gate(g);
        }
        self.arity(&c.outputs);
    }
}

/// The structural fingerprint of a flat circuit (no subroutine database).
pub fn circuit_fingerprint(c: &Circuit) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.circuit(c);
    fp.finish()
}

/// The structural fingerprint of a hierarchical circuit: the main circuit
/// plus every subroutine definition (name, shape, body) in database order.
///
/// Subroutine *calls* hash their [`BoxId`](crate::BoxId), which is an index
/// into the database; hashing the database contents alongside makes the
/// fingerprint independent of how ids were assigned in unrelated builds
/// while still distinguishing different bodies behind the same id.
pub fn fingerprint(bc: &BCircuit) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.u64(bc.db.len() as u64);
    for (_, def) in bc.db.iter() {
        fp.str(&def.name);
        fp.str(&def.shape);
        fp.circuit(&def.circuit);
    }
    fp.circuit(&bc.main);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{CircuitDb, SubDef};

    fn q(w: u32) -> (Wire, WireType) {
        (Wire(w), WireType::Quantum)
    }

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::with_inputs(vec![q(0), q(1)]);
        c.gates.push(Gate::unary(GateName::H, Wire(0)));
        c.gates.push(Gate::cnot(Wire(1), Wire(0)));
        c
    }

    #[test]
    fn equal_structure_equal_fingerprint() {
        // Two independently built, structurally identical circuits agree.
        assert_eq!(
            circuit_fingerprint(&sample_circuit()),
            circuit_fingerprint(&sample_circuit())
        );
    }

    #[test]
    fn gate_change_changes_fingerprint() {
        let a = sample_circuit();
        let mut b = sample_circuit();
        b.gates[0] = Gate::unary(GateName::X, Wire(0));
        assert_ne!(circuit_fingerprint(&a), circuit_fingerprint(&b));
    }

    #[test]
    fn gate_order_matters() {
        let a = sample_circuit();
        let mut b = sample_circuit();
        b.gates.swap(0, 1);
        assert_ne!(circuit_fingerprint(&a), circuit_fingerprint(&b));
    }

    #[test]
    fn inverted_flag_and_angle_matter() {
        let rot = |angle: f64, inverted: bool| {
            let mut c = Circuit::with_inputs(vec![q(0)]);
            c.gates.push(Gate::QRot {
                name: "R(%)".into(),
                inverted,
                angle,
                targets: vec![Wire(0)],
                controls: vec![],
            });
            circuit_fingerprint(&c)
        };
        assert_ne!(rot(0.5, false), rot(0.5, true));
        assert_ne!(rot(0.5, false), rot(0.25, false));
        assert_eq!(rot(0.5, false), rot(0.5, false));
    }

    #[test]
    fn subroutine_bodies_feed_the_bcircuit_fingerprint() {
        let build = |flip: bool| {
            let mut db = CircuitDb::new();
            let mut body = Circuit::with_inputs(vec![q(0)]);
            body.gates.push(Gate::unary(
                if flip { GateName::X } else { GateName::Z },
                Wire(0),
            ));
            let id = db.insert(SubDef {
                name: "f".into(),
                shape: "".into(),
                circuit: body,
            });
            let mut main = Circuit::with_inputs(vec![q(0)]);
            main.gates.push(Gate::Subroutine {
                id,
                inverted: false,
                inputs: vec![Wire(0)],
                outputs: vec![Wire(0)],
                controls: vec![],
                repetitions: 1,
            });
            BCircuit::new(db, main)
        };
        // Same call sites, different body behind the id → different prints.
        assert_ne!(fingerprint(&build(true)), fingerprint(&build(false)));
        assert_eq!(fingerprint(&build(true)), fingerprint(&build(true)));
    }

    #[test]
    fn fingerprint_matches_fnv_reference() {
        // The accumulator is plain FNV-1a over the token stream; check it
        // against an independently computed FNV-1a so the construction can't
        // silently drift (cached plans would stop matching across versions).
        let mut fp = Fingerprinter::new();
        fp.str("quipper");
        let mut want: u64 = 0xcbf2_9ce4_8422_2325;
        let tokens: Vec<u8> = 7u64
            .to_le_bytes()
            .iter()
            .copied()
            .chain("quipper".bytes())
            .collect();
        for b in tokens {
            want ^= u64::from(b);
            want = want.wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(fp.finish(), want);
    }
}
