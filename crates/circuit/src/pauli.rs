//! Pauli-string algebra with Clifford conjugation, and phase-polynomial
//! region extraction — the algebraic core of the Pauli-flow static analysis.
//!
//! [`commute.rs`](crate::commute) answers "do these two gates provably
//! commute?" structurally, wire by wire. This module answers the stronger
//! algebraic questions the lint and optimizer passes need:
//!
//! * **Conjugation**: given a Pauli string `P` and a gate `G`, what is
//!   `G P G†`? Exact for the Clifford gates {X, Y, Z, H, S, S†, CNOT
//!   (positive or negative control), CZ, Swap}, for any gate that does not
//!   touch `P`'s support, and for Z-diagonal gates against Z/I strings.
//!   Everything else returns `None` — sound, not complete, the same trade
//!   `commute.rs` makes.
//! * **Commutation**: two Pauli strings commute iff they anticommute on an
//!   even number of wires (the symplectic form over GF(2)).
//! * **Phase polynomials**: over a region built from {X, CNOT, Swap,
//!   Z-phase} gates, the region's unitary factors as `L ∘ D` where `L` is an
//!   affine-linear reversible map and `D` applies a phase `f_i(⟨m_i,x⟩⊕c_i)`
//!   per phase gate. Terms with the *same* parity function `(m, c)` and the
//!   same gate family compose by adding their exponents, which is what lets
//!   `opt.phasepoly` merge distant T gates and the lint flag identity terms
//!   (QL043). [`phase_groups`] performs that bucketing.
//!
//! Phases are tracked as powers of `i` (mod 4), so the product of any two
//! Pauli strings — and the conjugate of a Hermitian string — stays exact.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

use crate::circuit::Circuit;
use crate::commute::{wire_actions, WireAction};
use crate::gate::{Gate, GateName};
use crate::wire::Wire;

/// A single-wire Pauli operator.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Pauli {
    /// Identity.
    I,
    /// Bit flip.
    X,
    /// Bit-and-phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// Product of two single-wire Paulis as `(result, i-exponent)`:
    /// `a·b = i^k · result`.
    pub fn prod(self, other: Pauli) -> (Pauli, u8) {
        use Pauli::*;
        match (self, other) {
            (I, p) | (p, I) => (p, 0),
            (X, X) | (Y, Y) | (Z, Z) => (I, 0),
            (X, Y) => (Z, 1),
            (Y, X) => (Z, 3),
            (Y, Z) => (X, 1),
            (Z, Y) => (X, 3),
            (Z, X) => (Y, 1),
            (X, Z) => (Y, 3),
        }
    }

    /// Whether two single-wire Paulis commute.
    pub fn commutes(self, other: Pauli) -> bool {
        self == Pauli::I || other == Pauli::I || self == other
    }
}

/// A signed multi-wire Pauli operator: `i^phase · ⊗_w ops[w]`, identity on
/// every wire absent from `ops`.
///
/// Stabilizer generators and pushed Pauli frames are Hermitian, so their
/// `phase` is 0 (`+1`) or 2 (`−1`); intermediate products may pass through
/// `±i`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PauliString {
    /// Exponent of `i`, mod 4.
    pub phase: u8,
    /// Non-identity tensor factors, keyed by wire.
    pub ops: BTreeMap<Wire, Pauli>,
}

impl PauliString {
    /// The identity string `+1`.
    pub fn identity() -> PauliString {
        PauliString {
            phase: 0,
            ops: BTreeMap::new(),
        }
    }

    /// A single-wire Pauli with sign `+1`.
    pub fn single(wire: Wire, p: Pauli) -> PauliString {
        let mut ops = BTreeMap::new();
        if p != Pauli::I {
            ops.insert(wire, p);
        }
        PauliString { phase: 0, ops }
    }

    /// The Pauli on `wire` (identity if untracked).
    pub fn get(&self, wire: Wire) -> Pauli {
        self.ops.get(&wire).copied().unwrap_or(Pauli::I)
    }

    /// Whether the string is the identity operator (any sign).
    pub fn is_identity(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether the string is exactly `+1`.
    pub fn is_positive_identity(&self) -> bool {
        self.ops.is_empty() && self.phase == 0
    }

    /// Negates the string.
    pub fn negate(&mut self) {
        self.phase = (self.phase + 2) % 4;
    }

    /// The product `self · rhs`, with exact `i`-phase tracking.
    pub fn mul(&self, rhs: &PauliString) -> PauliString {
        let mut out = self.clone();
        out.phase = (out.phase + rhs.phase) % 4;
        for (&w, &p) in &rhs.ops {
            let (r, k) = out.get(w).prod(p);
            out.phase = (out.phase + k) % 4;
            if r == Pauli::I {
                out.ops.remove(&w);
            } else {
                out.ops.insert(w, r);
            }
        }
        out
    }

    /// Whether `self` and `rhs` commute: they anticommute on an even number
    /// of shared wires (the symplectic form).
    pub fn commutes_with(&self, rhs: &PauliString) -> bool {
        let anti = self
            .ops
            .iter()
            .filter(|(w, p)| !p.commutes(rhs.get(**w)))
            .count();
        anti % 2 == 0
    }

    /// Sets `wire` to `p`, dropping identity entries.
    fn set(&mut self, wire: Wire, p: Pauli) {
        if p == Pauli::I {
            self.ops.remove(&wire);
        } else {
            self.ops.insert(wire, p);
        }
    }

    /// Conjugates in place by a single-wire Pauli `q` on `wire`
    /// (`P ← q P q`): flips the sign when the factors anticommute.
    fn conj_by_pauli(&mut self, wire: Wire, q: Pauli) {
        if !self.get(wire).commutes(q) {
            self.negate();
        }
    }

    /// The conjugate `G · self · G†`, or `None` when the gate is outside the
    /// supported Clifford fragment (relative to this string).
    ///
    /// Three tiers are handled exactly:
    /// 1. gates disjoint from the string's support leave it unchanged;
    /// 2. the Clifford gates X/Y/Z/H/S/S†/Swap/CNOT/CZ use their
    ///    conjugation tables (negative controls conjugate by X first);
    /// 3. any all-Z-diagonal gate (T, controlled phases, Z rotations,
    ///    GPhase) fixes a string that is Z or I on every wire it touches.
    pub fn conjugate(&self, gate: &Gate) -> Option<PauliString> {
        let mut touches = false;
        gate.for_each_wire(&mut |w| touches |= self.ops.contains_key(&w));
        if !touches {
            return Some(self.clone());
        }
        match gate {
            Gate::QGate {
                name,
                inverted,
                targets,
                controls,
            } => match (name, controls.len()) {
                (GateName::X | GateName::Y | GateName::Z | GateName::H | GateName::S, 0) => {
                    let mut out = self.clone();
                    for &t in targets {
                        conj_1q(&mut out, t, name, *inverted);
                    }
                    Some(out)
                }
                (GateName::Swap, 0) => {
                    let [a, b] = targets[..] else { return None };
                    let mut out = self.clone();
                    let (pa, pb) = (out.get(a), out.get(b));
                    out.set(a, pb);
                    out.set(b, pa);
                    Some(out)
                }
                (GateName::X, 1) => {
                    let c = controls[0];
                    if targets.contains(&c.wire) {
                        return None; // malformed self-control; stay conservative
                    }
                    let mut out = self.clone();
                    if !c.positive {
                        out.conj_by_pauli(c.wire, Pauli::X);
                    }
                    for &t in targets {
                        conj_cnot(&mut out, c.wire, t);
                    }
                    if !c.positive {
                        out.conj_by_pauli(c.wire, Pauli::X);
                    }
                    Some(out)
                }
                (GateName::Z, 1) => {
                    let c = controls[0];
                    if targets.contains(&c.wire) {
                        return None;
                    }
                    let mut out = self.clone();
                    if !c.positive {
                        out.conj_by_pauli(c.wire, Pauli::X);
                    }
                    for &t in targets {
                        conj_cz(&mut out, c.wire, t);
                    }
                    if !c.positive {
                        out.conj_by_pauli(c.wire, Pauli::X);
                    }
                    Some(out)
                }
                _ => self.conjugate_diagonal(gate),
            },
            Gate::QRot { .. } | Gate::GPhase { .. } => self.conjugate_diagonal(gate),
            _ => None,
        }
    }

    /// Tier 3: a gate diagonal in the computational basis on every wire it
    /// touches fixes any string that is Z/I on those wires.
    fn conjugate_diagonal(&self, gate: &Gate) -> Option<PauliString> {
        let actions = wire_actions(gate);
        let diagonal = actions.values().all(|&a| a == WireAction::ZDiagonal);
        let z_only = actions
            .keys()
            .all(|w| matches!(self.get(*w), Pauli::I | Pauli::Z));
        (diagonal && z_only).then(|| self.clone())
    }
}

/// 1-qubit Clifford conjugation tables: `G P G†` on one wire.
fn conj_1q(s: &mut PauliString, wire: Wire, name: &GateName, inverted: bool) {
    let p = s.get(wire);
    if p == Pauli::I {
        return;
    }
    let (q, negate) = match name {
        // H: X↔Z, Y→−Y.
        GateName::H => match p {
            Pauli::X => (Pauli::Z, false),
            Pauli::Z => (Pauli::X, false),
            Pauli::Y => (Pauli::Y, true),
            Pauli::I => unreachable!(),
        },
        // S: X→Y, Y→−X, Z→Z; S† is the inverse permutation.
        GateName::S => match (p, inverted) {
            (Pauli::X, false) => (Pauli::Y, false),
            (Pauli::Y, false) => (Pauli::X, true),
            (Pauli::X, true) => (Pauli::Y, true),
            (Pauli::Y, true) => (Pauli::X, false),
            (Pauli::Z, _) => (Pauli::Z, false),
            (Pauli::I, _) => unreachable!(),
        },
        // Conjugation by a Pauli flips the sign of anticommuting factors.
        GateName::X => (p, !p.commutes(Pauli::X)),
        GateName::Y => (p, !p.commutes(Pauli::Y)),
        GateName::Z => (p, !p.commutes(Pauli::Z)),
        _ => unreachable!("conj_1q called on unsupported gate"),
    };
    s.set(wire, q);
    if negate {
        s.negate();
    }
}

/// CNOT conjugation: `Xc→XcXt`, `Zt→ZcZt`, `Zc→Zc`, `Xt→Xt` (and the Y
/// images those imply, via `Y = iXZ`).
fn conj_cnot(s: &mut PauliString, c: Wire, t: Wire) {
    // Decompose P = i^k · (c-factor) · (t-factor) · rest and map each factor
    // through the table by multiplying images: conjugation is a homomorphism
    // and Y = iXZ composes from the X and Z images.
    let two = |wa: Wire, pa: Pauli, wb: Wire, pb: Pauli| {
        PauliString::single(wa, pa).mul(&PauliString::single(wb, pb))
    };
    let x_img = |wire: Wire| {
        if wire == c {
            two(c, Pauli::X, t, Pauli::X)
        } else {
            PauliString::single(t, Pauli::X)
        }
    };
    let z_img = |wire: Wire| {
        if wire == c {
            PauliString::single(c, Pauli::Z)
        } else {
            two(c, Pauli::Z, t, Pauli::Z)
        }
    };
    conj_two_wire(s, c, t, x_img, z_img);
}

/// CZ conjugation: `Xa→XaZb`, `Xb→ZaXb`, `Z→Z`.
fn conj_cz(s: &mut PauliString, a: Wire, b: Wire) {
    let x_img = |wire: Wire| {
        let other = if wire == a { b } else { a };
        PauliString::single(wire, Pauli::X).mul(&PauliString::single(other, Pauli::Z))
    };
    let z_img = |wire: Wire| PauliString::single(wire, Pauli::Z);
    conj_two_wire(s, a, b, x_img, z_img);
}

/// Rebuilds `s` by replacing its factors on wires `a` and `b` with their
/// images under a two-qubit Clifford, given the images of X and Z per wire.
fn conj_two_wire(
    s: &mut PauliString,
    a: Wire,
    b: Wire,
    x_img: impl Fn(Wire) -> PauliString,
    z_img: impl Fn(Wire) -> PauliString,
) {
    let (pa, pb) = (s.get(a), s.get(b));
    let mut image = PauliString {
        phase: s.phase,
        ops: s
            .ops
            .iter()
            .filter(|(w, _)| **w != a && **w != b)
            .map(|(w, p)| (*w, *p))
            .collect(),
    };
    for (p, wire) in [(pa, a), (pb, b)] {
        match p {
            Pauli::I => {}
            Pauli::X => image = image.mul(&x_img(wire)),
            Pauli::Z => image = image.mul(&z_img(wire)),
            Pauli::Y => {
                image.phase = (image.phase + 1) % 4;
                image = image.mul(&x_img(wire));
                image = image.mul(&z_img(wire));
            }
        }
    }
    *s = image;
}

// ---------------------------------------------------------------------
// Phase-polynomial regions
// ---------------------------------------------------------------------

/// Which mergeable family a phase term belongs to. Named gates compose in
/// exact π/4 units; rotation families compose by adding angles. Families are
/// never merged with each other — `T` and `exp(-iπ/8·Z)` differ by a global
/// phase, which would be unsound to introduce inside a subroutine body.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PhaseFamily {
    /// Z/S/T and their inverses, in units of π/4 (T=1, S=2, Z=4, mod 8).
    Named,
    /// A rotation family such as `"exp(-i%Z)"` or `"R(%)"`; angles add.
    Rot(Arc<str>),
}

/// An affine parity over the region's entry values: `⟨mask, x⟩ ⊕ flip`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Parity {
    /// Wires whose region-entry value participates in the parity.
    pub mask: BTreeSet<Wire>,
    /// Constant term, flipped by uncontrolled X gates.
    pub flip: bool,
}

impl Parity {
    fn fresh(w: Wire) -> Parity {
        Parity {
            mask: [w].into_iter().collect(),
            flip: false,
        }
    }

    fn xor_in(&mut self, other: &Parity, extra_flip: bool) {
        for &w in &other.mask {
            if !self.mask.remove(&w) {
                self.mask.insert(w);
            }
        }
        self.flip ^= other.flip ^ extra_flip;
    }
}

/// A bucket of phase gates acting on the *same* parity function with the
/// same family, within one barrier-delimited region. Replacing every member
/// by a single gate carrying the net phase — at the first member's position
/// and wire — preserves the region's unitary exactly.
#[derive(Clone, Debug)]
pub struct PhaseGroup {
    /// Gate indices of the members, ascending.
    pub members: Vec<usize>,
    /// The parity function all members share.
    pub parity: Parity,
    /// The family they compose in.
    pub family: PhaseFamily,
    /// Target wire of the first member (its parity at that point *is*
    /// `parity`, so a replacement gate can be emitted there).
    pub wire: Wire,
    /// Net named phase in π/4 units, mod 8 (0 ⇒ the group is the identity).
    pub units: u8,
    /// Net rotation angle (sign folds in gate inversion).
    pub angle: f64,
}

impl PhaseGroup {
    /// Whether the group's net phase is the identity.
    pub fn is_identity(&self) -> bool {
        match self.family {
            PhaseFamily::Named => self.units == 0,
            PhaseFamily::Rot(_) => {
                let tau = std::f64::consts::TAU;
                let r = self.angle.rem_euclid(tau);
                r.min(tau - r) < 1e-12
            }
        }
    }
}

/// Rotation families that are pure Z-phases and compose by angle addition.
const MERGEABLE_ROTS: &[&str] = &["exp(-i%Z)", "R(%)"];

/// The named phase gate's exponent in π/4 units, if it is one.
pub fn named_units(name: &GateName, inverted: bool) -> Option<u8> {
    let u = match name {
        GateName::T => 1,
        GateName::S => 2,
        GateName::Z => 4,
        _ => return None,
    };
    Some(if inverted { (8 - u) % 8 } else { u })
}

/// The shortest gate sequence realizing a net phase of `units`·π/4 on
/// `wire`: at most two gates, empty when `units ≡ 0`.
pub fn gates_for_units(units: u8, wire: Wire) -> Vec<Gate> {
    let named = |name: GateName, inverted: bool| Gate::QGate {
        name,
        inverted,
        targets: vec![wire],
        controls: vec![],
    };
    match units % 8 {
        0 => vec![],
        1 => vec![named(GateName::T, false)],
        2 => vec![named(GateName::S, false)],
        3 => vec![named(GateName::S, false), named(GateName::T, false)],
        4 => vec![named(GateName::Z, false)],
        5 => vec![named(GateName::Z, false), named(GateName::T, false)],
        6 => vec![named(GateName::S, true)],
        _ => vec![named(GateName::T, true)],
    }
}

/// Scans `circuit` for phase-polynomial regions and returns every bucket of
/// same-parity phase gates found (including single-member buckets, so the
/// lint can flag lone identity rotations).
///
/// Region members: uncontrolled or singly-controlled X (affine update of the
/// target parity), uncontrolled Swap (parity exchange), uncontrolled
/// single-target Z/S/T and the rotations in [`MERGEABLE_ROTS`] (phase
/// terms). Any other Z-diagonal gate is a *spectator* — it stays in place
/// and neither ends the region nor merges, which is sound because every
/// phase term commutes with every other diagonal factor. Anything else is a
/// barrier that flushes the region.
pub fn phase_groups(circuit: &Circuit) -> Vec<PhaseGroup> {
    let mut out: Vec<PhaseGroup> = Vec::new();
    let mut parities: BTreeMap<Wire, Parity> = BTreeMap::new();
    let mut open: Vec<PhaseGroup> = Vec::new();
    let mut index: BTreeMap<(Vec<Wire>, bool, PhaseFamily), usize> = BTreeMap::new();

    let flush = |parities: &mut BTreeMap<Wire, Parity>,
                 open: &mut Vec<PhaseGroup>,
                 index: &mut BTreeMap<(Vec<Wire>, bool, PhaseFamily), usize>,
                 out: &mut Vec<PhaseGroup>| {
        parities.clear();
        index.clear();
        out.append(open);
    };

    for (idx, gate) in circuit.gates.iter().enumerate() {
        let parity_of = |parities: &mut BTreeMap<Wire, Parity>, w: Wire| {
            parities
                .entry(w)
                .or_insert_with(|| Parity::fresh(w))
                .clone()
        };
        let record = |parities: &mut BTreeMap<Wire, Parity>,
                      open: &mut Vec<PhaseGroup>,
                      index: &mut BTreeMap<(Vec<Wire>, bool, PhaseFamily), usize>,
                      wire: Wire,
                      family: PhaseFamily,
                      units: u8,
                      angle: f64| {
            let p = parity_of(parities, wire);
            let key = (p.mask.iter().copied().collect(), p.flip, family.clone());
            match index.get(&key) {
                Some(&g) => {
                    open[g].members.push(idx);
                    open[g].units = (open[g].units + units) % 8;
                    open[g].angle += angle;
                }
                None => {
                    index.insert(key, open.len());
                    open.push(PhaseGroup {
                        members: vec![idx],
                        parity: p,
                        family,
                        wire,
                        units,
                        angle,
                    });
                }
            }
        };

        match gate {
            Gate::Comment { .. } => {}
            Gate::QGate {
                name,
                inverted,
                targets,
                controls,
            } => match (name, controls.len()) {
                (GateName::X, 0) => {
                    for &t in targets {
                        parities.entry(t).or_insert_with(|| Parity::fresh(t)).flip ^= true;
                    }
                }
                (GateName::X, 1) if !targets.contains(&controls[0].wire) => {
                    let c = controls[0];
                    // t ← t ⊕ c (positive) or t ⊕ ¬c (negative): affine.
                    let cp = parity_of(&mut parities, c.wire);
                    for &t in targets {
                        let tp = parities.entry(t).or_insert_with(|| Parity::fresh(t));
                        tp.xor_in(&cp, !c.positive);
                    }
                }
                (GateName::Swap, 0) if targets.len() == 2 => {
                    let (a, b) = (targets[0], targets[1]);
                    let pa = parity_of(&mut parities, a);
                    let pb = parity_of(&mut parities, b);
                    parities.insert(a, pb);
                    parities.insert(b, pa);
                }
                (GateName::Z | GateName::S | GateName::T, 0) if targets.len() == 1 => {
                    let units = named_units(name, *inverted).expect("Z/S/T have units");
                    record(
                        &mut parities,
                        &mut open,
                        &mut index,
                        targets[0],
                        PhaseFamily::Named,
                        units,
                        0.0,
                    );
                }
                _ => {
                    if !is_spectator(gate) {
                        flush(&mut parities, &mut open, &mut index, &mut out);
                    }
                }
            },
            Gate::QRot {
                name,
                inverted,
                angle,
                targets,
                controls,
            } if controls.is_empty()
                && targets.len() == 1
                && MERGEABLE_ROTS.contains(&name.as_ref()) =>
            {
                let signed = if *inverted { -*angle } else { *angle };
                record(
                    &mut parities,
                    &mut open,
                    &mut index,
                    targets[0],
                    PhaseFamily::Rot(name.clone()),
                    0,
                    signed,
                );
            }
            _ => {
                if !is_spectator(gate) {
                    flush(&mut parities, &mut open, &mut index, &mut out);
                }
            }
        }
    }
    flush(&mut parities, &mut open, &mut index, &mut out);
    out
}

/// A spectator is diagonal in the computational basis on every wire it
/// touches (controlled phases, `R(2pi/%)`, GPhase …): it commutes with the
/// diagonal factor of the region, so merging phase terms across it is sound.
fn is_spectator(gate: &Gate) -> bool {
    if matches!(
        gate,
        Gate::QInit { .. }
            | Gate::QTerm { .. }
            | Gate::CInit { .. }
            | Gate::CTerm { .. }
            | Gate::QMeas { .. }
            | Gate::QDiscard { .. }
            | Gate::CDiscard { .. }
            | Gate::CGate { .. }
            | Gate::Subroutine { .. }
    ) {
        return false;
    }
    let actions = wire_actions(gate);
    (!actions.is_empty() || matches!(gate, Gate::GPhase { .. }))
        && actions.values().all(|&a| a == WireAction::ZDiagonal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::wire::{Control, WireType};

    // ---- complex matrix scaffolding (tests only) ----

    type C = (f64, f64);
    type Mat = Vec<Vec<C>>;

    fn cmul(a: C, b: C) -> C {
        (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
    }
    fn cadd(a: C, b: C) -> C {
        (a.0 + b.0, a.1 + b.1)
    }

    fn matmul(a: &Mat, b: &Mat) -> Mat {
        let n = a.len();
        let mut out = vec![vec![(0.0, 0.0); n]; n];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                for k in 0..n {
                    *cell = cadd(*cell, cmul(a[i][k], b[k][j]));
                }
            }
        }
        out
    }

    fn dagger(a: &Mat) -> Mat {
        let n = a.len();
        (0..n)
            .map(|i| (0..n).map(|j| (a[j][i].0, -a[j][i].1)).collect())
            .collect()
    }

    fn kron(a: &Mat, b: &Mat) -> Mat {
        let (n, m) = (a.len(), b.len());
        let mut out = vec![vec![(0.0, 0.0); n * m]; n * m];
        for i in 0..n {
            for j in 0..n {
                for k in 0..m {
                    for l in 0..m {
                        out[i * m + k][j * m + l] = cmul(a[i][j], b[k][l]);
                    }
                }
            }
        }
        out
    }

    fn scale(s: C, a: &Mat) -> Mat {
        a.iter()
            .map(|row| row.iter().map(|&x| cmul(s, x)).collect())
            .collect()
    }

    fn approx_eq(a: &Mat, b: &Mat) -> bool {
        a.iter().zip(b).all(|(ra, rb)| {
            ra.iter()
                .zip(rb)
                .all(|(x, y)| (x.0 - y.0).abs() < 1e-12 && (x.1 - y.1).abs() < 1e-12)
        })
    }

    fn pauli_mat(p: Pauli) -> Mat {
        match p {
            Pauli::I => vec![vec![(1.0, 0.0), (0.0, 0.0)], vec![(0.0, 0.0), (1.0, 0.0)]],
            Pauli::X => vec![vec![(0.0, 0.0), (1.0, 0.0)], vec![(1.0, 0.0), (0.0, 0.0)]],
            Pauli::Y => vec![vec![(0.0, 0.0), (0.0, -1.0)], vec![(0.0, 1.0), (0.0, 0.0)]],
            Pauli::Z => vec![vec![(1.0, 0.0), (0.0, 0.0)], vec![(0.0, 0.0), (-1.0, 0.0)]],
        }
    }

    fn i_pow(k: u8) -> C {
        match k % 4 {
            0 => (1.0, 0.0),
            1 => (0.0, 1.0),
            2 => (-1.0, 0.0),
            _ => (0.0, -1.0),
        }
    }

    /// The matrix of a PauliString over wires `[0, 1)` or `[0, 2)`.
    fn string_mat(s: &PauliString, wires: &[Wire]) -> Mat {
        let mut m = pauli_mat(s.get(wires[0]));
        for &w in &wires[1..] {
            m = kron(&m, &pauli_mat(s.get(w)));
        }
        scale(i_pow(s.phase), &m)
    }

    fn gate_1q_mat(name: &GateName, inverted: bool) -> Mat {
        let h = std::f64::consts::FRAC_1_SQRT_2;
        match name {
            GateName::H => vec![vec![(h, 0.0), (h, 0.0)], vec![(h, 0.0), (-h, 0.0)]],
            GateName::S if !inverted => {
                vec![vec![(1.0, 0.0), (0.0, 0.0)], vec![(0.0, 0.0), (0.0, 1.0)]]
            }
            GateName::S => vec![vec![(1.0, 0.0), (0.0, 0.0)], vec![(0.0, 0.0), (0.0, -1.0)]],
            GateName::X => pauli_mat(Pauli::X),
            GateName::Y => pauli_mat(Pauli::Y),
            GateName::Z => pauli_mat(Pauli::Z),
            GateName::T if !inverted => {
                let c = std::f64::consts::FRAC_PI_4;
                vec![
                    vec![(1.0, 0.0), (0.0, 0.0)],
                    vec![(0.0, 0.0), (c.cos(), c.sin())],
                ]
            }
            _ => unreachable!(),
        }
    }

    /// |c t⟩ basis with wire order `[c, t]`; `negative` flips the firing value.
    fn cnot_mat(negative: bool) -> Mat {
        let mut m = vec![vec![(0.0, 0.0); 4]; 4];
        for c in 0..2usize {
            for t in 0..2usize {
                let fires = if negative { c == 0 } else { c == 1 };
                let t2 = if fires { t ^ 1 } else { t };
                m[c * 2 + t2][c * 2 + t] = (1.0, 0.0);
            }
        }
        m
    }

    fn cz_mat() -> Mat {
        let mut m = vec![vec![(0.0, 0.0); 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = if i == 3 { (-1.0, 0.0) } else { (1.0, 0.0) };
        }
        m
    }

    fn swap_mat() -> Mat {
        let mut m = vec![vec![(0.0, 0.0); 4]; 4];
        for c in 0..2usize {
            for t in 0..2usize {
                m[t * 2 + c][c * 2 + t] = (1.0, 0.0);
            }
        }
        m
    }

    fn all_strings_2q() -> Vec<PauliString> {
        let ps = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];
        let mut out = Vec::new();
        for &a in &ps {
            for &b in &ps {
                let s = PauliString::single(Wire(0), a).mul(&PauliString::single(Wire(1), b));
                out.push(s);
            }
        }
        out
    }

    #[test]
    fn products_track_phase_exactly() {
        let x = PauliString::single(Wire(0), Pauli::X);
        let z = PauliString::single(Wire(0), Pauli::Z);
        let xz = x.mul(&z);
        // X·Z = −iY.
        assert_eq!(xz.get(Wire(0)), Pauli::Y);
        assert_eq!(xz.phase, 3);
        // (X·Z)·(Z·X) = X·X = I (phases cancel: −i · i = 1).
        let zx = z.mul(&x);
        assert!(xz.mul(&zx).is_positive_identity());
    }

    #[test]
    fn symplectic_commutation_matches_matrices() {
        for a in all_strings_2q() {
            for b in all_strings_2q() {
                let (ma, mb) = (
                    string_mat(&a, &[Wire(0), Wire(1)]),
                    string_mat(&b, &[Wire(0), Wire(1)]),
                );
                let claim = a.commutes_with(&b);
                assert_eq!(
                    approx_eq(&matmul(&ma, &mb), &matmul(&mb, &ma)),
                    claim,
                    "commutes_with disagrees with matrices on {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn one_qubit_conjugation_tables_match_matrices() {
        let gates = [
            (GateName::H, false),
            (GateName::S, false),
            (GateName::S, true),
            (GateName::X, false),
            (GateName::Y, false),
            (GateName::Z, false),
        ];
        for (name, inverted) in gates {
            let g = gate_1q_mat(&name, inverted);
            for p in [Pauli::X, Pauli::Y, Pauli::Z] {
                let s = PauliString::single(Wire(0), p);
                let gate = Gate::QGate {
                    name: name.clone(),
                    inverted,
                    targets: vec![Wire(0)],
                    controls: vec![],
                };
                let conj = s.conjugate(&gate).expect("Clifford");
                let lhs = matmul(&matmul(&g, &string_mat(&s, &[Wire(0)])), &dagger(&g));
                let rhs = string_mat(&conj, &[Wire(0)]);
                assert!(
                    approx_eq(&lhs, &rhs),
                    "{name:?} inverted={inverted} on {p:?}: table disagrees with matrices"
                );
            }
        }
    }

    #[test]
    fn two_qubit_conjugation_tables_match_matrices() {
        let cnot = Gate::cnot(Wire(1), Wire(0));
        let cnot_neg = Gate::QGate {
            name: GateName::X,
            inverted: false,
            targets: vec![Wire(1)],
            controls: vec![Control::negative(Wire(0))],
        };
        let cz = Gate::QGate {
            name: GateName::Z,
            inverted: false,
            targets: vec![Wire(1)],
            controls: vec![Control::positive(Wire(0))],
        };
        let swap = Gate::QGate {
            name: GateName::Swap,
            inverted: false,
            targets: vec![Wire(0), Wire(1)],
            controls: vec![],
        };
        let cases: [(&Gate, Mat); 4] = [
            (&cnot, cnot_mat(false)),
            (&cnot_neg, cnot_mat(true)),
            (&cz, cz_mat()),
            (&swap, swap_mat()),
        ];
        for (gate, g) in &cases {
            for s in all_strings_2q() {
                let conj = s.conjugate(gate).expect("Clifford");
                let lhs = matmul(&matmul(g, &string_mat(&s, &[Wire(0), Wire(1)])), &dagger(g));
                let rhs = string_mat(&conj, &[Wire(0), Wire(1)]);
                assert!(
                    approx_eq(&lhs, &rhs),
                    "{}: conjugation of {s:?} disagrees with matrices",
                    gate.describe()
                );
            }
        }
    }

    #[test]
    fn diagonal_gates_fix_z_strings() {
        let t = Gate::unary(GateName::T, Wire(0));
        let z = PauliString::single(Wire(0), Pauli::Z);
        assert_eq!(z.conjugate(&t), Some(z.clone()));
        // …and the matrices agree.
        let g = gate_1q_mat(&GateName::T, false);
        let lhs = matmul(&matmul(&g, &string_mat(&z, &[Wire(0)])), &dagger(&g));
        assert!(approx_eq(&lhs, &string_mat(&z, &[Wire(0)])));
        // X does not survive a T conjugation in this fragment.
        let x = PauliString::single(Wire(0), Pauli::X);
        assert_eq!(x.conjugate(&t), None);
        // Disjoint support is always fine.
        let far = PauliString::single(Wire(7), Pauli::X);
        assert_eq!(far.conjugate(&t), Some(far.clone()));
    }

    // ---- phase-polynomial regions ----

    fn q(w: u32) -> (Wire, WireType) {
        (Wire(w), WireType::Quantum)
    }

    #[test]
    fn t_gates_merge_across_restored_parity() {
        // T(0); CNOT(1←0); T(1); CNOT(1←0); T(0): wire 0 holds parity x0 at
        // gates 0 and 4 → one Named group of two; the T on x0⊕x1 is its own.
        let mut c = Circuit::with_inputs(vec![q(0), q(1)]);
        c.gates.push(Gate::unary(GateName::T, Wire(0)));
        c.gates.push(Gate::cnot(Wire(1), Wire(0)));
        c.gates.push(Gate::unary(GateName::T, Wire(1)));
        c.gates.push(Gate::cnot(Wire(1), Wire(0)));
        c.gates.push(Gate::unary(GateName::T, Wire(0)));
        let groups = phase_groups(&c);
        assert_eq!(groups.len(), 2);
        let pair = groups.iter().find(|g| g.members.len() == 2).unwrap();
        assert_eq!(pair.members, vec![0, 4]);
        assert_eq!(pair.units, 2); // T·T = S
        let lone = groups.iter().find(|g| g.members.len() == 1).unwrap();
        assert_eq!(lone.members, vec![2]);
        assert_eq!(lone.parity.mask.len(), 2);
    }

    #[test]
    fn barriers_split_regions_and_x_flips_const() {
        let mut c = Circuit::with_inputs(vec![q(0)]);
        c.gates.push(Gate::unary(GateName::T, Wire(0)));
        c.gates.push(Gate::unary(GateName::X, Wire(0)));
        c.gates.push(Gate::unary(GateName::T, Wire(0))); // parity ¬x0: new group
        c.gates.push(Gate::unary(GateName::H, Wire(0))); // barrier
        c.gates.push(Gate::unary(GateName::T, Wire(0))); // fresh region
        let groups = phase_groups(&c);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.members.len() == 1));
        let flipped = groups.iter().find(|g| g.members == vec![2]).unwrap();
        assert!(flipped.parity.flip);
    }

    #[test]
    fn inverse_rotations_form_identity_group() {
        let rz = |angle: f64, inverted: bool| Gate::QRot {
            name: "exp(-i%Z)".into(),
            inverted,
            angle,
            targets: vec![Wire(0)],
            controls: vec![],
        };
        let mut c = Circuit::with_inputs(vec![q(0), q(1)]);
        c.gates.push(rz(0.37, false));
        c.gates.push(Gate::cnot(Wire(0), Wire(1)));
        c.gates.push(Gate::cnot(Wire(0), Wire(1)));
        c.gates.push(rz(0.37, true));
        let groups = phase_groups(&c);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, vec![0, 3]);
        assert!(groups[0].is_identity());
    }

    #[test]
    fn spectators_do_not_break_regions() {
        // A controlled-T between two T gates on the same parity: the pair
        // still merges across it.
        let mut c = Circuit::with_inputs(vec![q(0), q(1)]);
        c.gates.push(Gate::unary(GateName::T, Wire(0)));
        c.gates.push(Gate::QGate {
            name: GateName::T,
            inverted: false,
            targets: vec![Wire(1)],
            controls: vec![Control::positive(Wire(0))],
        });
        c.gates.push(Gate::unary(GateName::T, Wire(0)));
        let groups = phase_groups(&c);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, vec![0, 2]);
    }

    #[test]
    fn units_synthesis_is_minimal_and_total() {
        for units in 0u8..8 {
            let gates = gates_for_units(units, Wire(0));
            assert!(gates.len() <= 2);
            let mut m = vec![vec![(1.0, 0.0), (0.0, 0.0)], vec![(0.0, 0.0), (1.0, 0.0)]];
            for g in &gates {
                let Gate::QGate { name, inverted, .. } = g else {
                    panic!("named synthesis emits QGates")
                };
                let gm = match name {
                    GateName::T if *inverted => dagger(&gate_1q_mat(&GateName::T, false)),
                    GateName::S if *inverted => gate_1q_mat(&GateName::S, true),
                    n => gate_1q_mat(n, false),
                };
                m = matmul(&gm, &m);
            }
            let want = {
                let a = f64::from(units) * std::f64::consts::FRAC_PI_4;
                vec![
                    vec![(1.0, 0.0), (0.0, 0.0)],
                    vec![(0.0, 0.0), (a.cos(), a.sin())],
                ]
            };
            assert!(approx_eq(&m, &want), "units={units}");
        }
    }
}
