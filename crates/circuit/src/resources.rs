//! Per-subroutine resource accounting over hierarchical circuits.
//!
//! Walks a [`BCircuit`]'s boxed-subroutine DAG *without expanding it* — the
//! same aggregate-by-multiplication discipline as [`crate::count`] — and
//! produces a [`ResourceReport`]: one row per reachable subroutine with
//! aggregate call counts, gate counts by class, peak live qubits, and the
//! ancilla high-water mark, in the style of arXiv:1412.0625.

use std::collections::{BTreeMap, HashMap, HashSet};

use quipper_trace::report::{ResourceReport, ResourceRow};

use crate::circuit::{BCircuit, BoxId, Circuit, CircuitDb};
use crate::count::{self, GateClass};
use crate::gate::Gate;
use crate::wire::WireType;

/// Direct subroutine calls of one circuit body, with repetition factors
/// accumulated per callee.
fn direct_calls(circuit: &Circuit) -> Vec<(BoxId, u128)> {
    let mut calls: BTreeMap<BoxId, u128> = BTreeMap::new();
    for gate in &circuit.gates {
        if let Gate::Subroutine {
            id, repetitions, ..
        } = gate
        {
            *calls.entry(*id).or_insert(0) += u128::from(*repetitions);
        }
    }
    calls.into_iter().collect()
}

/// Gate classes of one body, not descending into subroutine calls.
fn own_classes(circuit: &Circuit) -> BTreeMap<GateClass, u128> {
    let mut counts = BTreeMap::new();
    for gate in &circuit.gates {
        if let Some(class) = count::classify(gate) {
            *counts.entry(class).or_insert(0) += 1;
        }
    }
    counts
}

fn quantum_inputs(circuit: &Circuit) -> u64 {
    circuit
        .inputs
        .iter()
        .filter(|&&(_, t)| t == WireType::Quantum)
        .count() as u64
}

/// Reachable boxes in topological order (callers before callees).
fn topo_order(db: &CircuitDb, main: &Circuit) -> Vec<BoxId> {
    fn visit(id: BoxId, db: &CircuitDb, seen: &mut HashSet<BoxId>, post: &mut Vec<BoxId>) {
        if !seen.insert(id) {
            return;
        }
        if let Ok(def) = db.get(id) {
            for (child, _) in direct_calls(&def.circuit) {
                visit(child, db, seen, post);
            }
        }
        post.push(id);
    }
    let mut seen = HashSet::new();
    let mut post = Vec::new();
    for (child, _) in direct_calls(main) {
        visit(child, db, &mut seen, &mut post);
    }
    post.reverse();
    post
}

fn row_for(
    name: String,
    level: u32,
    calls: u128,
    circuit: &Circuit,
    db: &CircuitDb,
) -> ResourceRow {
    let classes = own_classes(circuit);
    let own_gates: u128 = classes.values().sum();
    let peak = count::max_alive(db, circuit);
    ResourceRow {
        name,
        level,
        calls,
        own_gates,
        total_gates: own_gates.saturating_mul(calls),
        gates_by_class: classes
            .into_iter()
            .map(|(class, n)| (class.to_string(), n.saturating_mul(calls)))
            .collect(),
        peak_qubits: peak.quantum,
        ancilla_high_water: peak.quantum.saturating_sub(quantum_inputs(circuit)),
    }
}

/// Computes a per-subroutine resource report for a hierarchical circuit.
///
/// Aggregate call counts multiply repetition factors through every call
/// path; a subroutine's `level` is its minimum depth below `main`. Rows are
/// sorted by `(level, name)` with `main` first. The circuit is never
/// flattened, so this is cheap even for circuits whose expansion has
/// trillions of gates.
///
/// # Panics
///
/// As for [`count::count`]: the circuit must reference only subroutines
/// present in the database, without cycles (run
/// [`validate`](crate::validate::validate) first for a `Result`-based
/// check).
pub fn resource_report(bc: &BCircuit, label: &str) -> ResourceReport {
    let order = topo_order(&bc.db, &bc.main);

    let mut calls: HashMap<BoxId, u128> = HashMap::new();
    let mut level: HashMap<BoxId, u32> = HashMap::new();
    for (child, reps) in direct_calls(&bc.main) {
        *calls.entry(child).or_insert(0) += reps;
        level.insert(child, 1);
    }
    for &u in &order {
        let cu = calls.get(&u).copied().unwrap_or(0);
        let lu = level.get(&u).copied().unwrap_or(1);
        if let Ok(def) = bc.db.get(u) {
            for (v, r) in direct_calls(&def.circuit) {
                *calls.entry(v).or_insert(0) += cu.saturating_mul(r);
                level
                    .entry(v)
                    .and_modify(|l| *l = (*l).min(lu + 1))
                    .or_insert(lu + 1);
            }
        }
    }

    // Same-named boxes at different shapes get disambiguated row names.
    let mut name_uses: HashMap<&str, u32> = HashMap::new();
    for &id in &order {
        if let Ok(def) = bc.db.get(id) {
            *name_uses.entry(def.name.as_str()).or_insert(0) += 1;
        }
    }

    let mut rows = vec![row_for("main".to_string(), 0, 1, &bc.main, &bc.db)];
    for &id in &order {
        let Ok(def) = bc.db.get(id) else { continue };
        let name = if name_uses.get(def.name.as_str()).copied().unwrap_or(0) > 1 {
            format!("{}[{}]", def.name, def.shape)
        } else {
            def.name.clone()
        };
        rows.push(row_for(
            name,
            level.get(&id).copied().unwrap_or(1),
            calls.get(&id).copied().unwrap_or(0),
            &def.circuit,
            &bc.db,
        ));
    }
    rows[1..].sort_by(|a, b| (a.level, &a.name).cmp(&(b.level, &b.name)));

    let total_gates = rows.iter().map(|r| r.total_gates).sum();
    let peak_qubits = count::max_alive(&bc.db, &bc.main).quantum;
    ResourceReport {
        label: label.to_string(),
        rows,
        total_gates,
        peak_qubits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SubDef;
    use crate::gate::GateName;
    use crate::wire::Wire;

    fn q(w: u32) -> (Wire, WireType) {
        (Wire(w), WireType::Quantum)
    }

    fn call(id: BoxId, wires: &[u32], repetitions: u64) -> Gate {
        Gate::Subroutine {
            id,
            inverted: false,
            inputs: wires.iter().map(|&w| Wire(w)).collect(),
            outputs: wires.iter().map(|&w| Wire(w)).collect(),
            controls: vec![],
            repetitions,
        }
    }

    /// main —2×→ outer —3×→ inner; inner also called once from main.
    fn sample() -> BCircuit {
        let mut db = CircuitDb::new();
        let mut inner = Circuit::with_inputs(vec![q(0), q(1)]);
        inner.gates.push(Gate::cnot(Wire(0), Wire(1)));
        let inner_id = db.insert(SubDef {
            name: "inner".into(),
            shape: "s".into(),
            circuit: inner,
        });
        let mut outer = Circuit::with_inputs(vec![q(0), q(1)]);
        outer.gates.push(Gate::unary(GateName::H, Wire(0)));
        outer.gates.push(call(inner_id, &[0, 1], 3));
        let outer_id = db.insert(SubDef {
            name: "outer".into(),
            shape: "s".into(),
            circuit: outer,
        });
        let mut main = Circuit::with_inputs(vec![q(0), q(1)]);
        main.gates.push(Gate::unary(GateName::H, Wire(1)));
        main.gates.push(call(outer_id, &[0, 1], 2));
        main.gates.push(call(inner_id, &[0, 1], 1));
        BCircuit::new(db, main)
    }

    #[test]
    fn aggregates_calls_levels_and_gates() {
        let report = resource_report(&sample(), "sample");
        assert_eq!(report.label, "sample");
        let names: Vec<&str> = report.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["main", "inner", "outer"]);

        let main = &report.rows[0];
        assert_eq!((main.level, main.calls, main.own_gates), (0, 1, 1));

        // inner: once directly from main, plus 2 (main→outer) × 3 (outer→inner).
        let inner = &report.rows[1];
        assert_eq!((inner.level, inner.calls), (1, 7));
        assert_eq!(inner.own_gates, 1);
        assert_eq!(inner.total_gates, 7);
        assert_eq!(
            inner.gates_by_class,
            vec![("\"Not\", controls 1".into(), 7)]
        );

        let outer = &report.rows[2];
        assert_eq!((outer.level, outer.calls, outer.total_gates), (1, 2, 2));

        assert_eq!(report.total_gates, 10);
        assert_eq!(report.peak_qubits, 2);
        assert!(report.rows.iter().all(|r| r.ancilla_high_water == 0));
    }

    #[test]
    fn ancilla_high_water_counts_scratch_beyond_inputs() {
        // A body that inits two ancillas on top of one input qubit.
        let mut body = Circuit::with_inputs(vec![q(0)]);
        body.gates.push(Gate::QInit {
            value: false,
            wire: Wire(1),
        });
        body.gates.push(Gate::QInit {
            value: false,
            wire: Wire(2),
        });
        body.gates.push(Gate::cnot(Wire(1), Wire(0)));
        body.gates.push(Gate::QTerm {
            value: false,
            wire: Wire(1),
        });
        body.gates.push(Gate::QTerm {
            value: false,
            wire: Wire(2),
        });
        let mut db = CircuitDb::new();
        let id = db.insert(SubDef {
            name: "scratch".into(),
            shape: "".into(),
            circuit: body,
        });
        let mut main = Circuit::with_inputs(vec![q(0)]);
        main.gates.push(Gate::Subroutine {
            id,
            inverted: false,
            inputs: vec![Wire(0)],
            outputs: vec![Wire(0)],
            controls: vec![],
            repetitions: 1,
        });
        let report = resource_report(&BCircuit::new(db, main), "anc");
        let row = report.rows.iter().find(|r| r.name == "scratch").unwrap();
        assert_eq!(row.peak_qubits, 3);
        assert_eq!(row.ancilla_high_water, 2);
        // main's peak includes the subroutine's ancillas.
        assert_eq!(report.peak_qubits, 3);
        assert_eq!(report.rows[0].ancilla_high_water, 2);
    }
}
