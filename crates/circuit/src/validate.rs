//! Run-time well-formedness checking of circuits.
//!
//! Because the host language lacks linear types, Quipper checks properties
//! such as non-duplication of quantum data at run time (paper §4.1). This
//! module implements those checks: every gate must act on live wires of the
//! correct type, no gate may mention the same wire twice (no-cloning), wires
//! must be allocated before use and deallocated exactly once, and the
//! circuit's declared outputs must coincide with the wires left alive.

use std::collections::HashMap;

use crate::circuit::{Circuit, CircuitDb};
use crate::error::CircuitError;
use crate::gate::Gate;
use crate::wire::{Wire, WireType};

/// Statistics produced by a successful validation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Report {
    /// Number of gates in the (unexpanded) gate list, excluding comments.
    pub gates: usize,
    /// Maximum number of wires simultaneously alive, descending into boxed
    /// subcircuits (the circuit's *height*, "Qubits in circuit" in the
    /// paper's gate counts).
    pub max_alive: u64,
    /// Maximum number of *quantum* wires simultaneously alive.
    pub max_quantum: u64,
}

/// Validates `circuit` against subroutine database `db`.
///
/// # Errors
///
/// Returns a [`CircuitError`] describing the first violation found: use of a
/// dead wire, duplicate use of a wire within a gate, a type mismatch,
/// re-initialization of a live wire, a subroutine arity mismatch, iteration
/// of a non-repeatable subroutine, or a mismatch between declared outputs and
/// live wires.
pub fn validate(db: &CircuitDb, circuit: &Circuit) -> Result<Report, CircuitError> {
    let _span = quipper_trace::span(quipper_trace::Phase::Compile, "validate");
    let mut alive: HashMap<Wire, WireType> = HashMap::new();
    for &(w, t) in &circuit.inputs {
        if alive.insert(w, t).is_some() {
            return Err(CircuitError::DuplicateWire {
                wire: w,
                context: "circuit inputs".into(),
            });
        }
    }

    let mut gates = 0usize;
    for gate in &circuit.gates {
        if !matches!(gate, Gate::Comment { .. }) {
            gates += 1;
        }
        apply_gate(db, gate, &mut alive)?;
    }

    // The declared outputs must be exactly the live wires. `alive` is not
    // needed past this point, so consume it in place instead of cloning —
    // the happy path allocates nothing.
    for &(w, t) in &circuit.outputs {
        match alive.remove(&w) {
            Some(found) if found == t => {}
            Some(found) => {
                return Err(CircuitError::TypeMismatch {
                    wire: w,
                    expected: t,
                    found,
                    context: "circuit outputs".into(),
                })
            }
            None => {
                return Err(CircuitError::OutputMismatch {
                    detail: format!("declared output wire {w} is not alive at the end"),
                })
            }
        }
    }
    if let Some((&w, _)) = alive.iter().next() {
        return Err(CircuitError::OutputMismatch {
            detail: format!("wire {w} is still alive but not listed as an output"),
        });
    }

    let peak = crate::count::max_alive(db, circuit);
    Ok(Report {
        gates,
        max_alive: peak.total,
        max_quantum: peak.quantum,
    })
}

/// Applies the aliveness/type transition of one gate to `alive`.
///
/// This is the single-step version of [`validate`]: circuit builders can use
/// it to maintain a live-wire map incrementally and catch errors (dead wires,
/// cloning, type mismatches) at the moment a gate is appended.
///
/// # Errors
///
/// As for [`validate`], for violations caused by this one gate.
pub fn apply_gate(
    db: &CircuitDb,
    gate: &Gate,
    alive: &mut HashMap<Wire, WireType>,
) -> Result<(), CircuitError> {
    let ctx = gate.describe();
    let require =
        |alive: &HashMap<Wire, WireType>, w: Wire, t: WireType| -> Result<(), CircuitError> {
            match alive.get(&w) {
                Some(&found) if found == t => Ok(()),
                Some(&found) => Err(CircuitError::TypeMismatch {
                    wire: w,
                    expected: t,
                    found,
                    context: ctx.clone(),
                }),
                None => Err(CircuitError::DeadWire {
                    wire: w,
                    context: ctx.clone(),
                }),
            }
        };
    let require_alive =
        |alive: &HashMap<Wire, WireType>, w: Wire| -> Result<WireType, CircuitError> {
            alive
                .get(&w)
                .copied()
                .ok_or_else(|| CircuitError::DeadWire {
                    wire: w,
                    context: ctx.clone(),
                })
        };

    // No-cloning: all wires mentioned operationally by one gate must be
    // pairwise distinct (labels in comments are exempt; subroutine outputs
    // may coincide with inputs because inputs are consumed first).
    check_distinct(gate)?;

    match gate {
        Gate::QGate {
            name,
            targets,
            controls,
            ..
        } => {
            if let Some(n) = name.fixed_arity() {
                if n != targets.len() {
                    return Err(CircuitError::SubroutineArity {
                        name: name.to_string(),
                        detail: format!("gate expects {n} targets, got {}", targets.len()),
                    });
                }
            }
            for &t in targets {
                require(alive, t, WireType::Quantum)?;
            }
            for c in controls {
                require_alive(alive, c.wire)?;
            }
        }
        Gate::QRot {
            targets, controls, ..
        } => {
            for &t in targets {
                require(alive, t, WireType::Quantum)?;
            }
            for c in controls {
                require_alive(alive, c.wire)?;
            }
        }
        Gate::GPhase { controls, .. } => {
            for c in controls {
                require_alive(alive, c.wire)?;
            }
        }
        Gate::QInit { wire, .. } => {
            if alive.contains_key(wire) {
                return Err(CircuitError::AlreadyAlive {
                    wire: *wire,
                    context: ctx,
                });
            }
            alive.insert(*wire, WireType::Quantum);
        }
        Gate::CInit { wire, .. } => {
            if alive.contains_key(wire) {
                return Err(CircuitError::AlreadyAlive {
                    wire: *wire,
                    context: ctx,
                });
            }
            alive.insert(*wire, WireType::Classical);
        }
        Gate::QTerm { wire, .. } | Gate::QDiscard { wire } => {
            require(alive, *wire, WireType::Quantum)?;
            alive.remove(wire);
        }
        Gate::CTerm { wire, .. } | Gate::CDiscard { wire } => {
            require(alive, *wire, WireType::Classical)?;
            alive.remove(wire);
        }
        Gate::QMeas { wire } => {
            require(alive, *wire, WireType::Quantum)?;
            alive.insert(*wire, WireType::Classical);
        }
        Gate::CGate { target, inputs, .. } => {
            for &w in inputs {
                require(alive, w, WireType::Classical)?;
            }
            if alive.contains_key(target) {
                return Err(CircuitError::AlreadyAlive {
                    wire: *target,
                    context: ctx,
                });
            }
            alive.insert(*target, WireType::Classical);
        }
        Gate::Subroutine {
            id,
            inverted,
            inputs,
            outputs,
            controls,
            repetitions,
        } => {
            let def = db.get(*id)?;
            let (in_types, out_types) = if *inverted {
                (def.circuit.output_types(), def.circuit.input_types())
            } else {
                (def.circuit.input_types(), def.circuit.output_types())
            };
            if *repetitions > 1 && in_types != out_types {
                return Err(CircuitError::NotRepeatable {
                    name: def.name.clone(),
                });
            }
            if inputs.len() != in_types.len() || outputs.len() != out_types.len() {
                return Err(CircuitError::SubroutineArity {
                    name: def.name.clone(),
                    detail: format!(
                        "call has {} inputs / {} outputs, definition has {} / {}",
                        inputs.len(),
                        outputs.len(),
                        in_types.len(),
                        out_types.len()
                    ),
                });
            }
            for c in controls {
                require_alive(alive, c.wire)?;
            }
            for (&w, &t) in inputs.iter().zip(&in_types) {
                require(alive, w, t)?;
            }
            for &w in inputs {
                alive.remove(&w);
            }
            for (&w, &t) in outputs.iter().zip(&out_types) {
                if alive.contains_key(&w) {
                    return Err(CircuitError::AlreadyAlive {
                        wire: w,
                        context: ctx.clone(),
                    });
                }
                alive.insert(w, t);
            }
        }
        Gate::Comment { .. } => {}
    }
    Ok(())
}

fn check_distinct(gate: &Gate) -> Result<(), CircuitError> {
    // Collect the operational wires: targets and controls (and inputs for
    // classical gates / subroutines). Subroutine outputs are excluded —
    // inputs are consumed before outputs come alive, so ids may be reused.
    let mut wires: Vec<Wire> = Vec::new();
    match gate {
        Gate::QGate {
            targets, controls, ..
        }
        | Gate::QRot {
            targets, controls, ..
        } => {
            wires.extend(targets.iter().copied());
            wires.extend(controls.iter().map(|c| c.wire));
        }
        Gate::GPhase { controls, .. } => wires.extend(controls.iter().map(|c| c.wire)),
        Gate::CGate { inputs, .. } => wires.extend(inputs.iter().copied()),
        Gate::Subroutine {
            inputs, controls, ..
        } => {
            wires.extend(inputs.iter().copied());
            wires.extend(controls.iter().map(|c| c.wire));
        }
        _ => return Ok(()),
    }
    let mut sorted = wires.clone();
    sorted.sort_unstable();
    for pair in sorted.windows(2) {
        if pair[0] == pair[1] {
            return Err(CircuitError::DuplicateWire {
                wire: pair[0],
                context: gate.describe(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SubDef;
    use crate::gate::GateName;
    use crate::wire::Control;

    fn q(w: u32) -> (Wire, WireType) {
        (Wire(w), WireType::Quantum)
    }

    #[test]
    fn cnot_with_equal_wires_is_rejected_no_cloning() {
        let mut c = Circuit::with_inputs(vec![q(0)]);
        c.gates.push(Gate::cnot(Wire(0), Wire(0)));
        let err = c.validate_standalone().unwrap_err();
        assert!(matches!(err, CircuitError::DuplicateWire { .. }));
    }

    #[test]
    fn gate_on_dead_wire_is_rejected() {
        let mut c = Circuit::with_inputs(vec![q(0)]);
        c.gates.push(Gate::unary(GateName::H, Wire(7)));
        assert!(matches!(
            c.validate_standalone(),
            Err(CircuitError::DeadWire { .. })
        ));
    }

    #[test]
    fn ancilla_scope_is_tracked() {
        // init, use, term: valid.
        let mut c = Circuit::with_inputs(vec![q(0)]);
        c.gates.push(Gate::QInit {
            value: false,
            wire: Wire(1),
        });
        c.gates.push(Gate::cnot(Wire(1), Wire(0)));
        c.gates.push(Gate::QTerm {
            value: false,
            wire: Wire(1),
        });
        c.recompute_wire_bound();
        let report = c.validate_standalone().unwrap();
        assert_eq!(report.max_alive, 2);

        // Using the ancilla after termination is invalid.
        let mut c2 = c.clone();
        c2.gates.push(Gate::unary(GateName::H, Wire(1)));
        assert!(c2.validate_standalone().is_err());
    }

    #[test]
    fn outputs_must_match_live_wires() {
        let mut c = Circuit::with_inputs(vec![q(0)]);
        c.gates.push(Gate::QInit {
            value: false,
            wire: Wire(1),
        });
        // Wire 1 is alive but not declared as an output.
        assert!(matches!(
            c.validate_standalone(),
            Err(CircuitError::OutputMismatch { .. })
        ));
    }

    #[test]
    fn measurement_changes_wire_type() {
        let mut c = Circuit::with_inputs(vec![q(0)]);
        c.gates.push(Gate::QMeas { wire: Wire(0) });
        c.outputs = vec![(Wire(0), WireType::Classical)];
        assert!(c.validate_standalone().is_ok());

        // A quantum gate after measurement is a type error.
        let mut c2 = c.clone();
        c2.gates.push(Gate::unary(GateName::H, Wire(0)));
        assert!(matches!(
            c2.validate_standalone(),
            Err(CircuitError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn subroutine_call_checks_arity() {
        let mut db = CircuitDb::new();
        let body = Circuit::with_inputs(vec![q(0), q(1)]);
        let id = db.insert(SubDef {
            name: "f".into(),
            shape: "2".into(),
            circuit: body,
        });

        let mut c = Circuit::with_inputs(vec![q(0)]);
        c.gates.push(Gate::Subroutine {
            id,
            inverted: false,
            inputs: vec![Wire(0)],
            outputs: vec![Wire(0)],
            controls: vec![],
            repetitions: 1,
        });
        assert!(matches!(
            c.validate(&db),
            Err(CircuitError::SubroutineArity { .. })
        ));
    }

    #[test]
    fn repeated_subroutine_requires_matching_shapes() {
        let mut db = CircuitDb::new();
        // A subroutine that measures: input Qubit, output Bit.
        let mut body = Circuit::with_inputs(vec![q(0)]);
        body.gates.push(Gate::QMeas { wire: Wire(0) });
        body.outputs = vec![(Wire(0), WireType::Classical)];
        let id = db.insert(SubDef {
            name: "m".into(),
            shape: "1".into(),
            circuit: body,
        });

        let mut c = Circuit::with_inputs(vec![q(0)]);
        c.gates.push(Gate::Subroutine {
            id,
            inverted: false,
            inputs: vec![Wire(0)],
            outputs: vec![Wire(0)],
            controls: vec![],
            repetitions: 3,
        });
        c.outputs = vec![(Wire(0), WireType::Classical)];
        assert!(matches!(
            c.validate(&db),
            Err(CircuitError::NotRepeatable { .. })
        ));
    }

    #[test]
    fn negative_controls_are_accepted() {
        let mut c = Circuit::with_inputs(vec![q(0), q(1)]);
        c.gates.push(Gate::QGate {
            name: GateName::X,
            inverted: false,
            targets: vec![Wire(0)],
            controls: vec![Control::negative(Wire(1))],
        });
        assert!(c.validate_standalone().is_ok());
    }
}
