//! Inlining of boxed subcircuits.
//!
//! Hierarchical circuits keep each subroutine body stored once; simulation
//! and 2-D rendering need the flat gate sequence. [`inline_all`] expands
//! every subroutine call (including inverted and repeated calls, and calls
//! under controls), allocating fresh wires for subroutine-local ancillas.

use std::collections::HashMap;
use std::rc::Rc;

use crate::circuit::{BoxId, Circuit, CircuitDb};
use crate::error::CircuitError;
use crate::gate::Gate;
use crate::reverse::reverse_circuit;
use crate::wire::Wire;

/// Expands every boxed subcircuit call in `circuit`, producing an equivalent
/// flat circuit with no [`Gate::Subroutine`] gates.
///
/// Controls on a call are distributed onto every controllable gate of the
/// body; ancilla initializations and terminations inside the body are
/// control-neutral and pass through unchanged (they scope scratch space that
/// is provably disentangled, so controlling them is unnecessary).
///
/// # Errors
///
/// Returns an error if an inverted call's body is not reversible, if a call
/// under controls contains a non-controllable gate (e.g. a measurement), or
/// if a referenced subroutine is missing.
pub fn inline_all(db: &CircuitDb, circuit: &Circuit) -> Result<Circuit, CircuitError> {
    let _span = quipper_trace::span(quipper_trace::Phase::Compile, "flatten");
    let mut ctx = Inliner {
        db,
        flat: HashMap::new(),
    };
    let mut out = Circuit {
        inputs: circuit.inputs.clone(),
        gates: Vec::new(),
        outputs: Vec::new(),
        wire_bound: circuit.wire_bound,
    };
    let mut next = circuit.wire_bound;
    // Substitution applied to the remainder of the parent circuit: subroutine
    // calls may leave their results on different wire ids than the call
    // declared, and later gates must follow.
    let mut subst: HashMap<Wire, Wire> = HashMap::new();

    for gate in &circuit.gates {
        match gate {
            Gate::Subroutine {
                id,
                inverted,
                inputs,
                outputs,
                controls,
                repetitions,
            } => {
                // Substitute uses (inputs, controls) but *not* the declared
                // outputs: those are binders, possibly reusing earlier wire
                // ids (calls bind pass-through outputs to their input ids).
                let inputs: Vec<Wire> = inputs
                    .iter()
                    .map(|w| subst.get(w).copied().unwrap_or(*w))
                    .collect();
                let controls: Vec<crate::wire::Control> = controls
                    .iter()
                    .map(|c| crate::wire::Control {
                        wire: subst.get(&c.wire).copied().unwrap_or(c.wire),
                        positive: c.positive,
                    })
                    .collect();
                let body = ctx.flat_body(*id, *inverted)?;
                let mut cur_inputs = inputs;
                for _ in 0..*repetitions {
                    let landed = splice(&body, &cur_inputs, &controls, &mut next, &mut out.gates)?;
                    cur_inputs = landed;
                }
                for (decl, landed) in outputs.iter().zip(cur_inputs.iter()) {
                    if decl == landed {
                        subst.remove(decl);
                    } else {
                        subst.insert(*decl, *landed);
                    }
                }
            }
            g => out
                .gates
                .push(g.map_wires(&mut |w| subst.get(&w).copied().unwrap_or(w))),
        }
    }

    out.outputs = circuit
        .outputs
        .iter()
        .map(|&(w, t)| (subst.get(&w).copied().unwrap_or(w), t))
        .collect();
    out.wire_bound = next;
    Ok(out)
}

/// Streaming expansion of a gate slice: every subroutine call is expanded
/// in place (recursively) and each resulting primitive gate is passed to
/// `sink`, with fresh wires for subroutine-local ancillas allocated from
/// `next`. Used by backends that execute gates as they are generated (e.g.
/// the dynamic-lifting device), where no enclosing [`Circuit`] exists.
///
/// Declared outputs of calls are honored by returning a substitution that
/// the *caller* must apply to wires of any gates it feeds later (entries
/// map declared output wires to where the values actually landed).
///
/// # Errors
///
/// As for [`inline_all`].
pub fn expand_gates(
    db: &CircuitDb,
    gates: &[Gate],
    next: &mut u32,
    subst: &mut HashMap<Wire, Wire>,
    sink: &mut impl FnMut(&Gate),
) -> Result<(), CircuitError> {
    let mut ctx = Inliner {
        db,
        flat: HashMap::new(),
    };
    let mut buffer: Vec<Gate> = Vec::new();
    for gate in gates {
        match gate {
            Gate::Subroutine {
                id,
                inverted,
                inputs,
                outputs,
                controls,
                repetitions,
            } => {
                let inputs: Vec<Wire> = inputs
                    .iter()
                    .map(|w| subst.get(w).copied().unwrap_or(*w))
                    .collect();
                let controls: Vec<crate::wire::Control> = controls
                    .iter()
                    .map(|c| crate::wire::Control {
                        wire: subst.get(&c.wire).copied().unwrap_or(c.wire),
                        positive: c.positive,
                    })
                    .collect();
                let body = ctx.flat_body(*id, *inverted)?;
                let mut cur_inputs = inputs;
                for _ in 0..*repetitions {
                    buffer.clear();
                    let landed = splice(&body, &cur_inputs, &controls, next, &mut buffer)?;
                    for g in &buffer {
                        sink(g);
                    }
                    cur_inputs = landed;
                }
                for (decl, landed) in outputs.iter().zip(cur_inputs.iter()) {
                    if decl == landed {
                        subst.remove(decl);
                    } else {
                        subst.insert(*decl, *landed);
                    }
                }
            }
            g => {
                let g = g.map_wires(&mut |w| subst.get(&w).copied().unwrap_or(w));
                sink(&g);
            }
        }
    }
    Ok(())
}

struct Inliner<'a> {
    db: &'a CircuitDb,
    /// Fully inlined bodies, memoized per (subroutine, inverted).
    flat: HashMap<(BoxId, bool), Rc<Circuit>>,
}

impl<'a> Inliner<'a> {
    fn flat_body(&mut self, id: BoxId, inverted: bool) -> Result<Rc<Circuit>, CircuitError> {
        if let Some(c) = self.flat.get(&(id, inverted)) {
            return Ok(Rc::clone(c));
        }
        let def = self.db.get(id)?;
        let body = if inverted {
            reverse_circuit(&def.circuit)?
        } else {
            def.circuit.clone()
        };
        let flat = Rc::new(inline_all(self.db, &body)?);
        self.flat.insert((id, inverted), Rc::clone(&flat));
        Ok(flat)
    }
}

/// Appends a copy of `body` to `out`, binding `body.inputs` to `actual`
/// wires, allocating fresh wires for body-local allocations from `next`, and
/// applying `controls` to every gate. Returns the wires on which the body's
/// outputs landed.
fn splice(
    body: &Circuit,
    actual: &[Wire],
    controls: &[crate::wire::Control],
    next: &mut u32,
    out: &mut Vec<Gate>,
) -> Result<Vec<Wire>, CircuitError> {
    let mut map: HashMap<Wire, Wire> = HashMap::new();
    if body.inputs.len() != actual.len() {
        return Err(CircuitError::SubroutineArity {
            name: "<inlined>".into(),
            detail: format!("{} formals vs {} actuals", body.inputs.len(), actual.len()),
        });
    }
    for (&(formal, _), &a) in body.inputs.iter().zip(actual) {
        map.insert(formal, a);
    }
    for gate in &body.gates {
        let remapped = gate.map_wires(&mut |w| {
            *map.entry(w).or_insert_with(|| {
                let fresh = Wire(*next);
                *next += 1;
                fresh
            })
        });
        out.push(remapped.with_controls(controls)?);
    }
    Ok(body.outputs.iter().map(|(w, _)| map[w]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SubDef;
    use crate::gate::GateName;
    use crate::wire::{Control, WireType};

    fn q(w: u32) -> (Wire, WireType) {
        (Wire(w), WireType::Quantum)
    }

    fn ancilla_sub(db: &mut CircuitDb) -> BoxId {
        // Input one qubit; use a local ancilla; flip input twice.
        let mut body = Circuit::with_inputs(vec![q(0)]);
        body.gates.push(Gate::QInit {
            value: false,
            wire: Wire(1),
        });
        body.gates.push(Gate::cnot(Wire(1), Wire(0)));
        body.gates.push(Gate::cnot(Wire(0), Wire(1)));
        body.gates.push(Gate::cnot(Wire(1), Wire(0)));
        body.gates.push(Gate::QTerm {
            value: false,
            wire: Wire(1),
        });
        body.recompute_wire_bound();
        db.insert(SubDef {
            name: "anc".into(),
            shape: "".into(),
            circuit: body,
        })
    }

    #[test]
    fn inline_expands_and_validates() {
        let mut db = CircuitDb::new();
        let id = ancilla_sub(&mut db);
        let mut main = Circuit::with_inputs(vec![q(0), q(1)]);
        main.gates.push(Gate::Subroutine {
            id,
            inverted: false,
            inputs: vec![Wire(1)],
            outputs: vec![Wire(1)],
            controls: vec![],
            repetitions: 2,
        });
        let flat = inline_all(&db, &main).unwrap();
        assert!(flat
            .gates
            .iter()
            .all(|g| !matches!(g, Gate::Subroutine { .. })));
        // 2 repetitions × 5 gates.
        assert_eq!(flat.gates.len(), 10);
        flat.validate_standalone().unwrap();
    }

    #[test]
    fn inline_applies_controls_but_not_to_ancilla_scopes() {
        let mut db = CircuitDb::new();
        let id = ancilla_sub(&mut db);
        let mut main = Circuit::with_inputs(vec![q(0), q(1)]);
        main.gates.push(Gate::Subroutine {
            id,
            inverted: false,
            inputs: vec![Wire(1)],
            outputs: vec![Wire(1)],
            controls: vec![Control::positive(Wire(0))],
            repetitions: 1,
        });
        let flat = inline_all(&db, &main).unwrap();
        flat.validate_standalone().unwrap();
        for g in &flat.gates {
            match g {
                Gate::QGate { controls, .. } => {
                    assert!(controls.iter().any(|c| c.wire == Wire(0) && c.positive));
                }
                Gate::QInit { .. } | Gate::QTerm { .. } => {}
                other => panic!("unexpected gate {other:?}"),
            }
        }
    }

    #[test]
    fn inline_inverted_call_reverses_body() {
        let mut db = CircuitDb::new();
        // Body: H then T on one qubit.
        let mut body = Circuit::with_inputs(vec![q(0)]);
        body.gates.push(Gate::unary(GateName::H, Wire(0)));
        body.gates.push(Gate::unary(GateName::T, Wire(0)));
        let id = db.insert(SubDef {
            name: "ht".into(),
            shape: "".into(),
            circuit: body,
        });

        let mut main = Circuit::with_inputs(vec![q(0)]);
        main.gates.push(Gate::Subroutine {
            id,
            inverted: true,
            inputs: vec![Wire(0)],
            outputs: vec![Wire(0)],
            controls: vec![],
            repetitions: 1,
        });
        let flat = inline_all(&db, &main).unwrap();
        // Reversed: T† then H.
        match &flat.gates[0] {
            Gate::QGate {
                name: GateName::T,
                inverted,
                ..
            } => assert!(*inverted),
            other => panic!("unexpected {other:?}"),
        }
        match &flat.gates[1] {
            Gate::QGate {
                name: GateName::H, ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_boxes_inline_recursively() {
        let mut db = CircuitDb::new();
        let inner = ancilla_sub(&mut db);
        let mut mid = Circuit::with_inputs(vec![q(0)]);
        mid.gates.push(Gate::Subroutine {
            id: inner,
            inverted: false,
            inputs: vec![Wire(0)],
            outputs: vec![Wire(0)],
            controls: vec![],
            repetitions: 3,
        });
        let mid_id = db.insert(SubDef {
            name: "mid".into(),
            shape: "".into(),
            circuit: mid,
        });

        let mut main = Circuit::with_inputs(vec![q(0)]);
        main.gates.push(Gate::Subroutine {
            id: mid_id,
            inverted: false,
            inputs: vec![Wire(0)],
            outputs: vec![Wire(0)],
            controls: vec![],
            repetitions: 2,
        });
        let flat = inline_all(&db, &main).unwrap();
        assert_eq!(flat.gates.len(), 30);
        flat.validate_standalone().unwrap();
        // Gate count of the flat circuit agrees with hierarchical counting.
        let flat_count = crate::count::count(&CircuitDb::new(), &flat);
        let hier_count = crate::count::count(&db, &main);
        assert_eq!(flat_count.counts, hier_count.counts);
        assert_eq!(flat_count.qubits_in_circuit, hier_count.qubits_in_circuit);
    }
}
