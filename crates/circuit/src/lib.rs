//! Hierarchical quantum circuit intermediate representation.
//!
//! This crate provides the circuit model underlying the `quipper` EDSL — a Rust
//! reproduction of the circuit model described in *Quipper: A Scalable Quantum
//! Programming Language* (Green, Lumsdaine, Ross, Selinger, Valiron; PLDI 2013),
//! Section 4.2. The model extends the textbook unitary circuit model with:
//!
//! * **Explicit qubit initialization and assertive termination** (`QInit`,
//!   `QTerm`), which make ancilla *scopes* explicit (paper §4.2.1–4.2.2).
//! * **Mixed classical/quantum circuits**: classical wires, measurement,
//!   classical gates and classically-controlled quantum gates (paper §4.2.3).
//! * **Hierarchical (boxed) subcircuits** (paper §4.4.4), allowing circuits
//!   with trillions of gates to be represented, counted and manipulated in
//!   memory without ever being expanded.
//!
//! The main types are [`Circuit`] (a flat gate list with typed input/output
//! arities), [`CircuitDb`] (a store of named boxed subcircuits) and
//! [`BCircuit`] (a circuit together with the database it references).
//!
//! # Example
//!
//! ```
//! use quipper_circuit::{Circuit, Gate, GateName, Wire, WireType};
//!
//! // Build a Bell-pair circuit by hand (the `quipper` crate provides a much
//! // more convenient builder on top of this IR).
//! let a = Wire(0);
//! let b = Wire(1);
//! let mut circ = Circuit::with_inputs(vec![(a, WireType::Quantum), (b, WireType::Quantum)]);
//! circ.gates.push(Gate::unary(GateName::H, a));
//! circ.gates.push(Gate::cnot(b, a));
//! circ.outputs = circ.inputs.clone();
//! circ.validate_standalone().unwrap();
//! assert_eq!(circ.gates.len(), 2);
//! ```

pub mod commute;
pub mod count;
pub mod error;
pub mod fingerprint;
pub mod flatten;
pub mod gate;
pub mod pauli;
pub mod print;
pub mod qasm;
pub mod qelib;
pub mod resources;
pub mod reverse;
pub mod validate;
pub mod wire;

mod circuit;

pub use circuit::{BCircuit, BoxId, Circuit, CircuitDb, SubDef};
pub use count::{GateClass, GateCount};
pub use error::CircuitError;
pub use gate::{ClassKind, Gate, GateName};
pub use wire::{Control, Wire, WireType};
