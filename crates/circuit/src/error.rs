//! Error types for circuit construction, validation and manipulation.

use std::error::Error;
use std::fmt;

use crate::wire::{Wire, WireType};

/// Errors arising from malformed circuits or invalid circuit operations.
///
/// Because the host language lacks linear types, properties such as
/// non-duplication of quantum data are checked at run time (paper §4.1); this
/// type reports violations of those checks.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate refers to a wire that is not currently alive.
    DeadWire { wire: Wire, context: String },
    /// A gate uses the same wire more than once (targets and controls must be
    /// pairwise distinct) — this would violate the no-cloning property.
    DuplicateWire { wire: Wire, context: String },
    /// A wire has the wrong type for its use (e.g. a quantum gate applied to
    /// a classical wire).
    TypeMismatch {
        wire: Wire,
        expected: WireType,
        found: WireType,
        context: String,
    },
    /// An initialization gate re-uses a wire identifier that is still alive.
    AlreadyAlive { wire: Wire, context: String },
    /// The declared outputs of a circuit do not match the wires actually
    /// alive at the end of the gate list.
    OutputMismatch { detail: String },
    /// A subroutine call does not match its definition's arity or types.
    SubroutineArity { name: String, detail: String },
    /// A repeated subroutine's input and output shapes differ, so it cannot
    /// be iterated.
    NotRepeatable { name: String },
    /// The circuit contains a gate with no inverse (e.g. a measurement), so
    /// it cannot be reversed.
    NotReversible { gate: String },
    /// A gate that cannot be controlled appeared under nontrivial controls
    /// (e.g. a measurement).
    NotControllable { gate: String },
    /// A referenced boxed subroutine does not exist in the database.
    UnknownSubroutine { id: usize },
}

impl CircuitError {
    /// The stable diagnostic code of this error.
    ///
    /// Runtime circuit errors use the `QL1xx` range, aligned with the
    /// `QL0xx` codes of the `quipper-lint` static passes, so runtime and
    /// static findings print uniformly and can be filtered by the same
    /// tooling. Codes are stable across releases.
    pub fn code(&self) -> &'static str {
        match self {
            CircuitError::DeadWire { .. } => "QL101",
            CircuitError::DuplicateWire { .. } => "QL102",
            CircuitError::TypeMismatch { .. } => "QL103",
            CircuitError::AlreadyAlive { .. } => "QL104",
            CircuitError::OutputMismatch { .. } => "QL105",
            CircuitError::SubroutineArity { .. } => "QL106",
            CircuitError::NotRepeatable { .. } => "QL107",
            CircuitError::NotReversible { .. } => "QL108",
            CircuitError::NotControllable { .. } => "QL109",
            CircuitError::UnknownSubroutine { .. } => "QL110",
        }
    }
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            CircuitError::DeadWire { wire, context } => {
                write!(f, "wire {wire} is not alive (in {context})")
            }
            CircuitError::DuplicateWire { wire, context } => {
                write!(f, "wire {wire} used more than once in a single gate (in {context}); this would clone quantum data")
            }
            CircuitError::TypeMismatch {
                wire,
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "wire {wire} has type {found}, expected {expected} (in {context})"
                )
            }
            CircuitError::AlreadyAlive { wire, context } => {
                write!(
                    f,
                    "initialization of wire {wire} which is already alive (in {context})"
                )
            }
            CircuitError::OutputMismatch { detail } => {
                write!(f, "circuit outputs do not match live wires: {detail}")
            }
            CircuitError::SubroutineArity { name, detail } => {
                write!(
                    f,
                    "subroutine \"{name}\" called with mismatched arity: {detail}"
                )
            }
            CircuitError::NotRepeatable { name } => {
                write!(f, "subroutine \"{name}\" has different input and output shapes and cannot be repeated")
            }
            CircuitError::NotReversible { gate } => {
                write!(f, "gate {gate} has no inverse; circuit is not reversible")
            }
            CircuitError::NotControllable { gate } => {
                write!(f, "gate {gate} cannot be controlled")
            }
            CircuitError::UnknownSubroutine { id } => {
                write!(f, "reference to unknown subroutine id {id}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_code_then_lowercase_without_trailing_punctuation() {
        let e = CircuitError::DeadWire {
            wire: Wire(4),
            context: "test".into(),
        };
        let s = e.to_string();
        assert!(s.starts_with("[QL101] wire 4"), "{s}");
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_codes_are_stable_and_unique() {
        let variants = [
            CircuitError::DeadWire {
                wire: Wire(0),
                context: String::new(),
            },
            CircuitError::DuplicateWire {
                wire: Wire(0),
                context: String::new(),
            },
            CircuitError::TypeMismatch {
                wire: Wire(0),
                expected: WireType::Quantum,
                found: WireType::Classical,
                context: String::new(),
            },
            CircuitError::AlreadyAlive {
                wire: Wire(0),
                context: String::new(),
            },
            CircuitError::OutputMismatch {
                detail: String::new(),
            },
            CircuitError::SubroutineArity {
                name: String::new(),
                detail: String::new(),
            },
            CircuitError::NotRepeatable {
                name: String::new(),
            },
            CircuitError::NotReversible {
                gate: String::new(),
            },
            CircuitError::NotControllable {
                gate: String::new(),
            },
            CircuitError::UnknownSubroutine { id: 0 },
        ];
        let mut codes: Vec<&str> = variants.iter().map(|e| e.code()).collect();
        assert_eq!(codes[0], "QL101");
        assert_eq!(codes[9], "QL110");
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), variants.len());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
