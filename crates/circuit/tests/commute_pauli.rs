//! Property tests tying the structural commutation oracle (`commute.rs`) to
//! the Pauli-string algebra (`pauli.rs`) on the gate classes both understand.
//!
//! Two directions are checked:
//!
//! * On single-target uncontrolled Pauli gates the two notions coincide
//!   *exactly*: `commutes(a, b)` iff the Pauli strings commute under the
//!   symplectic form.
//! * Against arbitrary Clifford+T gates the structural oracle must be sound:
//!   whenever it claims a Pauli gate commutes with `g`, conjugating the
//!   Pauli string by `g` (when the algebra can) must fix it — and whenever
//!   conjugation provably *moves* the string, the oracle must not claim
//!   commutation.

use proptest::prelude::*;
use quipper_circuit::commute::commutes;
use quipper_circuit::pauli::{Pauli, PauliString};
use quipper_circuit::{Control, Gate, GateName, Wire};

fn pauli_of(which: u8) -> (GateName, Pauli) {
    match which % 3 {
        0 => (GateName::X, Pauli::X),
        1 => (GateName::Y, Pauli::Y),
        _ => (GateName::Z, Pauli::Z),
    }
}

fn pauli_gate(wire: u32, which: u8) -> (Gate, PauliString) {
    let (name, p) = pauli_of(which);
    (
        Gate::unary(name, Wire(wire)),
        PauliString::single(Wire(wire), p),
    )
}

/// A small Clifford+T vocabulary over wires `0..4`.
fn clifford_t_gate(kind: u8, w1: u32, w2: u32) -> Gate {
    let a = Wire(w1 % 4);
    let b = Wire(if w1 % 4 == w2 % 4 {
        (w2 + 1) % 4
    } else {
        w2 % 4
    });
    match kind % 12 {
        0 => Gate::unary(GateName::H, a),
        1 => Gate::unary(GateName::S, a),
        2 => Gate::QGate {
            name: GateName::S,
            inverted: true,
            targets: vec![a],
            controls: vec![],
        },
        3 => Gate::unary(GateName::X, a),
        4 => Gate::unary(GateName::Z, a),
        5 => Gate::unary(GateName::T, a),
        6 => Gate::cnot(a, b),
        7 => Gate::QGate {
            name: GateName::X,
            inverted: false,
            targets: vec![a],
            controls: vec![Control::negative(b)],
        },
        8 => Gate::QGate {
            name: GateName::Z,
            inverted: false,
            targets: vec![a],
            controls: vec![Control::positive(b)],
        },
        9 => Gate::QGate {
            name: GateName::Swap,
            inverted: false,
            targets: vec![a, b],
            controls: vec![],
        },
        10 => Gate::QRot {
            name: "exp(-i%Z)".into(),
            inverted: false,
            angle: 0.37,
            targets: vec![a],
            controls: vec![],
        },
        _ => Gate::QRot {
            name: "Ry(%)".into(),
            inverted: false,
            angle: 0.37,
            targets: vec![a],
            controls: vec![],
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// On single-target uncontrolled Pauli gates, structural and algebraic
    /// commutation agree exactly.
    #[test]
    fn pauli_pairs_agree_exactly(
        wa in 0u32..4, ka in 0u8..3,
        wb in 0u32..4, kb in 0u8..3,
    ) {
        let (ga, sa) = pauli_gate(wa, ka);
        let (gb, sb) = pauli_gate(wb, kb);
        prop_assert_eq!(
            commutes(&ga, &gb),
            sa.commutes_with(&sb),
            "structural vs symplectic disagree: {} / {}",
            ga.describe(),
            gb.describe()
        );
    }

    /// If the structural oracle claims a Pauli gate commutes with `g`, and
    /// the algebra can conjugate through `g`, conjugation must fix the
    /// string (gP = Pg ⇒ gPg† = P).
    #[test]
    fn structural_commute_implies_conjugation_fixes(
        wp in 0u32..4, kp in 0u8..3,
        kind in 0u8..12, w1 in 0u32..4, w2 in 0u32..4,
    ) {
        let (pg, s) = pauli_gate(wp, kp);
        let g = clifford_t_gate(kind, w1, w2);
        if commutes(&pg, &g) {
            if let Some(conj) = s.conjugate(&g) {
                prop_assert_eq!(
                    conj, s,
                    "commutes({}, {}) claimed, but conjugation moves the string",
                    pg.describe(), g.describe()
                );
            }
        }
    }

    /// If conjugation provably *moves* the Pauli string, the structural
    /// oracle must not claim commutation — soundness of `commutes` against
    /// the exact algebra.
    #[test]
    fn moved_strings_never_claim_commutation(
        wp in 0u32..4, kp in 0u8..3,
        kind in 0u8..12, w1 in 0u32..4, w2 in 0u32..4,
    ) {
        let (pg, s) = pauli_gate(wp, kp);
        let g = clifford_t_gate(kind, w1, w2);
        if let Some(conj) = s.conjugate(&g) {
            if conj != s {
                prop_assert!(
                    !commutes(&pg, &g),
                    "conjugation moves {} through {} but commutes() claims they commute",
                    pg.describe(), g.describe()
                );
            }
        }
    }
}
