//! Seeded fault injection: a [`Backend`] wrapper that fails shots and adds
//! latency spikes with configured probabilities.
//!
//! The service's graceful-degradation story (retry, backoff, zero lost
//! jobs) is only credible if it can be demonstrated under faults; this
//! wrapper makes faults a reproducible input instead of an operational
//! anecdote. Draws are a pure function of `(seed, draw counter)`, so a
//! given configuration injects a deterministic fault *sequence* — the
//! per-shot result seeds are untouched, which is why a retried job remains
//! bit-identical to a fault-free run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use quipper_exec::{Backend, Capabilities, CircuitProfile, EngineConfig, ExecError};
use quipper_trace::names;

use crate::unit_draw;

/// Fault-injection parameters.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability that a shot attempt fails with a transient fault.
    pub fail_prob: f64,
    /// Probability that a (non-faulted) shot is delayed by `spike`.
    pub spike_prob: f64,
    /// The injected latency spike.
    pub spike: Duration,
    /// Seed for the deterministic draw sequence.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            fail_prob: 0.0,
            spike_prob: 0.0,
            spike: Duration::from_millis(1),
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// A config that only injects transient failures.
    pub fn failing(fail_prob: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            fail_prob,
            seed,
            ..FaultConfig::default()
        }
    }
}

/// A [`Backend`] wrapper injecting transient faults and latency spikes in
/// front of an inner backend. Routing is transparent: the wrapper reports
/// the inner backend's name, capabilities, and admission decisions.
pub struct FaultInjector {
    inner: Arc<dyn Backend>,
    config: FaultConfig,
    draws: AtomicU64,
    injected: AtomicU64,
}

impl FaultInjector {
    /// Wraps one backend.
    pub fn new(inner: Arc<dyn Backend>, config: FaultConfig) -> FaultInjector {
        FaultInjector {
            inner,
            config,
            draws: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Wraps every default backend of `engine_config`, giving each wrapper
    /// a distinct seed stream. The result slots straight into
    /// [`Engine::with_backends`](quipper_exec::Engine::with_backends).
    pub fn wrap_default_backends(
        engine_config: &EngineConfig,
        config: FaultConfig,
    ) -> Vec<Arc<dyn Backend>> {
        quipper_exec::Engine::default_backends(engine_config)
            .into_iter()
            .enumerate()
            .map(|(i, inner)| {
                let per_backend = FaultConfig {
                    seed: config.seed.wrapping_add(0x5151_0000 + i as u64),
                    ..config
                };
                Arc::new(FaultInjector::new(inner, per_backend)) as Arc<dyn Backend>
            })
            .collect()
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl Backend for FaultInjector {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn admit(&self, profile: &CircuitProfile) -> Result<(), String> {
        self.inner.admit(profile)
    }

    fn run_shot(
        &self,
        plan: &quipper_exec::Plan,
        inputs: &[bool],
        seed: u64,
    ) -> Result<Vec<bool>, ExecError> {
        let n = self.draws.fetch_add(1, Ordering::Relaxed);
        let draw = unit_draw(self.config.seed ^ n.wrapping_mul(2));
        if draw < self.config.fail_prob {
            let k = self.injected.fetch_add(1, Ordering::Relaxed) + 1;
            quipper_trace::count(names::SERVE_FAULTS_INJECTED, 1);
            return Err(ExecError::Transient {
                backend: self.inner.name(),
                detail: format!("injected fault #{k}"),
            });
        }
        if unit_draw(self.config.seed ^ n.wrapping_mul(2).wrapping_add(1)) < self.config.spike_prob
        {
            std::thread::sleep(self.config.spike);
        }
        self.inner.run_shot(plan, inputs, seed)
    }

    fn make_lifter(
        &self,
        seed: u64,
    ) -> Option<std::rc::Rc<std::cell::RefCell<dyn quipper::Lifter>>> {
        self.inner.make_lifter(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quipper::{Circ, Qubit};
    use quipper_exec::{ClassicalBackend, Engine, Job};

    fn parity() -> quipper_circuit::BCircuit {
        Circ::build(
            &(vec![false; 2], false),
            |c, (xs, t): (Vec<Qubit>, Qubit)| {
                for &x in &xs {
                    c.cnot(t, x);
                }
                let ms: Vec<_> = xs.into_iter().map(|x| c.measure(x)).collect();
                (ms, c.measure(t))
            },
        )
    }

    #[test]
    fn injects_transient_faults_at_roughly_the_configured_rate() {
        let injector =
            FaultInjector::new(Arc::new(ClassicalBackend), FaultConfig::failing(0.25, 99));
        let engine = Engine::with_backends(EngineConfig::default(), vec![]);
        let plan = {
            // Compile through a throwaway engine's cache to get a Plan.
            let bc = parity();
            let _ = &engine;
            quipper_exec::PlanCache::new()
                .get_or_compile(&bc)
                .unwrap()
                .0
        };
        let mut faults = 0;
        for shot in 0..400 {
            match injector.run_shot(&plan, &[true, false, false], shot) {
                Ok(bits) => assert_eq!(bits, vec![true, false, true]),
                Err(e) => {
                    assert!(e.is_transient(), "unexpected error {e}");
                    faults += 1;
                }
            }
        }
        assert_eq!(faults, injector.injected());
        // 400 draws at p = 0.25: the seeded sequence lands well inside
        // (50, 150); exact value pinned by the seed.
        assert!((50..150).contains(&faults), "faults = {faults}");
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = || {
            let injector =
                FaultInjector::new(Arc::new(ClassicalBackend), FaultConfig::failing(0.3, 1234));
            let plan = quipper_exec::PlanCache::new()
                .get_or_compile(&parity())
                .unwrap()
                .0;
            (0..64)
                .map(|shot| {
                    injector
                        .run_shot(&plan, &[false, false, false], shot)
                        .is_err()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wrapped_engine_still_routes_and_runs() {
        let config = EngineConfig::default();
        let backends = FaultInjector::wrap_default_backends(&config, FaultConfig::failing(0.0, 0));
        let engine = Engine::with_backends(config, backends);
        let bc = parity();
        let result = engine
            .run(&Job::new(&bc).inputs(vec![true, true, false]).shots(20))
            .unwrap();
        assert_eq!(result.report.backend, "classical");
        assert_eq!(result.histogram.len(), 1);
    }
}
