//! The circuit catalog: named circuits clients can submit by name.
//!
//! The wire protocol is line-oriented JSON, which is a poor fit for
//! shipping whole circuits; instead the served binary exposes the same
//! suite the repository's examples and `quipper-lint` exercise, keyed by
//! name. Built circuits are memoized behind `Arc`, so a thousand
//! submissions of `"ghz5"` share one `BCircuit` (and, via its fingerprint,
//! one compiled plan).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use quipper::classical::{synth, Dag};
use quipper::qft::qft;
use quipper::{Circ, Qubit};
use quipper_algorithms::grover::{grover_circuit, optimal_iterations};
use quipper_circuit::BCircuit;

/// A named circuit in the catalog.
type Entry = (&'static str, fn() -> BCircuit);

/// The named circuits served over the wire, with build-once memoization.
pub struct Catalog {
    entries: Vec<Entry>,
    built: Mutex<HashMap<&'static str, Arc<BCircuit>>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// The standard catalog, mirroring the example suite.
    pub fn new() -> Catalog {
        Catalog {
            entries: vec![
                ("teleportation", teleportation),
                ("ghz3", ghz3),
                ("ghz5", ghz5),
                ("parity4", parity4),
                ("grover3", grover3),
                ("qft4", qft4),
            ],
            built: Mutex::new(HashMap::new()),
        }
    }

    /// The catalog's circuit names, in listing order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(name, _)| *name).collect()
    }

    /// Builds (or reuses) the circuit called `name`.
    pub fn get(&self, name: &str) -> Option<Arc<BCircuit>> {
        let (key, build) = *self.entries.iter().find(|(n, _)| *n == name)?;
        let mut built = self.built.lock().unwrap();
        Some(Arc::clone(
            built.entry(key).or_insert_with(|| Arc::new(build())),
        ))
    }

    /// The number of input wires `name`'s circuit expects (for default
    /// all-false inputs), or `None` for unknown names.
    pub fn input_arity(&self, name: &str) -> Option<usize> {
        Some(self.get(name)?.main.inputs.len())
    }
}

/// The teleportation circuit of `examples/teleportation.rs` (θ = 0.7),
/// classically-controlled corrections included.
fn teleportation() -> BCircuit {
    let mut c = Circ::new();
    let psi = c.qinit_bit(false);
    c.rot("Ry(%)", 0.7, psi);
    let a = c.qinit_bit(false);
    let b = c.qinit_bit(false);
    c.hadamard(a);
    c.cnot(b, a);
    c.cnot(a, psi);
    c.hadamard(psi);
    let m1 = c.measure_bit(psi);
    let m2 = c.measure_bit(a);
    c.qnot_ctrl(b, &m2);
    c.gate_ctrl(quipper::GateName::Z, b, &m1);
    c.cdiscard(m1);
    c.cdiscard(m2);
    c.rot("Ry(%)", -0.7, b);
    let check = c.measure_bit(b);
    c.finish(&check)
}

fn ghz(n: usize) -> BCircuit {
    Circ::build(&vec![false; n], |c, qs: Vec<Qubit>| {
        c.hadamard(qs[0]);
        for w in qs.windows(2) {
            c.cnot(w[1], w[0]);
        }
        qs.into_iter().map(|q| c.measure(q)).collect::<Vec<_>>()
    })
}

fn ghz3() -> BCircuit {
    ghz(3)
}

fn ghz5() -> BCircuit {
    ghz(5)
}

/// Four-bit parity into a target, via `classical_to_reversible`.
fn parity4() -> BCircuit {
    let parity = Dag::build(4, |b, xs| {
        vec![xs.iter().fold(b.constant(false), |acc, x| acc ^ x.clone())]
    });
    Circ::build(
        &(vec![false; 4], false),
        |c, (xs, t): (Vec<Qubit>, Qubit)| {
            synth::classical_to_reversible(c, &parity, &xs, &[t]);
            (xs, t)
        },
    )
}

/// Grover search for one marked element among 2^3.
fn grover3() -> BCircuit {
    let dag = Dag::build(3, |_, xs| vec![&(&xs[0] & &!(&xs[1])) & &xs[2]]);
    grover_circuit(&dag, optimal_iterations(3, 1))
}

/// QFT over four qubits, then measure.
fn qft4() -> BCircuit {
    Circ::build(&vec![false; 4], |c, qs: Vec<Qubit>| {
        qft(c, &qs);
        qs.into_iter().map(|q| c.measure(q)).collect::<Vec<_>>()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_builds_and_memoizes() {
        let catalog = Catalog::new();
        for name in catalog.names() {
            let first = catalog.get(name).unwrap();
            let second = catalog.get(name).unwrap();
            assert!(Arc::ptr_eq(&first, &second), "{name} should memoize");
        }
        assert!(catalog.get("no-such-circuit").is_none());
    }

    #[test]
    fn arities_match_the_builders() {
        let catalog = Catalog::new();
        assert_eq!(catalog.input_arity("ghz3"), Some(3));
        assert_eq!(catalog.input_arity("parity4"), Some(5));
        // Teleportation allocates its own qubits: no inputs.
        assert_eq!(catalog.input_arity("teleportation"), Some(0));
    }
}
