//! Retry policy: exponential backoff with deterministic jitter.
//!
//! Transient backend faults are retried up to `max_attempts` times. The
//! backoff for attempt `k` doubles from `base` up to `cap`, and the actual
//! sleep is drawn uniformly from the upper half of that window — jitter
//! de-synchronizes retrying clients, and deriving it from `(seed, attempt)`
//! with SplitMix64 keeps every schedule reproducible.

use std::time::Duration;

use crate::unit_draw;

/// When and how often to retry transient faults.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per job (first run included). `1` disables retry.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(250),
        }
    }
}

impl RetryPolicy {
    /// Whether a transient failure on attempt `attempt` (1-based) should be
    /// retried.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }

    /// The backoff to sleep after failed attempt `attempt` (1-based):
    /// exponential in the attempt number, capped, with deterministic jitter
    /// in the window's upper half.
    pub fn backoff(&self, attempt: u32, seed: u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let window = exp.min(self.cap);
        let jitter = unit_draw(seed ^ u64::from(attempt).rotate_left(32));
        window.mul_f64(0.5 + 0.5 * jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
        };
        let b1 = p.backoff(1, 42);
        let b3 = p.backoff(3, 42);
        let b7 = p.backoff(7, 42);
        assert!(b1 >= Duration::from_millis(5) && b1 <= Duration::from_millis(10));
        assert!(b3 > b1);
        // Attempt 7 would be 640ms exponentially; the cap bounds it.
        assert!(b7 <= Duration::from_millis(100));
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_varies_across_seeds() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(2, 7), p.backoff(2, 7));
        let distinct: std::collections::HashSet<Duration> =
            (0..16).map(|seed| p.backoff(2, seed)).collect();
        assert!(distinct.len() > 8, "jitter should spread across seeds");
    }

    #[test]
    fn attempt_budget() {
        let p = RetryPolicy::default(); // 4 attempts
        assert!(p.should_retry(1));
        assert!(p.should_retry(3));
        assert!(!p.should_retry(4));
    }
}
