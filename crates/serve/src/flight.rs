//! Flight recorder: always-on, bounded capture of per-job event timelines.
//!
//! Every admitted job carries a [`FlightLog`] that stamps each lifecycle
//! phase (admit → queue → compile/coalesce → shots → terminal, plus one
//! stamp per retry) against the job's admission instant. When the job
//! reaches a terminal state the finished timeline is pushed into the
//! service's [`FlightRecorder`] — a fixed-capacity ring, so the recorder's
//! memory is bounded no matter how many jobs flow through. The dump turns
//! "job 4132 was slow" into an answerable question: the timeline shows
//! where the time went, phase by phase.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::service::JobId;

/// Lifecycle phase tags used by the recorder. Kept as constants so tests
/// and the wire protocol agree on spelling.
pub mod phases {
    /// Admission decision made; the timeline's epoch.
    pub const ADMIT: &str = "admit";
    /// Waiting in the admission queue.
    pub const QUEUE: &str = "queue";
    /// Leading a plan compile.
    pub const COMPILE: &str = "compile";
    /// Coalesced onto a concurrent identical compile.
    pub const COALESCE: &str = "coalesce";
    /// Executing shots (one stamp per attempt).
    pub const SHOTS: &str = "shots";
    /// Backing off before a retry attempt.
    pub const RETRY: &str = "retry";
}

/// One stamped event in a job's timeline.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Phase tag (see [`phases`]; terminal events use the job state's tag).
    pub phase: &'static str,
    /// Offset from the job's admission.
    pub at: Duration,
    /// Optional human-readable annotation (attempt number, error text).
    pub detail: Option<String>,
}

/// A job's per-lifecycle event log, stamped as the job moves through the
/// service. Thread-safe: admission, workers, and finalization stamp from
/// different threads.
#[derive(Debug)]
pub struct FlightLog {
    epoch: Instant,
    events: Mutex<Vec<FlightEvent>>,
}

impl Default for FlightLog {
    fn default() -> Self {
        FlightLog::new()
    }
}

impl FlightLog {
    /// A fresh log whose epoch is now, pre-stamped with the `admit` phase.
    pub fn new() -> FlightLog {
        let log = FlightLog {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        };
        log.stamp(phases::ADMIT, None);
        log
    }

    /// Record `phase` at the current offset.
    pub fn stamp(&self, phase: &'static str, detail: Option<String>) {
        self.events.lock().unwrap().push(FlightEvent {
            phase,
            at: self.epoch.elapsed(),
            detail,
        });
    }

    /// Time since admission.
    pub fn elapsed(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Offset of the first stamp of `phase`, if it happened.
    pub fn first_at(&self, phase: &str) -> Option<Duration> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .find(|e| e.phase == phase)
            .map(|e| e.at)
    }

    /// Snapshot the events stamped so far (in stamp order).
    pub fn events(&self) -> Vec<FlightEvent> {
        self.events.lock().unwrap().clone()
    }
}

/// A finished (or in-flight) job timeline, as captured by the recorder.
#[derive(Clone, Debug)]
pub struct FlightTimeline {
    pub id: JobId,
    pub tenant: String,
    pub label: String,
    /// Terminal state tag, or the current state for live dumps.
    pub state: String,
    /// Stamped events in order. Spans are derived: each event lasts until
    /// the next one's offset (see [`FlightTimeline::spans`]).
    pub events: Vec<FlightEvent>,
}

impl FlightTimeline {
    /// `(phase, at, duration, detail)` rows: each event's duration runs to
    /// the next event's offset; the last event gets zero.
    pub fn spans(&self) -> Vec<(&'static str, Duration, Duration, Option<&str>)> {
        self.events
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let end = self.events.get(i + 1).map_or(e.at, |n| n.at);
                (e.phase, e.at, end.saturating_sub(e.at), e.detail.as_deref())
            })
            .collect()
    }
}

/// Fixed-capacity ring of recently finished job timelines.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<Arc<FlightTimeline>>>,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` timelines (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Append a finished timeline, evicting the oldest beyond capacity.
    pub fn push(&self, timeline: FlightTimeline) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(Arc::new(timeline));
    }

    /// The most recent `n` timelines, newest last.
    pub fn recent(&self, n: usize) -> Vec<Arc<FlightTimeline>> {
        let ring = self.ring.lock().unwrap();
        ring.iter()
            .skip(ring.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// The most recent timeline for job `id`, if still in the ring.
    pub fn find(&self, id: JobId) -> Option<Arc<FlightTimeline>> {
        self.ring
            .lock()
            .unwrap()
            .iter()
            .rev()
            .find(|t| t.id == id)
            .cloned()
    }

    /// Timelines currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(id: JobId) -> FlightTimeline {
        FlightTimeline {
            id,
            tenant: "t".into(),
            label: String::new(),
            state: "completed".into(),
            events: Vec::new(),
        }
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let rec = FlightRecorder::new(3);
        for id in 1..=5 {
            rec.push(timeline(id));
        }
        assert_eq!(rec.len(), 3);
        let ids: Vec<_> = rec.recent(10).iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![3, 4, 5]);
        assert!(rec.find(1).is_none());
        assert_eq!(rec.find(4).unwrap().id, 4);
        assert_eq!(rec.recent(2).len(), 2);
    }

    #[test]
    fn log_stamps_admit_and_derives_spans() {
        let log = FlightLog::new();
        log.stamp(phases::QUEUE, None);
        log.stamp(phases::COMPILE, None);
        log.stamp(phases::SHOTS, Some("attempt 1".into()));
        log.stamp("completed", None);
        let events = log.events();
        assert_eq!(events[0].phase, phases::ADMIT);
        let tl = FlightTimeline {
            id: 1,
            tenant: "t".into(),
            label: String::new(),
            state: "completed".into(),
            events,
        };
        let spans = tl.spans();
        assert_eq!(spans.len(), 5);
        // Offsets are monotone and each span runs to the next offset.
        for pair in spans.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
            assert_eq!(pair[0].1 + pair[0].2, pair[1].1);
        }
        assert_eq!(spans[3].3, Some("attempt 1"));
        assert_eq!(spans.last().unwrap().2, Duration::ZERO);
    }
}
