//! Per-tenant token-bucket quotas.
//!
//! Each tenant owns a bucket that refills continuously at `refill_per_sec`
//! up to `capacity`. A submission costs a flat per-job amount plus a
//! per-shot amount, so a tenant can spend its budget on many small jobs or
//! a few large ones. An empty bucket rejects with the exact time until the
//! bucket will hold enough tokens — the retry-after hint the wire protocol
//! hands back to clients.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Quota parameters shared by every tenant (buckets are per-tenant, the
/// policy is global).
#[derive(Clone, Copy, Debug)]
pub struct QuotaPolicy {
    /// Bucket capacity in tokens; also the initial fill of a new tenant.
    pub capacity: f64,
    /// Continuous refill rate, tokens per second.
    pub refill_per_sec: f64,
    /// Flat token cost per submission.
    pub cost_per_job: f64,
    /// Additional token cost per thousand shots.
    pub cost_per_kshot: f64,
}

impl Default for QuotaPolicy {
    fn default() -> Self {
        QuotaPolicy {
            capacity: 1_000.0,
            refill_per_sec: 100.0,
            cost_per_job: 1.0,
            cost_per_kshot: 1.0,
        }
    }
}

impl QuotaPolicy {
    /// An effectively unlimited policy (benchmarks, trusted callers).
    pub fn unlimited() -> Self {
        QuotaPolicy {
            capacity: f64::INFINITY,
            refill_per_sec: f64::INFINITY,
            cost_per_job: 0.0,
            cost_per_kshot: 0.0,
        }
    }

    /// The token cost of a submission with this many shots.
    pub fn cost(&self, shots: u64) -> f64 {
        self.cost_per_job + self.cost_per_kshot * shots as f64 / 1_000.0
    }
}

struct Bucket {
    tokens: f64,
    refilled_at: Instant,
}

/// The tenant → bucket map. Buckets are created full on a tenant's first
/// submission.
pub struct TenantQuotas {
    policy: QuotaPolicy,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantQuotas {
    /// An empty quota table under `policy`.
    pub fn new(policy: QuotaPolicy) -> TenantQuotas {
        TenantQuotas {
            policy,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The shared policy.
    pub fn policy(&self) -> &QuotaPolicy {
        &self.policy
    }

    /// Try to spend `cost` tokens from `tenant`'s bucket. On refusal,
    /// returns how long until the bucket will have refilled enough — the
    /// retry-after hint.
    pub fn try_acquire(&self, tenant: &str, cost: f64) -> Result<(), Duration> {
        if cost <= 0.0 || self.policy.capacity.is_infinite() {
            return Ok(());
        }
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: self.policy.capacity,
            refilled_at: now,
        });
        let elapsed = now.duration_since(bucket.refilled_at).as_secs_f64();
        bucket.tokens =
            (bucket.tokens + elapsed * self.policy.refill_per_sec).min(self.policy.capacity);
        bucket.refilled_at = now;
        if bucket.tokens >= cost {
            bucket.tokens -= cost;
            return Ok(());
        }
        let missing = cost - bucket.tokens;
        let wait = if self.policy.refill_per_sec > 0.0 {
            Duration::from_secs_f64(missing / self.policy.refill_per_sec)
        } else {
            // Never refills: an honest "don't bother soon" hint.
            Duration::from_secs(3600)
        };
        Err(wait)
    }

    /// Return `cost` tokens to `tenant`'s bucket (a submission that was
    /// admitted by quota but then rejected by the queue is not charged).
    pub fn refund(&self, tenant: &str, cost: f64) {
        if cost <= 0.0 {
            return;
        }
        let mut buckets = self.buckets.lock().unwrap();
        if let Some(bucket) = buckets.get_mut(tenant) {
            bucket.tokens = (bucket.tokens + cost).min(self.policy.capacity);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(capacity: f64, refill: f64) -> QuotaPolicy {
        QuotaPolicy {
            capacity,
            refill_per_sec: refill,
            cost_per_job: 1.0,
            cost_per_kshot: 0.0,
        }
    }

    #[test]
    fn fresh_tenants_start_full_and_deplete() {
        let q = TenantQuotas::new(policy(2.0, 0.0));
        assert!(q.try_acquire("a", 1.0).is_ok());
        assert!(q.try_acquire("a", 1.0).is_ok());
        let wait = q.try_acquire("a", 1.0).unwrap_err();
        assert!(wait >= Duration::from_secs(3600));
        // Tenants are isolated: `b` still has a full bucket.
        assert!(q.try_acquire("b", 2.0).is_ok());
    }

    #[test]
    fn retry_after_reflects_refill_rate() {
        let q = TenantQuotas::new(policy(1.0, 10.0));
        assert!(q.try_acquire("a", 1.0).is_ok());
        let wait = q.try_acquire("a", 1.0).unwrap_err();
        // Missing ~1 token at 10/s → ~100ms.
        assert!(wait <= Duration::from_millis(110), "{wait:?}");
    }

    #[test]
    fn refunds_restore_tokens() {
        let q = TenantQuotas::new(policy(1.0, 0.0));
        assert!(q.try_acquire("a", 1.0).is_ok());
        q.refund("a", 1.0);
        assert!(q.try_acquire("a", 1.0).is_ok());
    }

    #[test]
    fn cost_scales_with_shots() {
        let p = QuotaPolicy::default();
        assert!(p.cost(10_000) > p.cost(10));
        assert_eq!(QuotaPolicy::unlimited().cost(1_000_000), 0.0);
    }
}
