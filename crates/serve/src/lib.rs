//! `quipper-serve`: a multi-tenant circuit-execution service over the
//! `quipper-exec` engine.
//!
//! The paper's third phase — *circuit execution time* — assumes a long-lived
//! connection to a scarce, shared device (§2's dynamic lifting is an online
//! protocol). At realistic workload sizes that device must be multiplexed
//! across many clients, not owned by one process. This crate is that
//! multiplexer, dependency-free over the standard library:
//!
//! * [`Service`] — a worker-pool scheduler in front of one shared
//!   [`Engine`](quipper_exec::Engine). Submissions pass **admission
//!   control** (per-tenant token-bucket quotas, a bounded queue) and are
//!   executed in priority order, earliest deadline first. A full queue or an
//!   exhausted quota rejects *synchronously* with a retry-after hint — load
//!   sheds at the door instead of timing out inside.
//! * **Deadlines and cancellation** — every job carries a
//!   [`CancelToken`](quipper_exec::CancelToken) that the exec shot loop
//!   polls between shot chunks, so a client cancel or a missed deadline
//!   stops real simulation work mid-job, not just unstarted dequeues.
//! * **Retry** — transient backend faults
//!   ([`ExecError::Transient`](quipper_exec::ExecError)) are retried with
//!   exponential backoff and deterministic jitter; because per-shot seeds
//!   depend only on the submission, a retried job is bit-identical to a
//!   fault-free run.
//! * **Coalescing** — concurrent jobs with the same plan fingerprint share
//!   one compile through the engine's plan cache (single-flight per
//!   fingerprint).
//! * [`FaultInjector`] — a backend wrapper with seeded failure probability
//!   and latency spikes, proving graceful degradation under injected faults.
//! * **Flight recorder** — every job stamps an always-on lifecycle timeline
//!   (admit → queue → compile/coalesce → shots → terminal); finished
//!   timelines land in a bounded [`FlightRecorder`] ring, failed and
//!   deadline-missed wire results carry theirs inline, and the `flight` op
//!   dumps them on demand.
//! * [`protocol`] / [`Server`] — a newline-delimited JSON protocol
//!   (submit/status/result/cancel/export/stats/metrics/flight) over
//!   `std::net::TcpListener`, served by the `quipper-served` binary.
//!
//! Everything observable lands in `quipper-trace` metrics: admissions,
//! rejections, retries, deadline misses, coalesced compiles, the
//! admission-queue depth high-water mark, and per-tenant latency/queue-wait
//! histograms with [`SloPolicy`] burn counters — all exportable through the
//! `metrics` protocol op in JSON Lines or Prometheus text form.

pub mod catalog;
pub mod fault;
pub mod flight;
pub mod protocol;
pub mod queue;
pub mod quota;
pub mod retry;
pub mod server;
pub mod service;

pub use fault::{FaultConfig, FaultInjector};
pub use flight::{FlightEvent, FlightRecorder, FlightTimeline};
pub use queue::{AdmissionQueue, QueueEntry};
pub use quota::{QuotaPolicy, TenantQuotas};
pub use retry::RetryPolicy;
pub use server::Server;
pub use service::{
    JobId, JobState, JobStatus, RejectReason, Rejection, Service, ServiceConfig, ServiceStats,
    SloPolicy, Submission,
};

/// SplitMix64: the one-liner generator used for deterministic jitter and
/// fault draws. Good enough statistical quality for scheduling decisions,
/// and — unlike a shared PRNG stream — a pure function of its input, so
/// every draw is reproducible from (seed, counter) regardless of thread
/// interleaving.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from one SplitMix64 output (53-bit mantissa).
pub(crate) fn unit_draw(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

// The service and its handles cross threads by design.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Service>();
    assert_send_sync::<FaultInjector>();
    assert_send_sync::<AdmissionQueue>();
    assert_send_sync::<TenantQuotas>();
};
