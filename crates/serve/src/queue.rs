//! The bounded, priority- and deadline-ordered admission queue.
//!
//! Jobs are dequeued highest priority first; ties run earliest deadline
//! first (no deadline sorts last), then FIFO by admission order. The queue
//! is *bounded*: pushing into a full queue fails synchronously with a
//! retry-after hint, which is how the service applies backpressure at the
//! door instead of letting latency balloon inside.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use quipper_trace::{names, Tracer};

/// One admitted job, ordered for the scheduler.
#[derive(Clone, Debug)]
pub struct QueueEntry {
    /// The job's service-wide id.
    pub id: u64,
    /// Scheduling priority; higher runs first.
    pub priority: u8,
    /// Absolute deadline, if the submission carried one.
    pub deadline: Option<Instant>,
    /// Admission sequence number (FIFO tiebreak).
    pub seq: u64,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    // BinaryHeap is a max-heap: "greater" means "dequeued sooner".
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.priority
            .cmp(&other.priority)
            // Earlier deadline wins; None (no deadline) sorts after any Some.
            .then_with(|| match (self.deadline, other.deadline) {
                (Some(a), Some(b)) => b.cmp(&a),
                (Some(_), None) => CmpOrdering::Greater,
                (None, Some(_)) => CmpOrdering::Less,
                (None, None) => CmpOrdering::Equal,
            })
            // FIFO: the older admission wins.
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct State {
    heap: BinaryHeap<QueueEntry>,
    closed: bool,
}

/// A bounded blocking priority queue with a depth high-water metric.
pub struct AdmissionQueue {
    capacity: usize,
    state: Mutex<State>,
    available: Condvar,
    trace: &'static Tracer,
}

impl AdmissionQueue {
    /// An empty queue holding at most `capacity` entries.
    pub fn new(capacity: usize, trace: &'static Tracer) -> AdmissionQueue {
        AdmissionQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                closed: false,
            }),
            available: Condvar::new(),
            trace,
        }
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits an entry, or — when full — returns a retry-after hint scaled
    /// to the backlog (one notional service interval per queued entry ahead
    /// of the caller).
    pub fn push(&self, entry: QueueEntry) -> Result<(), Duration> {
        let mut state = self.state.lock().unwrap();
        if state.heap.len() >= self.capacity {
            return Err(Duration::from_millis(10 * self.capacity as u64));
        }
        state.heap.push(entry);
        if self.trace.enabled() {
            self.trace
                .metrics()
                .record_max(names::SERVE_QUEUE_DEPTH, state.heap.len() as u64);
        }
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an entry is available or the queue is closed *and*
    /// drained; `None` means "no more work ever" (worker exit).
    pub fn pop(&self) -> Option<QueueEntry> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(entry) = state.heap.pop() {
                return Some(entry);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    /// Closes the queue: pending entries are still handed out, then every
    /// (current and future) `pop` returns `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quipper_trace::Tracer;

    fn entry(id: u64, priority: u8, deadline_ms: Option<u64>, seq: u64) -> QueueEntry {
        let base = Instant::now();
        QueueEntry {
            id,
            priority,
            deadline: deadline_ms.map(|ms| base + Duration::from_millis(ms)),
            seq,
        }
    }

    fn queue(capacity: usize) -> AdmissionQueue {
        AdmissionQueue::new(capacity, Tracer::leaked(64))
    }

    #[test]
    fn orders_by_priority_then_deadline_then_fifo() {
        let q = queue(16);
        q.push(entry(1, 0, None, 1)).unwrap();
        q.push(entry(2, 5, Some(500), 2)).unwrap();
        q.push(entry(3, 5, Some(100), 3)).unwrap();
        q.push(entry(4, 5, None, 4)).unwrap();
        q.push(entry(5, 0, None, 5)).unwrap();
        let order: Vec<u64> = (0..5).map(|_| q.pop().unwrap().id).collect();
        // Priority 5 first (deadline 100ms before 500ms before none), then
        // priority 0 in FIFO order.
        assert_eq!(order, vec![3, 2, 4, 1, 5]);
    }

    #[test]
    fn rejects_when_full_with_retry_hint() {
        let q = queue(2);
        q.push(entry(1, 0, None, 1)).unwrap();
        q.push(entry(2, 0, None, 2)).unwrap();
        let hint = q.push(entry(3, 0, None, 3)).unwrap_err();
        assert!(hint > Duration::ZERO);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = queue(4);
        q.push(entry(1, 0, None, 1)).unwrap();
        q.close();
        assert_eq!(q.pop().unwrap().id, 1);
        assert!(q.pop().is_none());
    }
}
