//! The newline-delimited JSON wire protocol.
//!
//! Each request is one JSON object on one line; each response is one JSON
//! object on one line. Requests name an operation via `"op"`:
//!
//! | op        | fields                                                        |
//! |-----------|---------------------------------------------------------------|
//! | `submit`  | `circuit` (catalog name) *or* `qasm` (inline OpenQASM 2.0     |
//! |           | source, size-capped; rejected with span-anchored `QP###`      |
//! |           | `diagnostics`), plus `tenant`, `shots`, `seed`, `label`,      |
//! |           | `priority`, `deadline_ms`, `inputs` (array of 0/1), `opt`     |
//! |           | (`"off"`/`"default"`/`"aggressive"`, defaults to the engine's |
//! |           | configured level) — all optional except circuit/qasm          |
//! | `status`  | `id`                                                          |
//! | `result`  | `id` — histogram + report once completed; failed and          |
//! |           | deadline-missed jobs attach their flight timeline             |
//! | `cancel`  | `id`                                                          |
//! | `export`  | `circuit` (catalog name) *or* `qasm` (inline source, parsed   |
//! |           | and re-emitted canonically) — OpenQASM 2.0 text               |
//! | `list`    | — catalog names                                               |
//! | `stats`   | — service + engine counters                                   |
//! | `metrics` | `format` (`"json"` lines or `"prometheus"` text, default      |
//! |           | `"json"`) — full metrics-registry snapshot as `text`          |
//! | `flight`  | `id` (one job's timeline) or `recent` (last N finished,       |
//! |           | default 8) — flight-recorder dump                             |
//! | `ping`    | — liveness                                                    |
//! | `shutdown`| — stop accepting, drain, exit                                 |
//!
//! Responses carry `"ok": true` plus op-specific fields, or `"ok": false`
//! with `"error"` and — for backpressure rejections — `"retry_after_ms"`,
//! so well-behaved clients know when to come back. Parsing reuses the
//! dependency-free reader from `quipper-trace`; responses are assembled
//! with the same escaping, so everything round-trips.

use std::fmt::Write as _;
use std::sync::Arc;

use quipper_trace::{escape_into, parse_json, Json};

use crate::catalog::Catalog;
use crate::flight::FlightTimeline;
use crate::service::{JobState, RejectReason, Service, Submission};

/// The outcome of handling one request line.
pub struct Handled {
    /// The response line (no trailing newline).
    pub response: String,
    /// Whether the request asked the server to shut down.
    pub shutdown: bool,
}

fn ok(fields: &str) -> Handled {
    let response = if fields.is_empty() {
        "{\"ok\":true}".to_string()
    } else {
        format!("{{\"ok\":true,{fields}}}")
    };
    Handled {
        response,
        shutdown: false,
    }
}

fn err(message: &str) -> Handled {
    let mut response = String::from("{\"ok\":false,\"error\":\"");
    escape_into(&mut response, message);
    response.push_str("\"}");
    Handled {
        response,
        shutdown: false,
    }
}

/// An error response carrying the job's flight timeline, so a failed or
/// deadline-missed `result` answers "where did the time go" in one round
/// trip.
fn err_with_flight(service: &Service, id: u64, message: &str) -> Handled {
    let mut response = String::from("{\"ok\":false,\"error\":\"");
    escape_into(&mut response, message);
    response.push('"');
    if let Some(timeline) = service.flight(id) {
        let _ = write!(response, ",\"flight\":{}", flight_json(&timeline));
    }
    response.push('}');
    Handled {
        response,
        shutdown: false,
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

fn bits_to_json(bits: &[bool]) -> String {
    let mut out = String::from("[");
    for (i, b) in bits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push(if *b { '1' } else { '0' });
    }
    out.push(']');
    out
}

fn get_u64(req: &Json, key: &str) -> Option<u64> {
    req.get(key).and_then(Json::as_num).map(|n| n as u64)
}

/// One flight timeline as a JSON object: identity, terminal/current state,
/// and the stamped events with derived span durations in microseconds.
fn flight_json(timeline: &FlightTimeline) -> String {
    let mut out = format!(
        "{{\"id\":{},\"tenant\":{},\"label\":{},\"state\":{},\"events\":[",
        timeline.id,
        quoted(&timeline.tenant),
        quoted(&timeline.label),
        quoted(&timeline.state),
    );
    for (i, (phase, at, dur, detail)) in timeline.spans().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"phase\":{},\"at_us\":{},\"dur_us\":{}",
            quoted(phase),
            at.as_micros(),
            dur.as_micros(),
        );
        if let Some(detail) = detail {
            let _ = write!(out, ",\"detail\":{}", quoted(detail));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Handles one request line against the service and catalog. Pure with
/// respect to I/O: the caller owns the socket.
pub fn handle_line(service: &Service, catalog: &Catalog, line: &str) -> Handled {
    let req = match parse_json(line.trim()) {
        Ok(req) => req,
        Err(e) => return err(&format!("bad request: {e}")),
    };
    let op = match req.get("op").and_then(Json::as_str) {
        Some(op) => op,
        None => return err("missing \"op\""),
    };
    match op {
        "ping" => ok("\"pong\":true"),
        "list" => {
            let names: Vec<String> = catalog.names().iter().map(|n| quoted(n)).collect();
            ok(&format!("\"circuits\":[{}]", names.join(",")))
        }
        "stats" => {
            let s = service.stats();
            ok(&format!(
                "\"submitted\":{},\"admitted\":{},\"rejected\":{},\"completed\":{},\
                 \"failed\":{},\"cancelled\":{},\"deadline_misses\":{},\"retries\":{},\
                 \"coalesced\":{},\"engine_cache_hits\":{},\"engine_cache_misses\":{},\
                 \"engine_cached_plans\":{},\"engine_fused_gates\":{},\
                 \"engine_opt_gates_removed\":{}",
                s.submitted,
                s.admitted,
                s.rejected_queue_full + s.rejected_quota,
                s.completed,
                s.failed,
                s.cancelled,
                s.deadline_misses,
                s.retries,
                s.coalesced_compiles,
                s.engine_cache_hits,
                s.engine_cache_misses,
                s.engine_cached_plans,
                s.engine_fused_gates,
                s.engine_opt_gates_removed,
            ))
        }
        "metrics" => {
            let format = req.get("format").and_then(Json::as_str).unwrap_or("json");
            let snapshot = service.metrics_snapshot();
            let text = match format {
                "json" => quipper_trace::to_metrics_json_lines(&snapshot),
                "prometheus" => quipper_trace::to_prometheus_text(&snapshot),
                other => {
                    return err(&format!(
                        "unknown metrics format {other:?} (json/prometheus)"
                    ))
                }
            };
            ok(&format!(
                "\"format\":{},\"text\":{}",
                quoted(format),
                quoted(&text)
            ))
        }
        "flight" => match get_u64(&req, "id") {
            Some(id) => match service.flight(id) {
                None => err(&format!("no flight timeline for job id {id}")),
                Some(timeline) => ok(&format!("\"flights\":[{}]", flight_json(&timeline))),
            },
            None => {
                let n = get_u64(&req, "recent").unwrap_or(8).min(1024) as usize;
                let rows: Vec<String> = service.flights(n).iter().map(|t| flight_json(t)).collect();
                ok(&format!("\"flights\":[{}]", rows.join(",")))
            }
        },
        "shutdown" => Handled {
            response: "{\"ok\":true,\"stopping\":true}".to_string(),
            shutdown: true,
        },
        "submit" => handle_submit(service, catalog, &req),
        "export" => match (
            req.get("circuit").and_then(Json::as_str),
            req.get("qasm").and_then(Json::as_str),
        ) {
            (Some(_), Some(_)) => err("export takes \"circuit\" or \"qasm\", not both"),
            (None, None) => err("export needs a \"circuit\" (see op \"list\") or inline \"qasm\""),
            (Some(name), None) => match catalog.get(name) {
                None => err(&format!("unknown circuit {name:?} (see op \"list\")")),
                Some(circuit) => match quipper_circuit::qasm::to_qasm(&circuit) {
                    Ok(qasm) => ok(&format!(
                        "\"circuit\":{},\"qasm\":{}",
                        quoted(name),
                        quoted(&qasm)
                    )),
                    Err(e) => err(&format!("{name} does not export: {e}")),
                },
            },
            // Canonicalization: parse the client's text and re-emit it in
            // the exporter's dialect (idempotent on its own output).
            (None, Some(source)) => match ingest_qasm(source) {
                Ok(bc) => match quipper_circuit::qasm::to_qasm(&bc) {
                    Ok(qasm) => ok(&format!("\"circuit\":\"qasm\",\"qasm\":{}", quoted(&qasm))),
                    Err(e) => err(&format!("submitted qasm does not re-export: {e}")),
                },
                Err(handled) => handled,
            },
        },
        "status" => match get_u64(&req, "id") {
            None => err("status needs a numeric \"id\""),
            Some(id) => match service.status(id) {
                None => err(&format!("unknown job id {id}")),
                Some(status) => ok(&format!(
                    "\"id\":{},\"state\":{},\"label\":{},\"attempts\":{}",
                    status.id,
                    quoted(status.state.tag()),
                    quoted(&status.label),
                    status.attempts,
                )),
            },
        },
        "result" => match get_u64(&req, "id") {
            None => err("result needs a numeric \"id\""),
            Some(id) => match service.status(id) {
                None => err(&format!("unknown job id {id}")),
                Some(status) => match &status.state {
                    JobState::Completed(result) => {
                        let mut hist = String::from("[");
                        for (i, (bits, count)) in result.histogram.iter().enumerate() {
                            if i > 0 {
                                hist.push(',');
                            }
                            let _ = write!(
                                hist,
                                "{{\"bits\":{},\"count\":{count}}}",
                                bits_to_json(bits)
                            );
                        }
                        hist.push(']');
                        ok(&format!(
                            "\"id\":{id},\"label\":{},\"backend\":{},\"shots\":{},\
                             \"histogram\":{hist}",
                            quoted(&status.label),
                            quoted(result.report.backend),
                            result.report.shots,
                        ))
                    }
                    JobState::Failed(detail) => {
                        err_with_flight(service, id, &format!("job {id} failed: {detail}"))
                    }
                    JobState::DeadlineExceeded => {
                        err_with_flight(service, id, &format!("job {id} missed its deadline"))
                    }
                    state => err(&format!("job {id} is {}, no result", state.tag())),
                },
            },
        },
        "cancel" => match get_u64(&req, "id") {
            None => err("cancel needs a numeric \"id\""),
            Some(id) => match service.cancel(id) {
                None => err(&format!("unknown job id {id}")),
                Some(status) => ok(&format!(
                    "\"id\":{},\"state\":{}",
                    status.id,
                    quoted(status.state.tag())
                )),
            },
        },
        other => err(&format!("unknown op {other:?}")),
    }
}

/// Wire-level cap on inline OpenQASM submissions: bounded work per request
/// line, well under the library's own ingestion cap.
pub const MAX_QASM_BYTES: usize = 256 * 1024;

/// Renders a diagnostics collection as a JSON array of
/// `{code, severity, line, col, message}` objects.
fn diagnostics_json(diags: &quipper_qasm::Diagnostics) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":{},\"severity\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            quoted(d.code.as_str()),
            quoted(d.severity.label()),
            d.span.line,
            d.span.col,
            quoted(&d.message),
        );
    }
    out.push(']');
    out
}

/// Rejects an inline-QASM request with the full diagnostics list, so
/// clients can render span-anchored errors without another round trip.
fn err_with_diagnostics(message: &str, diags: &quipper_qasm::Diagnostics) -> Handled {
    let mut response = String::from("{\"ok\":false,\"error\":\"");
    escape_into(&mut response, message);
    let _ = write!(response, "\",\"diagnostics\":{}", diagnostics_json(diags));
    response.push('}');
    Handled {
        response,
        shutdown: false,
    }
}

/// Parses an inline OpenQASM submission into a circuit, or a ready-made
/// error response. Every parse failure is a structured rejection — client
/// bytes can never panic the server.
fn ingest_qasm(source: &str) -> Result<Arc<quipper_circuit::BCircuit>, Handled> {
    if source.len() > MAX_QASM_BYTES {
        return Err(err(&format!(
            "inline qasm is {} bytes; the wire cap is {MAX_QASM_BYTES}",
            source.len()
        )));
    }
    match quipper_qasm::compile(source) {
        Ok(bc) => Ok(Arc::new(bc)),
        Err(diags) => {
            let errors = diags.count(quipper_qasm::Severity::Error);
            Err(err_with_diagnostics(
                &format!("qasm rejected with {errors} error(s)"),
                &diags,
            ))
        }
    }
}

fn handle_submit(service: &Service, catalog: &Catalog, req: &Json) -> Handled {
    let name_field = req.get("circuit").and_then(Json::as_str);
    let qasm_field = req.get("qasm").and_then(Json::as_str);
    let (name, circuit, default_inputs) = match (name_field, qasm_field) {
        (Some(_), Some(_)) => return err("submit takes \"circuit\" or \"qasm\", not both"),
        (None, None) => {
            return err("submit needs a \"circuit\" (see op \"list\") or inline \"qasm\"")
        }
        (Some(name), None) => match catalog.get(name) {
            Some(circuit) => (name, circuit, catalog.input_arity(name).unwrap_or(0)),
            None => return err(&format!("unknown circuit {name:?} (see op \"list\")")),
        },
        (None, Some(source)) => match ingest_qasm(source) {
            Ok(bc) => {
                let arity = bc.main.inputs.len();
                ("qasm", bc, arity)
            }
            Err(handled) => return handled,
        },
    };
    let inputs = match req.get("inputs") {
        None => vec![false; default_inputs],
        Some(value) => match value.as_arr() {
            None => return err("\"inputs\" must be an array of 0/1"),
            Some(items) => items
                .iter()
                .map(|v| v.as_num().map(|n| n != 0.0).unwrap_or(false))
                .collect(),
        },
    };
    let tenant = req
        .get("tenant")
        .and_then(Json::as_str)
        .unwrap_or("anonymous");
    let mut submission = Submission::new(tenant, Arc::clone(&circuit))
        .inputs(inputs)
        .shots(get_u64(req, "shots").unwrap_or(1).max(1))
        .seed(get_u64(req, "seed").unwrap_or(0))
        .priority(get_u64(req, "priority").unwrap_or(0).min(255) as u8);
    if let Some(label) = req.get("label").and_then(Json::as_str) {
        submission = submission.label(label);
    } else {
        submission = submission.label(name);
    }
    if let Some(ms) = get_u64(req, "deadline_ms") {
        submission = submission.deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(spec) = req.get("opt").and_then(Json::as_str) {
        match quipper_exec::OptLevel::parse(spec) {
            Some(level) => submission = submission.opt(level),
            None => {
                return err(&format!(
                    "unknown opt level {spec:?} (off/default/aggressive)"
                ))
            }
        }
    }
    match service.submit(submission) {
        Ok(id) => ok(&format!("\"id\":{id}")),
        Err(rejection) => {
            let mut response = String::from("{\"ok\":false,\"error\":\"");
            escape_into(&mut response, &rejection.reason.to_string());
            let _ = write!(
                response,
                "\",\"retry_after_ms\":{},\"reason\":{}",
                rejection.retry_after.as_millis(),
                quoted(match rejection.reason {
                    RejectReason::QueueFull => "queue_full",
                    RejectReason::QuotaExhausted => "quota_exhausted",
                })
            );
            response.push('}');
            Handled {
                response,
                shutdown: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use quipper_exec::Engine;
    use quipper_trace::parse_json;

    fn fixture() -> (Service, Catalog) {
        let config = ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        };
        (Service::start(Engine::new(), config), Catalog::new())
    }

    fn handle_ok(service: &Service, catalog: &Catalog, line: &str) -> Json {
        let handled = handle_line(service, catalog, line);
        let json = parse_json(&handled.response).expect("response parses");
        assert_eq!(
            json.get("ok"),
            Some(&Json::Bool(true)),
            "{}",
            handled.response
        );
        json
    }

    #[test]
    fn submit_status_result_round_trip() {
        let (service, catalog) = fixture();
        let resp = handle_ok(
            &service,
            &catalog,
            r#"{"op":"submit","circuit":"ghz3","tenant":"t","shots":32,"seed":7,"label":"demo","opt":"aggressive"}"#,
        );
        let id = resp.get("id").and_then(Json::as_num).unwrap() as u64;
        service.drain();
        let status = handle_ok(
            &service,
            &catalog,
            &format!(r#"{{"op":"status","id":{id}}}"#),
        );
        assert_eq!(
            status.get("state").and_then(Json::as_str),
            Some("completed")
        );
        assert_eq!(status.get("label").and_then(Json::as_str), Some("demo"));
        let result = handle_ok(
            &service,
            &catalog,
            &format!(r#"{{"op":"result","id":{id}}}"#),
        );
        let hist = result.get("histogram").and_then(Json::as_arr).unwrap();
        let total: u64 = hist
            .iter()
            .map(|e| e.get("count").and_then(Json::as_num).unwrap() as u64)
            .sum();
        assert_eq!(total, 32);
        // GHZ: only all-zeros and all-ones appear.
        assert!(hist.len() <= 2);
        service.shutdown();
    }

    #[test]
    fn errors_are_json_with_ok_false() {
        let (service, catalog) = fixture();
        for line in [
            "not json at all",
            r#"{"missing":"op"}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"submit","circuit":"nope"}"#,
            r#"{"op":"submit","circuit":"ghz3","opt":"extreme"}"#,
            r#"{"op":"result","id":999}"#,
        ] {
            let handled = handle_line(&service, &catalog, line);
            let json = parse_json(&handled.response).expect("error responses parse");
            assert_eq!(json.get("ok"), Some(&Json::Bool(false)), "{line}");
            assert!(json.get("error").is_some(), "{line}");
        }
        service.shutdown();
    }

    #[test]
    fn export_returns_qasm_that_round_trips_through_escaping() {
        let (service, catalog) = fixture();
        let resp = handle_ok(
            &service,
            &catalog,
            r#"{"op":"export","circuit":"teleportation"}"#,
        );
        let qasm = resp.get("qasm").and_then(Json::as_str).unwrap();
        assert!(qasm.starts_with("OPENQASM 2.0;\n"));
        // The dynamic-lifting corrections survive the wire format.
        assert!(qasm.contains("if(c1==1) x q[2];"), "{qasm}");
        service.shutdown();
    }

    #[test]
    fn inline_qasm_submission_runs_end_to_end() {
        let (service, catalog) = fixture();
        // GHZ on 3 ancillas, measured: the job goes through the same
        // lint/optimize/cache pipeline as catalog circuits.
        let qasm = "OPENQASM 2.0;\\ninclude \\\"qelib1.inc\\\";\\nqreg q[3];\\ncreg c[3];\\nreset q;\\nh q[0];\\ncx q[0],q[1];\\ncx q[1],q[2];\\nmeasure q -> c;\\n";
        let resp = handle_ok(
            &service,
            &catalog,
            &format!(
                r#"{{"op":"submit","qasm":"{qasm}","tenant":"t","shots":16,"seed":3,"opt":"aggressive"}}"#
            ),
        );
        let id = resp.get("id").and_then(Json::as_num).unwrap() as u64;
        service.drain();
        let status = handle_ok(
            &service,
            &catalog,
            &format!(r#"{{"op":"status","id":{id}}}"#),
        );
        assert_eq!(
            status.get("state").and_then(Json::as_str),
            Some("completed")
        );
        // Default label for inline submissions.
        assert_eq!(status.get("label").and_then(Json::as_str), Some("qasm"));
        let result = handle_ok(
            &service,
            &catalog,
            &format!(r#"{{"op":"result","id":{id}}}"#),
        );
        let hist = result.get("histogram").and_then(Json::as_arr).unwrap();
        let total: u64 = hist
            .iter()
            .map(|e| e.get("count").and_then(Json::as_num).unwrap() as u64)
            .sum();
        assert_eq!(total, 16);
        assert!(hist.len() <= 2, "GHZ collapses to all-zeros/all-ones");
        service.shutdown();
    }

    #[test]
    fn bad_qasm_is_rejected_with_coded_diagnostics() {
        let (service, catalog) = fixture();
        let handled = handle_line(
            &service,
            &catalog,
            r#"{"op":"submit","qasm":"OPENQASM 2.0;\nqreg q[1];\nfrob q[0];\n"}"#,
        );
        let json = parse_json(&handled.response).unwrap();
        assert_eq!(json.get("ok"), Some(&Json::Bool(false)));
        let diags = json.get("diagnostics").and_then(Json::as_arr).unwrap();
        assert!(diags
            .iter()
            .any(|d| d.get("code").and_then(Json::as_str) == Some("QP103")));
        assert!(diags
            .iter()
            .all(|d| d.get("line").and_then(Json::as_num).is_some()));
        // Both sources at once is ambiguous.
        let handled = handle_line(
            &service,
            &catalog,
            r#"{"op":"submit","circuit":"ghz3","qasm":"OPENQASM 2.0;"}"#,
        );
        let json = parse_json(&handled.response).unwrap();
        assert_eq!(json.get("ok"), Some(&Json::Bool(false)));
        service.shutdown();
    }

    #[test]
    fn export_canonicalizes_inline_qasm() {
        let (service, catalog) = fixture();
        // Lowercase gates without the include, QASM-3 spellings: the
        // canonical form normalizes all of it.
        let resp = handle_ok(
            &service,
            &catalog,
            r#"{"op":"export","qasm":"OPENQASM 3;\nqubit[2] q;\nU(0,0,3.141592653589793) q[0];\nCX q[0],q[1];\n"}"#,
        );
        let qasm = resp.get("qasm").and_then(Json::as_str).unwrap();
        assert!(qasm.starts_with("OPENQASM 2.0;\n"), "{qasm}");
        assert!(qasm.contains("cx q[0],q[1];"), "{qasm}");
        // Canonicalization is idempotent: exporting the canonical text
        // again returns it unchanged.
        let again = handle_ok(
            &service,
            &catalog,
            &format!(r#"{{"op":"export","qasm":{}}}"#, super::quoted(qasm)),
        );
        assert_eq!(again.get("qasm").and_then(Json::as_str), Some(qasm));
        service.shutdown();
    }

    #[test]
    fn list_ping_stats_and_shutdown() {
        let (service, catalog) = fixture();
        let list = handle_ok(&service, &catalog, r#"{"op":"list"}"#);
        let names = list.get("circuits").and_then(Json::as_arr).unwrap();
        assert!(names.iter().any(|n| n.as_str() == Some("teleportation")));
        handle_ok(&service, &catalog, r#"{"op":"ping"}"#);
        handle_ok(&service, &catalog, r#"{"op":"stats"}"#);
        let handled = handle_line(&service, &catalog, r#"{"op":"shutdown"}"#);
        assert!(handled.shutdown);
        service.shutdown();
    }
}
