//! The TCP front door: newline-delimited JSON over `std::net`.
//!
//! One listener thread accepts connections (non-blocking accept with a
//! short poll sleep, so shutdown is prompt); each connection gets a thread
//! reading request lines and writing response lines via
//! [`crate::protocol::handle_line`]. The server is deliberately boring —
//! all scheduling intelligence lives in the [`Service`]; this layer only
//! moves lines.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::catalog::Catalog;
use crate::protocol::handle_line;
use crate::service::Service;

/// A running NDJSON server over a [`Service`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting connections against `service` and `catalog`.
    pub fn start(
        addr: &str,
        service: Arc<Service>,
        catalog: Arc<Catalog>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, service, catalog, accept_stop))
            .expect("spawn accept thread");
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown has been requested (by [`Server::stop`] or a
    /// client's `shutdown` op).
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Blocks until the accept loop exits (a client sent `shutdown`, or
    /// another thread called [`Server::stop`]).
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            handle.join().expect("accept thread panicked");
        }
    }

    /// Requests the accept loop to exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<Service>,
    catalog: Arc<Catalog>,
    stop: Arc<AtomicBool>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(&service);
                let catalog = Arc::clone(&catalog);
                let stop = Arc::clone(&stop);
                connections.push(
                    std::thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || serve_connection(stream, &service, &catalog, &stop))
                        .expect("spawn connection thread"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
        connections.retain(|handle| !handle.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
}

fn serve_connection(stream: TcpStream, service: &Service, catalog: &Catalog, stop: &AtomicBool) {
    // Blocking per-connection reads with a timeout, so a silent client
    // doesn't pin the thread past server shutdown.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client hung up
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                let handled = handle_line(service, catalog, &line);
                // Raise the stop flag before answering: a one-shot client
                // may close right after sending `shutdown`, and a failed
                // response write must not swallow the request.
                if handled.shutdown {
                    stop.store(true, Ordering::Relaxed);
                }
                if writer
                    .write_all(handled.response.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
                if handled.shutdown {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use quipper_exec::Engine;
    use quipper_trace::{parse_json, Json};

    fn client_round_trip(addr: SocketAddr, lines: &[&str]) -> Vec<Json> {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut responses = Vec::new();
        for line in lines {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            responses.push(parse_json(response.trim()).unwrap());
        }
        responses
    }

    #[test]
    fn serves_a_submit_result_session_over_tcp() {
        let service = Arc::new(Service::start(
            Engine::new(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        ));
        let server = Server::start(
            "127.0.0.1:0",
            Arc::clone(&service),
            Arc::new(Catalog::new()),
        )
        .unwrap();
        let addr = server.local_addr();

        let responses = client_round_trip(
            addr,
            &[
                r#"{"op":"ping"}"#,
                r#"{"op":"submit","circuit":"ghz3","shots":16}"#,
            ],
        );
        assert_eq!(responses[0].get("pong"), Some(&Json::Bool(true)));
        let id = responses[1].get("id").and_then(Json::as_num).unwrap() as u64;
        service.drain();

        let responses = client_round_trip(addr, &[&format!(r#"{{"op":"result","id":{id}}}"#)]);
        assert_eq!(responses[0].get("ok"), Some(&Json::Bool(true)));

        // A second connection still works, then shutdown stops the loop.
        let responses = client_round_trip(addr, &[r#"{"op":"shutdown"}"#]);
        assert_eq!(responses[0].get("stopping"), Some(&Json::Bool(true)));
        server.join();
        service.shutdown();
    }

    /// A one-shot client (`printf '{"op":"shutdown"}' | nc`) closes the
    /// socket without reading the response; the failed response write must
    /// not swallow the shutdown request.
    #[test]
    fn shutdown_from_a_client_that_hangs_up_immediately() {
        let service = Arc::new(Service::start(Engine::new(), ServiceConfig::default()));
        let server = Server::start(
            "127.0.0.1:0",
            Arc::clone(&service),
            Arc::new(Catalog::new()),
        )
        .unwrap();
        let addr = server.local_addr();

        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
            // Drop without reading: the server's response write hits a
            // closed peer.
        }
        server.join();
        service.shutdown();
    }
}
