//! The service: admission control, the worker pool, job states, retries.
//!
//! One [`Service`] owns one [`Engine`] and multiplexes it between tenants.
//! Submissions are charged against per-tenant token buckets and admitted
//! into a bounded priority queue; a fixed pool of worker threads drains the
//! queue, running each job's shots sequentially (service parallelism is
//! *across* jobs). Every job carries a [`CancelToken`] polled by the exec
//! shot loop, so deadline misses and client cancels stop real work.
//!
//! # Job lifecycle
//!
//! ```text
//! submit ── quota? ── queue? ──> Queued ──> Running ──> Completed
//!              │         │          │           ├─────> Failed      (permanent / retries exhausted)
//!           Rejected  Rejected      │           ├─────> Cancelled   (client cancel)
//!           (+retry-after hints)    │           └─────> DeadlineExceeded
//!                                   └── cancel/deadline before start ─┘
//! ```
//!
//! Nothing is ever lost: every admitted job reaches exactly one terminal
//! state, and every refused submission is told when to retry.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use quipper_circuit::BCircuit;
use quipper_exec::{CancelReason, CancelToken, Engine, ExecError, ExecResult, Job, OptLevel};
use quipper_trace::{names, Tracer};

use crate::flight::{phases, FlightLog, FlightRecorder, FlightTimeline};
use crate::queue::{AdmissionQueue, QueueEntry};
use crate::quota::{QuotaPolicy, TenantQuotas};
use crate::retry::RetryPolicy;

/// Service-wide job identifier, unique for the life of the service.
pub type JobId = u64;

/// A unit of work submitted by a tenant. Build fluently from
/// [`Submission::new`]; unset fields keep sensible defaults (one shot,
/// seed 0, priority 0, no deadline).
#[derive(Clone, Debug)]
pub struct Submission {
    /// The submitting tenant (quota key).
    pub tenant: String,
    /// Caller-chosen correlation label, echoed in statuses and results.
    pub label: String,
    /// The circuit to execute.
    pub circuit: Arc<BCircuit>,
    /// Basis-state inputs.
    pub inputs: Vec<bool>,
    /// Number of shots.
    pub shots: u64,
    /// Base seed; shot `i` runs with `seed + i`.
    pub seed: u64,
    /// Scheduling priority; higher runs first.
    pub priority: u8,
    /// Deadline measured from admission; the job is abandoned (even
    /// mid-shot-loop) once it passes.
    pub deadline: Option<Duration>,
    /// Pin to a named backend instead of auto-routing.
    pub backend: Option<String>,
    /// Optimizer level for this job; `None` uses the engine's configured
    /// level.
    pub opt: Option<OptLevel>,
}

impl Submission {
    /// A one-shot submission with defaults.
    pub fn new(tenant: impl Into<String>, circuit: Arc<BCircuit>) -> Submission {
        Submission {
            tenant: tenant.into(),
            label: String::new(),
            circuit,
            inputs: Vec::new(),
            shots: 1,
            seed: 0,
            priority: 0,
            deadline: None,
            backend: None,
            opt: None,
        }
    }

    /// Sets the correlation label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Sets the shot count.
    pub fn shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the inputs.
    pub fn inputs(mut self, inputs: Vec<bool>) -> Self {
        self.inputs = inputs;
        self
    }

    /// Sets the priority (higher runs first).
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a deadline relative to admission.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the engine's optimizer level for this job.
    pub fn opt(mut self, level: OptLevel) -> Self {
        self.opt = Some(level);
        self
    }
}

/// Why a submission was refused at the door.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The admission queue is full.
    QueueFull,
    /// The tenant's token bucket cannot cover the job's cost yet.
    QuotaExhausted,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "admission queue full"),
            RejectReason::QuotaExhausted => write!(f, "tenant quota exhausted"),
        }
    }
}

/// A synchronous refusal, carrying when a retry is likely to succeed.
#[derive(Clone, Copy, Debug)]
pub struct Rejection {
    /// What was exhausted.
    pub reason: RejectReason,
    /// How long the client should wait before resubmitting.
    pub retry_after: Duration,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}; retry after {:?}", self.reason, self.retry_after)
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing shots (or sleeping out a retry backoff).
    Running,
    /// All shots ran; the result is attached.
    Completed(Arc<ExecResult>),
    /// Permanent failure (compile/lint/routing error, or retries
    /// exhausted); the error rendering is attached.
    Failed(String),
    /// The client cancelled before completion.
    Cancelled,
    /// The deadline passed before completion.
    DeadlineExceeded,
}

impl JobState {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }

    /// Stable lower-snake tag used on the wire and in reports.
    pub fn tag(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed(_) => "completed",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
            JobState::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

/// A point-in-time status snapshot for one job.
#[derive(Clone, Debug)]
pub struct JobStatus {
    pub id: JobId,
    pub tenant: String,
    pub label: String,
    pub state: JobState,
    /// Execution attempts so far (retries increment this past 1).
    pub attempts: u32,
}

struct JobRecord {
    id: JobId,
    tenant: String,
    label: String,
    submission: Submission,
    token: CancelToken,
    state: Mutex<JobState>,
    attempts: AtomicU32,
    /// Lifecycle timeline for the flight recorder; epoch = admission.
    flight: FlightLog,
}

/// Per-tenant end-to-end latency SLO thresholds. A job "burns" its
/// tenant's SLO when admission-to-terminal latency exceeds the threshold;
/// checks and burns land in the `serve.slo.*` labeled counters.
#[derive(Clone, Debug, Default)]
pub struct SloPolicy {
    /// Threshold applied to tenants without an override; `None` disables
    /// SLO accounting for them.
    pub default_threshold: Option<Duration>,
    /// Per-tenant overrides, first match wins.
    pub tenants: Vec<(String, Duration)>,
}

impl SloPolicy {
    /// A policy holding every tenant to `threshold` unless overridden.
    pub fn with_default(threshold: Duration) -> SloPolicy {
        SloPolicy {
            default_threshold: Some(threshold),
            tenants: Vec::new(),
        }
    }

    /// Adds (or tightens) a per-tenant override.
    pub fn tenant(mut self, name: impl Into<String>, threshold: Duration) -> Self {
        self.tenants.push((name.into(), threshold));
        self
    }

    /// The threshold governing `tenant`, if any.
    pub fn threshold_for(&self, tenant: &str) -> Option<Duration> {
        self.tenants
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|&(_, d)| d)
            .or(self.default_threshold)
    }
}

/// Tuning for [`Service::start`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue (each runs one job at a time).
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it are rejected with a
    /// retry-after hint.
    pub queue_capacity: usize,
    /// Per-tenant token-bucket policy.
    pub quota: QuotaPolicy,
    /// Transient-fault retry policy.
    pub retry: RetryPolicy,
    /// Per-tenant latency SLO thresholds; default has no thresholds, so
    /// nothing is checked or burned.
    pub slo: SloPolicy,
    /// Flight-recorder capacity: how many finished job timelines the
    /// bounded ring retains.
    pub flight_capacity: usize,
    /// Tracing sink for service metrics; defaults to the process-wide
    /// tracer.
    pub trace: &'static Tracer,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8),
            queue_capacity: 256,
            quota: QuotaPolicy::default(),
            retry: RetryPolicy::default(),
            slo: SloPolicy::default(),
            flight_capacity: 256,
            trace: quipper_trace::tracer(),
        }
    }
}

/// Cumulative service counters, snapshot via [`Service::stats`]. Includes
/// the engine-level counters (plan cache, fusion, optimizer) so the wire
/// `stats` op reports the whole stack, not just admission accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    pub submitted: u64,
    pub admitted: u64,
    pub rejected_queue_full: u64,
    pub rejected_quota: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub deadline_misses: u64,
    pub retries: u64,
    pub coalesced_compiles: u64,
    /// Engine plan-cache hits.
    pub engine_cache_hits: u64,
    /// Engine plan-cache misses (compilations).
    pub engine_cache_misses: u64,
    /// Distinct plans currently cached by the engine.
    pub engine_cached_plans: u64,
    /// Gates eliminated by single-qubit fusion across executed plans.
    pub engine_fused_gates: u64,
    /// Gates removed by the optimizer across executed plans.
    pub engine_opt_gates_removed: u64,
}

impl ServiceStats {
    /// Jobs that reached a terminal state.
    pub fn terminal(&self) -> u64 {
        self.completed + self.failed + self.cancelled + self.deadline_misses
    }
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12}{} submitted / {} admitted / {} rejected (queue {}, quota {})",
            "admission",
            self.submitted,
            self.admitted,
            self.rejected_queue_full + self.rejected_quota,
            self.rejected_queue_full,
            self.rejected_quota,
        )?;
        writeln!(
            f,
            "{:<12}{} completed / {} failed / {} cancelled / {} deadline-missed",
            "terminal", self.completed, self.failed, self.cancelled, self.deadline_misses,
        )?;
        writeln!(
            f,
            "{:<12}{} retries, {} coalesced compiles",
            "engine", self.retries, self.coalesced_compiles,
        )?;
        write!(
            f,
            "{:<12}{} hits / {} misses / {} cached, {} fused, {} opt-removed",
            "plan cache",
            self.engine_cache_hits,
            self.engine_cache_misses,
            self.engine_cached_plans,
            self.engine_fused_gates,
            self.engine_opt_gates_removed,
        )
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_quota: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    deadline_misses: AtomicU64,
    retries: AtomicU64,
    coalesced_compiles: AtomicU64,
}

/// Single-flight table: at most one concurrent plan compile per circuit
/// fingerprint; followers wait for the leader, then hit the plan cache.
#[derive(Default)]
struct Coalescer {
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
}

#[derive(Default)]
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

enum CompileRole {
    Leader(Arc<Flight>),
    Coalesced,
}

impl Coalescer {
    fn begin(&self, key: u64) -> CompileRole {
        let flight = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.get(&key) {
                Some(flight) => Arc::clone(flight),
                None => {
                    let flight = Arc::new(Flight::default());
                    inflight.insert(key, Arc::clone(&flight));
                    return CompileRole::Leader(flight);
                }
            }
        };
        let mut done = flight.done.lock().unwrap();
        while !*done {
            done = flight.cv.wait(done).unwrap();
        }
        CompileRole::Coalesced
    }

    fn finish(&self, key: u64, flight: &Flight) {
        self.inflight.lock().unwrap().remove(&key);
        *flight.done.lock().unwrap() = true;
        flight.cv.notify_all();
    }
}

struct Inner {
    engine: Engine,
    queue: AdmissionQueue,
    quotas: TenantQuotas,
    retry: RetryPolicy,
    slo: SloPolicy,
    flight: FlightRecorder,
    trace: &'static Tracer,
    jobs: Mutex<HashMap<JobId, Arc<JobRecord>>>,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    counters: Counters,
    coalescer: Coalescer,
    /// Admitted-but-not-terminal job count + condvar for [`Service::drain`].
    active: Mutex<u64>,
    idle: Condvar,
}

/// The multi-tenant execution service. See the [module docs](self).
pub struct Service {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Service {
    /// Starts a service over `engine` with `config`'s worker pool, queue
    /// bound, quotas and retry policy.
    pub fn start(engine: Engine, config: ServiceConfig) -> Service {
        let inner = Arc::new(Inner {
            engine,
            queue: AdmissionQueue::new(config.queue_capacity, config.trace),
            quotas: TenantQuotas::new(config.quota),
            retry: config.retry,
            slo: config.slo,
            flight: FlightRecorder::new(config.flight_capacity),
            trace: config.trace,
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            counters: Counters::default(),
            coalescer: Coalescer::default(),
            active: Mutex::new(0),
            idle: Condvar::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn service worker")
            })
            .collect();
        Service {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// The engine the service schedules onto (plan cache, stats).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Submits a job. Admission is synchronous: the result is either the
    /// job's id or a [`Rejection`] with a retry-after hint. Admitted jobs
    /// proceed through the lifecycle asynchronously.
    pub fn submit(&self, submission: Submission) -> Result<JobId, Rejection> {
        let inner = &*self.inner;
        inner.counters.submitted.fetch_add(1, Ordering::Relaxed);

        let cost = inner.quotas.policy().cost(submission.shots);
        if let Err(retry_after) = inner.quotas.try_acquire(&submission.tenant, cost) {
            inner
                .counters
                .rejected_quota
                .fetch_add(1, Ordering::Relaxed);
            if inner.trace.enabled() {
                inner.trace.metrics().add(names::SERVE_REJECT_QUOTA, 1);
            }
            return Err(Rejection {
                reason: RejectReason::QuotaExhausted,
                retry_after,
            });
        }

        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let deadline = submission.deadline.map(|d| Instant::now() + d);
        let token = match deadline {
            Some(at) => CancelToken::with_deadline(at),
            None => CancelToken::new(),
        };
        let record = Arc::new(JobRecord {
            id,
            tenant: submission.tenant.clone(),
            label: submission.label.clone(),
            token: token.clone(),
            state: Mutex::new(JobState::Queued),
            attempts: AtomicU32::new(0),
            flight: FlightLog::new(),
            submission,
        });
        let entry = QueueEntry {
            id,
            priority: record.submission.priority,
            deadline,
            seq: inner.next_seq.fetch_add(1, Ordering::Relaxed),
        };

        inner.jobs.lock().unwrap().insert(id, Arc::clone(&record));
        *inner.active.lock().unwrap() += 1;
        if let Err(retry_after) = inner.queue.push(entry) {
            // Not admitted after all: uncharge the tenant and forget the job.
            inner.jobs.lock().unwrap().remove(&id);
            finish_active(inner);
            inner.quotas.refund(&record.tenant, cost);
            inner
                .counters
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            if inner.trace.enabled() {
                inner.trace.metrics().add(names::SERVE_REJECT_FULL, 1);
            }
            return Err(Rejection {
                reason: RejectReason::QueueFull,
                retry_after,
            });
        }
        record.flight.stamp(phases::QUEUE, None);
        inner.counters.admitted.fetch_add(1, Ordering::Relaxed);
        if inner.trace.enabled() {
            inner.trace.metrics().add(names::SERVE_ADMIT, 1);
        }
        Ok(id)
    }

    /// A status snapshot for `id`, or `None` for unknown ids.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let record = Arc::clone(self.inner.jobs.lock().unwrap().get(&id)?);
        let state = record.state.lock().unwrap().clone();
        Some(JobStatus {
            id,
            tenant: record.tenant.clone(),
            label: record.label.clone(),
            state,
            attempts: record.attempts.load(Ordering::Relaxed),
        })
    }

    /// The result of a completed job (`None` until the job completes; check
    /// [`Service::status`] to distinguish pending from failed).
    pub fn result(&self, id: JobId) -> Option<Arc<ExecResult>> {
        match &*Arc::clone(self.inner.jobs.lock().unwrap().get(&id)?)
            .state
            .lock()
            .unwrap()
        {
            JobState::Completed(result) => Some(Arc::clone(result)),
            _ => None,
        }
    }

    /// Cancels a job. Queued jobs terminate immediately; running jobs stop
    /// at the shot loop's next token poll. Returns the resulting status, or
    /// `None` for unknown ids. Cancelling a terminal job is a no-op.
    pub fn cancel(&self, id: JobId) -> Option<JobStatus> {
        let inner = &*self.inner;
        let record = Arc::clone(inner.jobs.lock().unwrap().get(&id)?);
        {
            let mut state = record.state.lock().unwrap();
            match &*state {
                JobState::Queued => {
                    record.token.cancel();
                    // Claim the job under the lock so the worker that pops
                    // its entry skips it, then finalize outside the lock.
                    *state = JobState::Cancelled;
                    drop(state);
                    finalize(inner, &record, JobState::Cancelled);
                }
                JobState::Running => {
                    // The worker observes the fired token and finalizes.
                    record.token.cancel();
                }
                _ => {}
            }
        }
        self.status(id)
    }

    /// Cumulative counters, service-level merged with the engine's.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        let engine = self.inner.engine.stats();
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected_queue_full: c.rejected_queue_full.load(Ordering::Relaxed),
            rejected_quota: c.rejected_quota.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            deadline_misses: c.deadline_misses.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            coalesced_compiles: c.coalesced_compiles.load(Ordering::Relaxed),
            engine_cache_hits: engine.cache_hits,
            engine_cache_misses: engine.cache_misses,
            engine_cached_plans: engine.cached_plans as u64,
            engine_fused_gates: engine.fused_gates,
            engine_opt_gates_removed: engine.opt_gates_removed,
        }
    }

    /// A point-in-time snapshot of the service's metrics registry (the
    /// tracing sink configured in [`ServiceConfig`]), for the exposition
    /// encoders. Empty until tracing is enabled.
    pub fn metrics_snapshot(&self) -> quipper_trace::MetricsSnapshot {
        self.inner.trace.metrics().snapshot()
    }

    /// The job's flight timeline: live (current state) for known jobs,
    /// else the recorder ring's copy. `None` for unknown/evicted ids.
    pub fn flight(&self, id: JobId) -> Option<FlightTimeline> {
        if let Some(record) = self.inner.jobs.lock().unwrap().get(&id) {
            let state = record.state.lock().unwrap().tag().to_string();
            return Some(FlightTimeline {
                id,
                tenant: record.tenant.clone(),
                label: record.label.clone(),
                state,
                events: record.flight.events(),
            });
        }
        self.inner.flight.find(id).map(|t| (*t).clone())
    }

    /// The most recent `n` finished timelines from the flight recorder,
    /// newest last.
    pub fn flights(&self, n: usize) -> Vec<Arc<FlightTimeline>> {
        self.inner.flight.recent(n)
    }

    /// Blocks until every admitted job has reached a terminal state.
    pub fn drain(&self) {
        let mut active = self.inner.active.lock().unwrap();
        while *active > 0 {
            active = self.inner.idle.wait(active).unwrap();
        }
    }

    /// Stops the service: no new submissions are admitted, queued jobs are
    /// finalized as cancelled, in-flight jobs are cancelled at their next
    /// token poll, and the worker pool is joined. Idempotent.
    pub fn shutdown(&self) {
        // Fire every non-terminal token so queued entries finalize fast and
        // running shot loops stop at the next poll.
        for record in self.inner.jobs.lock().unwrap().values() {
            if !record.state.lock().unwrap().is_terminal() {
                record.token.cancel();
            }
        }
        self.inner.queue.close();
        let mut workers = self.workers.lock().unwrap();
        for handle in workers.drain(..) {
            handle.join().expect("service worker panicked");
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Decrement the active-job count and wake [`Service::drain`]ers.
fn finish_active(inner: &Inner) {
    let mut active = inner.active.lock().unwrap();
    *active = active.saturating_sub(1);
    if *active == 0 {
        inner.idle.notify_all();
    }
}

/// Finalize a job into a terminal state: set the state, bump counters and
/// metrics (including per-tenant SLO accounting), and hand the finished
/// timeline to the flight recorder.
fn finalize(inner: &Inner, record: &JobRecord, state: JobState) {
    debug_assert!(state.is_terminal());
    let (counter, metric) = match &state {
        JobState::Completed(_) => (&inner.counters.completed, names::SERVE_COMPLETED),
        JobState::Failed(_) => (&inner.counters.failed, names::SERVE_FAILED),
        JobState::Cancelled => (&inner.counters.cancelled, names::SERVE_CANCELLED),
        JobState::DeadlineExceeded => (&inner.counters.deadline_misses, names::SERVE_DEADLINE_MISS),
        _ => unreachable!(),
    };
    let tag = state.tag();
    let detail = match &state {
        JobState::Failed(err) => Some(err.clone()),
        _ => None,
    };
    record.flight.stamp(tag, detail);
    let latency = record.flight.elapsed();
    *record.state.lock().unwrap() = state;
    counter.fetch_add(1, Ordering::Relaxed);
    if inner.trace.enabled() {
        let metrics = inner.trace.metrics();
        metrics.add(metric, 1);
        let latency_us = latency.as_micros() as u64;
        // Queue wait ends when a worker picks the job up (compile or
        // coalesce stamp); jobs that die queued waited their whole life.
        let queue_wait = record
            .flight
            .first_at(phases::COMPILE)
            .or_else(|| record.flight.first_at(phases::COALESCE))
            .unwrap_or(latency);
        let tenant = record.tenant.as_str();
        metrics.observe_labeled(
            names::SERVE_JOB_LATENCY_US,
            &[("tenant", tenant), ("state", tag)],
            latency_us,
        );
        metrics.observe_labeled(
            names::SERVE_QUEUE_WAIT_US,
            &[("tenant", tenant)],
            queue_wait.as_micros() as u64,
        );
        let attempts = record.attempts.load(Ordering::Relaxed) as u64;
        metrics.observe_labeled(
            names::SERVE_JOB_RETRIES,
            &[("tenant", tenant), ("state", tag)],
            attempts.saturating_sub(1),
        );
        if let Some(threshold) = inner.slo.threshold_for(tenant) {
            metrics.add_labeled(names::SLO_CHECKED, &[("tenant", tenant)], 1);
            if latency > threshold {
                metrics.add_labeled(names::SLO_MISS, &[("tenant", tenant)], 1);
            }
        }
    }
    inner.flight.push(FlightTimeline {
        id: record.id,
        tenant: record.tenant.clone(),
        label: record.label.clone(),
        state: tag.to_string(),
        events: record.flight.events(),
    });
    finish_active(inner);
}

/// Sleep out a retry backoff in small slices, polling the token so client
/// cancels and deadline expiry interrupt the wait.
fn backoff_sleep(token: &CancelToken, total: Duration) -> Result<(), CancelReason> {
    let slice = Duration::from_millis(2);
    let until = Instant::now() + total;
    loop {
        token.check()?;
        let now = Instant::now();
        if now >= until {
            return Ok(());
        }
        std::thread::sleep(slice.min(until - now));
    }
}

fn worker_loop(inner: &Inner) {
    while let Some(entry) = inner.queue.pop() {
        let record = match inner.jobs.lock().unwrap().get(&entry.id) {
            Some(record) => Arc::clone(record),
            None => continue, // rejected after push raced; nothing to run
        };

        // Claim the job; a concurrent cancel of a queued job may already
        // have finalized it.
        {
            let mut state = record.state.lock().unwrap();
            match &*state {
                JobState::Queued => *state = JobState::Running,
                _ => continue,
            }
        }

        // A token that fired while queued stops the job before any work.
        if let Err(reason) = record.token.check() {
            finalize(inner, &record, state_of(reason));
            continue;
        }

        // Coalesced compile: one concurrent compile per (fingerprint, opt
        // level) — the plan cache keys plans that way too; the followers
        // wait, then hit the plan cache.
        let level = record.submission.opt.unwrap_or(inner.engine.opt_level());
        let key = record.submission.circuit.fingerprint()
            ^ (level as u64).wrapping_mul(0x9e3779b97f4a7c15);
        match inner.coalescer.begin(key) {
            CompileRole::Leader(flight) => {
                record.flight.stamp(phases::COMPILE, None);
                let compiled = inner.engine.plan_with(&record.submission.circuit, level);
                inner.coalescer.finish(key, &flight);
                if let Err(e) = compiled {
                    finalize(inner, &record, JobState::Failed(e.to_string()));
                    continue;
                }
            }
            CompileRole::Coalesced => {
                record.flight.stamp(phases::COALESCE, None);
                inner
                    .counters
                    .coalesced_compiles
                    .fetch_add(1, Ordering::Relaxed);
                if inner.trace.enabled() {
                    inner.trace.metrics().add(names::SERVE_COALESCED, 1);
                }
            }
        }

        run_admitted(inner, &record);
    }
}

fn state_of(reason: CancelReason) -> JobState {
    match reason {
        CancelReason::Cancelled => JobState::Cancelled,
        CancelReason::DeadlineExceeded => JobState::DeadlineExceeded,
    }
}

/// Execute one admitted job with retries; always finalizes it.
fn run_admitted(inner: &Inner, record: &JobRecord) {
    let sub = &record.submission;
    loop {
        let attempt = record.attempts.fetch_add(1, Ordering::Relaxed) + 1;
        record
            .flight
            .stamp(phases::SHOTS, Some(format!("attempt {attempt}")));
        let mut job = Job::new(&sub.circuit)
            .inputs(sub.inputs.clone())
            .shots(sub.shots)
            .seed(sub.seed)
            .label(record.label.clone())
            .cancel_token(record.token.clone());
        if let Some(backend) = &sub.backend {
            job = job.on_backend(backend);
        }
        if let Some(level) = sub.opt {
            job = job.opt(level);
        }
        // Shots run sequentially on this worker: the service parallelizes
        // across jobs, and per-shot seeds make the outcome schedule-free.
        match inner.engine.run_sequential(&job) {
            Ok(result) => {
                finalize(inner, record, JobState::Completed(Arc::new(result)));
                return;
            }
            Err(ExecError::Cancelled { reason }) => {
                finalize(inner, record, state_of(reason));
                return;
            }
            Err(e) if e.is_transient() && inner.retry.should_retry(attempt) => {
                record.flight.stamp(phases::RETRY, Some(e.to_string()));
                inner.counters.retries.fetch_add(1, Ordering::Relaxed);
                if inner.trace.enabled() {
                    inner.trace.metrics().add(names::SERVE_RETRY, 1);
                }
                let pause = inner
                    .retry
                    .backoff(attempt, sub.seed ^ record.id.rotate_left(17));
                if let Err(reason) = backoff_sleep(&record.token, pause) {
                    finalize(inner, record, state_of(reason));
                    return;
                }
            }
            Err(e) => {
                finalize(inner, record, JobState::Failed(e.to_string()));
                return;
            }
        }
    }
}

#[cfg(test)]
mod coalescer_tests {
    use super::*;

    #[test]
    fn followers_wait_for_the_leader_then_coalesce() {
        let coalescer = Arc::new(Coalescer::default());
        let flight = match coalescer.begin(42) {
            CompileRole::Leader(flight) => flight,
            CompileRole::Coalesced => panic!("first begin must lead"),
        };
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let coalescer = Arc::clone(&coalescer);
                std::thread::spawn(move || matches!(coalescer.begin(42), CompileRole::Coalesced))
            })
            .collect();
        // Give the followers time to block on the in-flight compile.
        std::thread::sleep(Duration::from_millis(30));
        coalescer.finish(42, &flight);
        for follower in followers {
            assert!(follower.join().unwrap(), "follower should coalesce");
        }
        // The flight is gone: the next begin leads again.
        assert!(matches!(coalescer.begin(42), CompileRole::Leader(_)));
        // Other keys are independent flights.
        assert!(matches!(coalescer.begin(7), CompileRole::Leader(_)));
    }
}
