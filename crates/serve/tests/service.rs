//! Integration tests of the service's headline guarantees:
//!
//! * a fault-injected, mixed-tenant, 100-job load loses nothing — every
//!   admitted job reaches an allowed terminal state, none `Failed`;
//! * deadlines and client cancels stop shot execution *mid-job*, visible
//!   in the exec trace metrics;
//! * a full queue and an empty quota reject synchronously with honest
//!   retry-after hints;
//! * identical concurrent submissions share compiles and agree bit-exactly.

use std::sync::Arc;
use std::time::{Duration, Instant};

use quipper::{Circ, Qubit};
use quipper_circuit::BCircuit;
use quipper_exec::{Engine, EngineConfig};
use quipper_serve::{
    FaultConfig, FaultInjector, JobState, QuotaPolicy, RejectReason, RetryPolicy, Service,
    ServiceConfig, Submission,
};
use quipper_trace::{names, Tracer};

fn ghz(n: usize) -> BCircuit {
    Circ::build(&vec![false; n], |c, qs: Vec<Qubit>| {
        c.hadamard(qs[0]);
        for w in qs.windows(2) {
            c.cnot(w[1], w[0]);
        }
        qs.into_iter().map(|q| c.measure(q)).collect::<Vec<_>>()
    })
}

/// QFT-ish non-Clifford circuit: routes to the state-vector backend.
fn rotated(n: usize) -> BCircuit {
    Circ::build(&vec![false; n], |c, qs: Vec<Qubit>| {
        for (i, &q) in qs.iter().enumerate() {
            c.hadamard(q);
            c.rot("Ry(%)", 0.3 + 0.1 * i as f64, q);
        }
        qs.into_iter().map(|q| c.measure(q)).collect::<Vec<_>>()
    })
}

fn leaked_enabled_tracer() -> &'static Tracer {
    let trace = Tracer::leaked(4096);
    trace.set_enabled(true);
    trace
}

/// Engine + service sharing one dedicated tracer, with seeded fault
/// injection on every backend.
fn faulted_service(trace: &'static Tracer, fault: FaultConfig, config: ServiceConfig) -> Service {
    let engine_config = EngineConfig {
        trace,
        ..EngineConfig::default()
    };
    let backends = FaultInjector::wrap_default_backends(&engine_config, fault);
    Service::start(Engine::with_backends(engine_config, backends), config)
}

/// The acceptance load: 100 jobs, four tenants, mixed circuits and shot
/// counts, 10% per-shot transient fault probability, a sprinkle of client
/// cancels. Zero lost jobs: everything admitted terminates as Completed or
/// Cancelled (deadlines here are generous), and nothing ends Failed.
#[test]
fn hundred_job_faulted_mixed_tenant_load_loses_nothing() {
    let trace = leaked_enabled_tracer();
    let service = faulted_service(
        trace,
        FaultConfig::failing(0.10, 0xFA17),
        ServiceConfig {
            workers: 4,
            queue_capacity: 256,
            quota: QuotaPolicy::unlimited(),
            // A fault can hit any shot, so a whole attempt fails with
            // probability 1-0.9^shots; a deep attempt budget with short
            // backoffs makes job loss astronomically unlikely while keeping
            // the test fast.
            retry: RetryPolicy {
                max_attempts: 64,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(4),
            },
            trace,
            ..ServiceConfig::default()
        },
    );

    let circuits: [(&str, usize, Arc<BCircuit>); 3] = [
        ("ghz3", 3, Arc::new(ghz(3))),
        ("ghz5", 5, Arc::new(ghz(5))),
        ("rot4", 4, Arc::new(rotated(4))),
    ];
    let tenants = ["alice", "bob", "carol", "dave"];

    let mut submitted = Vec::new();
    for i in 0..100u64 {
        let (name, arity, circuit) = &circuits[(i % 3) as usize];
        let shots = 1 + i % 8;
        let mut submission = Submission::new(tenants[(i % 4) as usize], Arc::clone(circuit))
            .label(format!("{name}-{i}"))
            .inputs(vec![false; *arity])
            .shots(shots)
            .seed(i)
            .priority((i % 3) as u8);
        if i % 10 == 0 {
            // Generous deadlines: these jobs should still complete.
            submission = submission.deadline(Duration::from_secs(120));
        }
        let id = service.submit(submission).expect("load fits the queue");
        submitted.push((id, shots, format!("{name}-{i}")));
        if i % 9 == 0 {
            // A client changes its mind; queued or running, nothing is lost.
            service.cancel(id);
        }
    }

    service.drain();

    let mut completed = 0u64;
    let mut cancelled = 0u64;
    for (id, shots, label) in &submitted {
        let status = service.status(*id).expect("admitted job is known");
        assert_eq!(&status.label, label);
        match &status.state {
            JobState::Completed(result) => {
                completed += 1;
                let total: u64 = result.histogram.iter().map(|&(_, n)| n).sum();
                assert_eq!(total, *shots, "job {id} lost shots");
            }
            JobState::Cancelled => cancelled += 1,
            other => panic!("job {id} lost: ended {other:?}"),
        }
    }
    assert_eq!(completed + cancelled, 100, "every admitted job terminates");
    assert!(completed >= 85, "cancels only affect targeted jobs");

    let stats = service.stats();
    assert_eq!(stats.submitted, 100);
    assert_eq!(stats.admitted, 100);
    assert_eq!(stats.failed, 0, "zero lost jobs under 10% faults");
    assert_eq!(stats.terminal(), 100);
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.cancelled, cancelled);
    // ~800 shots at 10% fault probability: retries certainly happened, and
    // the metrics saw them.
    assert!(stats.retries > 0);
    let metrics = trace.metrics();
    assert_eq!(metrics.counter(names::SERVE_ADMIT), 100);
    assert_eq!(metrics.counter(names::SERVE_RETRY), stats.retries);
    assert_eq!(metrics.counter(names::SERVE_COMPLETED), completed);
    assert!(metrics.max(names::SERVE_QUEUE_DEPTH) > 0);

    service.shutdown();
}

/// A deadline fires while the shot loop is running: the job ends
/// `DeadlineExceeded`, and the trace metrics show execution stopped
/// mid-job — some shots ran, far fewer than requested.
#[test]
fn deadline_stops_shot_execution_mid_job() {
    let trace = leaked_enabled_tracer();
    let service = faulted_service(
        trace,
        // No failures; every shot pays a 2ms latency spike, so the job
        // cannot finish 50_000 shots inside its deadline.
        FaultConfig {
            fail_prob: 0.0,
            spike_prob: 1.0,
            spike: Duration::from_millis(2),
            seed: 1,
        },
        ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            quota: QuotaPolicy::unlimited(),
            retry: RetryPolicy::default(),
            trace,
            ..ServiceConfig::default()
        },
    );

    let id = service
        .submit(
            Submission::new("tenant", Arc::new(ghz(3)))
                .label("deadline-victim")
                .inputs(vec![false; 3])
                .shots(50_000)
                .deadline(Duration::from_millis(80)),
        )
        .unwrap();
    service.drain();

    let status = service.status(id).unwrap();
    assert!(
        matches!(status.state, JobState::DeadlineExceeded),
        "expected DeadlineExceeded, got {}",
        status.state.tag()
    );

    let metrics = trace.metrics();
    let shots_run = metrics.counter(names::SHOTS_RUN);
    assert!(shots_run > 0, "execution started before the deadline");
    assert!(
        shots_run < 50_000,
        "deadline interrupted the shot loop mid-job (ran {shots_run})"
    );
    assert!(metrics.counter(names::EXEC_CANCELLED) >= 1);
    assert_eq!(metrics.counter(names::SERVE_DEADLINE_MISS), 1);
    assert_eq!(service.stats().deadline_misses, 1);

    service.shutdown();
}

/// Cancelling a *running* job stops its shot loop the same way.
#[test]
fn cancel_stops_a_running_job_mid_execution() {
    let trace = leaked_enabled_tracer();
    let service = faulted_service(
        trace,
        FaultConfig {
            fail_prob: 0.0,
            spike_prob: 1.0,
            spike: Duration::from_millis(2),
            seed: 2,
        },
        ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            quota: QuotaPolicy::unlimited(),
            retry: RetryPolicy::default(),
            trace,
            ..ServiceConfig::default()
        },
    );

    let id = service
        .submit(
            Submission::new("tenant", Arc::new(ghz(3)))
                .inputs(vec![false; 3])
                .shots(50_000),
        )
        .unwrap();
    // Wait for the worker to pick it up.
    let running_by = Instant::now() + Duration::from_secs(10);
    while !matches!(service.status(id).unwrap().state, JobState::Running) {
        assert!(Instant::now() < running_by, "job never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    service.cancel(id);
    service.drain();

    let status = service.status(id).unwrap();
    assert!(matches!(status.state, JobState::Cancelled));
    let metrics = trace.metrics();
    assert!(metrics.counter(names::SHOTS_RUN) < 50_000);
    assert!(metrics.counter(names::EXEC_CANCELLED) >= 1);
    assert_eq!(metrics.counter(names::SERVE_CANCELLED), 1);

    service.shutdown();
}

/// A full admission queue rejects synchronously with a positive
/// retry-after hint, and the rejection shows up in metrics — backpressure
/// at the door, not timeouts inside.
#[test]
fn full_queue_rejects_with_retry_hint() {
    let trace = leaked_enabled_tracer();
    let service = faulted_service(
        trace,
        FaultConfig {
            fail_prob: 0.0,
            spike_prob: 1.0,
            spike: Duration::from_millis(2),
            seed: 3,
        },
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            quota: QuotaPolicy::unlimited(),
            retry: RetryPolicy::default(),
            trace,
            ..ServiceConfig::default()
        },
    );

    let slow = |label: &str| {
        Submission::new("tenant", Arc::new(ghz(3)))
            .label(label)
            .inputs(vec![false; 3])
            .shots(50_000)
    };
    // First job occupies the worker (eventually); second sits in the queue;
    // the queue has capacity 1, so a third must bounce.
    let a = service.submit(slow("runs")).unwrap();
    let mut queued = Vec::new();
    let rejection = loop {
        match service.submit(slow("queued")) {
            Ok(id) => queued.push(id),
            Err(rejection) => break rejection,
        }
        assert!(queued.len() <= 2, "capacity-1 queue admitted too much");
    };
    assert_eq!(rejection.reason, RejectReason::QueueFull);
    assert!(rejection.retry_after > Duration::ZERO);
    assert!(trace.metrics().counter(names::SERVE_REJECT_FULL) >= 1);
    assert_eq!(service.stats().rejected_queue_full, 1);

    // Nothing admitted is lost: cancel everything and drain.
    service.cancel(a);
    for id in queued {
        service.cancel(id);
    }
    service.drain();
    assert_eq!(service.stats().terminal(), service.stats().admitted);
    service.shutdown();
}

/// Quota exhaustion rejects with a retry-after hint and is per-tenant:
/// one tenant draining its bucket does not affect another.
#[test]
fn quota_rejections_are_per_tenant_with_hints() {
    let trace = leaked_enabled_tracer();
    let service = faulted_service(
        trace,
        FaultConfig::default(),
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            quota: QuotaPolicy {
                capacity: 2.0,
                refill_per_sec: 0.5,
                cost_per_job: 1.0,
                cost_per_kshot: 0.0,
            },
            retry: RetryPolicy::default(),
            trace,
            ..ServiceConfig::default()
        },
    );

    let cheap = |tenant: &str| {
        Submission::new(tenant, Arc::new(ghz(3)))
            .inputs(vec![false; 3])
            .shots(4)
    };
    service.submit(cheap("greedy")).unwrap();
    service.submit(cheap("greedy")).unwrap();
    let rejection = service.submit(cheap("greedy")).unwrap_err();
    assert_eq!(rejection.reason, RejectReason::QuotaExhausted);
    // Missing ~1 token at 0.5/s: the hint is honest (~2s).
    assert!(rejection.retry_after > Duration::from_millis(500));
    assert!(rejection.retry_after < Duration::from_secs(5));
    // Another tenant is unaffected.
    service.submit(cheap("frugal")).unwrap();
    assert!(trace.metrics().counter(names::SERVE_REJECT_QUOTA) >= 1);

    service.drain();
    assert_eq!(service.stats().failed, 0);
    service.shutdown();
}

/// Concurrent identical submissions: everyone completes, results are
/// bit-identical across all copies (same circuit, same seed), and the
/// engine compiled the plan exactly once — followers either coalesced onto
/// the in-flight compile or hit the plan cache.
#[test]
fn identical_concurrent_jobs_share_one_compile_and_agree() {
    let trace = leaked_enabled_tracer();
    let engine = Engine::with_config(EngineConfig {
        trace,
        ..EngineConfig::default()
    });
    let service = Service::start(
        engine,
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            quota: QuotaPolicy::unlimited(),
            retry: RetryPolicy::default(),
            trace,
            ..ServiceConfig::default()
        },
    );

    let circuit = Arc::new(rotated(4));
    let ids: Vec<_> = (0..12)
        .map(|i| {
            service
                .submit(
                    Submission::new("tenant", Arc::clone(&circuit))
                        .label(format!("copy-{i}"))
                        .inputs(vec![false; 4])
                        .shots(64)
                        .seed(99),
                )
                .unwrap()
        })
        .collect();
    service.drain();

    let reference = service.result(ids[0]).expect("first copy completed");
    for &id in &ids[1..] {
        let result = service.result(id).expect("copy completed");
        assert_eq!(
            result.histogram, reference.histogram,
            "same circuit + same seed must be bit-identical"
        );
    }
    assert_eq!(
        service.engine().plan_cache().misses(),
        1,
        "twelve identical jobs, one compile"
    );
    // And no shot run ever found the cache cold: the coalesced pre-plan in
    // the worker always populated it first.
    assert_eq!(trace.metrics().counter(names::CACHE_MISS), 0);
    let stats = service.stats();
    assert_eq!(stats.completed, 12);
    service.shutdown();
}
