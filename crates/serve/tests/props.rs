//! Property tests of the service's determinism guarantees.
//!
//! The headline property: fault-injected retry is *invisible* in results.
//! Because shot seeds derive from (job seed, shot index) and the fault
//! injector draws from its own seed stream, a job that survives transient
//! faults via retries produces output bit-identical to the same job run
//! fault-free on a plain engine.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use quipper::{Circ, Qubit};
use quipper_circuit::BCircuit;
use quipper_exec::{Engine, EngineConfig, Job};
use quipper_serve::{
    FaultConfig, FaultInjector, QuotaPolicy, RetryPolicy, Service, ServiceConfig, Submission,
};

/// GHZ chain: routes to the stabilizer backend.
fn ghz(n: usize) -> BCircuit {
    Circ::build(&vec![false; n], |c, qs: Vec<Qubit>| {
        c.hadamard(qs[0]);
        for w in qs.windows(2) {
            c.cnot(w[1], w[0]);
        }
        qs.into_iter().map(|q| c.measure(q)).collect::<Vec<_>>()
    })
}

/// Per-qubit rotations: non-Clifford, routes to the state-vector backend.
fn rotated(n: usize) -> BCircuit {
    Circ::build(&vec![false; n], |c, qs: Vec<Qubit>| {
        for (i, &q) in qs.iter().enumerate() {
            c.hadamard(q);
            c.rot("Ry(%)", 0.3 + 0.1 * i as f64, q);
        }
        qs.into_iter().map(|q| c.measure(q)).collect::<Vec<_>>()
    })
}

fn build(kind: bool, n: usize) -> BCircuit {
    if kind {
        ghz(n)
    } else {
        rotated(n)
    }
}

proptest! {
    // Each case spins up a real worker pool; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Retried jobs are bit-identical to a fault-free run: same circuit,
    /// same inputs, same seed, wildly different fault histories — exactly
    /// the same histogram.
    #[test]
    fn retried_jobs_match_the_fault_free_run(
        kind in any::<bool>(),
        n in 2usize..=4,
        shots in 1u64..20,
        seed in any::<u64>(),
        // The vendored proptest has no f64 range strategy; draw percent.
        fail_pct in 5u32..30,
        fault_seed in any::<u64>(),
    ) {
        let circuit = Arc::new(build(kind, n));
        let inputs = vec![false; n];

        // Reference: a plain engine, no faults, no service.
        let reference = Engine::new()
            .run_sequential(
                &Job::new(&circuit).inputs(inputs.clone()).shots(shots).seed(seed),
            )
            .expect("fault-free reference run succeeds");

        // Candidate: the full service path with injected faults. A fault can
        // hit any shot, so a whole attempt fails with probability
        // 1-(1-p)^shots ≤ 1-0.7^20 ≈ 0.9992; with 512 attempts the chance of
        // losing the job is ~1e-70 — effectively impossible, and the test
        // fails loudly (state != completed) if it ever happens.
        let engine_config = EngineConfig::default();
        let backends = FaultInjector::wrap_default_backends(
            &engine_config,
            FaultConfig::failing(f64::from(fail_pct) / 100.0, fault_seed),
        );
        let service = Service::start(
            Engine::with_backends(engine_config, backends),
            ServiceConfig {
                workers: 1,
                queue_capacity: 4,
                quota: QuotaPolicy::unlimited(),
                retry: RetryPolicy {
                    max_attempts: 512,
                    base: Duration::from_micros(100),
                    cap: Duration::from_millis(1),
                },
                trace: quipper_trace::tracer(),
                ..ServiceConfig::default()
            },
        );
        let id = service
            .submit(
                Submission::new("prop", Arc::clone(&circuit))
                    .inputs(inputs)
                    .shots(shots)
                    .seed(seed),
            )
            .expect("queue has room");
        service.drain();

        let result = service.result(id).unwrap_or_else(|| {
            panic!(
                "job not completed: {}",
                service.status(id).unwrap().state.tag()
            )
        });
        prop_assert_eq!(&result.histogram, &reference.histogram);
        service.shutdown();
    }

    /// The service itself is replay-deterministic: submitting the same job
    /// twice (same seed) yields identical histograms, regardless of worker
    /// interleaving.
    #[test]
    fn resubmission_with_the_same_seed_replays_exactly(
        kind in any::<bool>(),
        n in 2usize..=4,
        shots in 1u64..32,
        seed in any::<u64>(),
    ) {
        let circuit = Arc::new(build(kind, n));
        let service = Service::start(
            Engine::new(),
            ServiceConfig {
                workers: 2,
                queue_capacity: 8,
                quota: QuotaPolicy::unlimited(),
                retry: RetryPolicy::default(),
                trace: quipper_trace::tracer(),
                ..ServiceConfig::default()
            },
        );
        let submit = || {
            service
                .submit(
                    Submission::new("prop", Arc::clone(&circuit))
                        .inputs(vec![false; n])
                        .shots(shots)
                        .seed(seed),
                )
                .expect("queue has room")
        };
        let first = submit();
        let second = submit();
        service.drain();
        let a = service.result(first).expect("first run completed");
        let b = service.result(second).expect("second run completed");
        prop_assert_eq!(&a.histogram, &b.histogram);
        service.shutdown();
    }
}
