//! Loopback smoke for the telemetry plane (PR 8 acceptance):
//!
//! * a fault-injected job that misses its deadline produces a flight dump
//!   naming every lifecycle phase (admit → queue → compile → shots → retry
//!   → deadline_exceeded) with monotone offsets and span durations;
//! * the `metrics` op round-trips through the in-repo JSON parser in both
//!   exposition formats, and carries the per-tenant SLO burn counters and
//!   latency histograms;
//! * the `stats` op reports the engine-level plan-cache counters.
//!
//! Everything runs over a real TCP loopback connection against a dedicated
//! (leaked) tracer, so the assertions cover the full wire path and don't
//! depend on process-global tracing state.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use quipper_exec::{Engine, EngineConfig};
use quipper_serve::catalog::Catalog;
use quipper_serve::{
    FaultConfig, FaultInjector, RetryPolicy, Server, Service, ServiceConfig, SloPolicy,
};
use quipper_trace::{parse_json, Json, Tracer};

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        let writer = stream.try_clone().unwrap();
        Client {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn rpc(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        parse_json(response.trim()).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
    }
}

/// A served stack where every shot faults transiently: jobs can never
/// complete, so a deadlined submission deterministically exhausts its
/// deadline inside the retry loop.
fn always_faulting_stack() -> (Arc<Service>, Server) {
    let trace: &'static Tracer = Tracer::leaked(1 << 16);
    trace.set_enabled(true);
    let engine_config = EngineConfig {
        trace,
        ..EngineConfig::default()
    };
    let backends =
        FaultInjector::wrap_default_backends(&engine_config, FaultConfig::failing(1.0, 0xD15A));
    let service = Arc::new(Service::start(
        Engine::with_backends(engine_config, backends),
        ServiceConfig {
            workers: 1,
            retry: RetryPolicy {
                max_attempts: 10_000,
                base: Duration::from_millis(10),
                cap: Duration::from_millis(20),
            },
            slo: SloPolicy::with_default(Duration::from_millis(1))
                .tenant("relaxed", Duration::from_secs(3600)),
            flight_capacity: 32,
            trace,
            ..ServiceConfig::default()
        },
    ));
    let server = Server::start(
        "127.0.0.1:0",
        Arc::clone(&service),
        Arc::new(Catalog::new()),
    )
    .expect("bind loopback");
    (service, server)
}

fn wait_terminal(client: &mut Client, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = client.rpc(&format!(r#"{{"op":"status","id":{id}}}"#));
        let state = status
            .get("state")
            .and_then(Json::as_str)
            .expect("status has state")
            .to_string();
        if !matches!(state.as_str(), "queued" | "running") {
            return state;
        }
        assert!(Instant::now() < deadline, "job {id} never terminated");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Assert the timeline object names every lifecycle phase, with numeric
/// monotone offsets and span durations on every event.
fn assert_full_lifecycle(flight: &Json, terminal: &str) {
    let events = flight
        .get("events")
        .and_then(Json::as_arr)
        .expect("flight has events");
    let phases: Vec<&str> = events
        .iter()
        .map(|e| e.get("phase").and_then(Json::as_str).expect("event phase"))
        .collect();
    for phase in ["admit", "queue", "compile", "shots", "retry", terminal] {
        assert!(phases.contains(&phase), "missing {phase} in {phases:?}");
    }
    let mut last_at = -1.0;
    for event in events {
        let at = event.get("at_us").and_then(Json::as_num).expect("at_us");
        let dur = event.get("dur_us").and_then(Json::as_num).expect("dur_us");
        assert!(at >= last_at, "offsets must be monotone: {events:?}");
        assert!(dur >= 0.0);
        last_at = at;
    }
    // The retry backoff (≥10ms) must be visible as elapsed span time.
    assert!(last_at >= 10_000.0, "timeline too short: {events:?}");
}

#[test]
fn deadline_missed_job_dumps_flight_and_metrics_expose_slo_burn() {
    let (_service, server) = always_faulting_stack();
    let mut client = Client::connect(server.local_addr());

    let submit = client.rpc(
        r#"{"op":"submit","circuit":"ghz3","tenant":"alice","shots":2,"seed":3,"label":"doomed","deadline_ms":80}"#,
    );
    assert_eq!(submit.get("ok"), Some(&Json::Bool(true)), "{submit:?}");
    let id = submit.get("id").and_then(Json::as_num).unwrap() as u64;

    assert_eq!(wait_terminal(&mut client, id), "deadline_exceeded");

    // The failed result carries the flight dump inline.
    let result = client.rpc(&format!(r#"{{"op":"result","id":{id}}}"#));
    assert_eq!(result.get("ok"), Some(&Json::Bool(false)));
    assert_full_lifecycle(
        result.get("flight").expect("result has flight"),
        "deadline_exceeded",
    );

    // The same timeline is addressable via the flight op, by id and ring.
    let by_id = client.rpc(&format!(r#"{{"op":"flight","id":{id}}}"#));
    let flights = by_id.get("flights").and_then(Json::as_arr).unwrap();
    assert_eq!(flights.len(), 1);
    assert_eq!(
        flights[0].get("state").and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    assert_full_lifecycle(&flights[0], "deadline_exceeded");
    let recent = client.rpc(r#"{"op":"flight","recent":4}"#);
    assert!(
        recent
            .get("flights")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .any(|t| t.get("id").and_then(Json::as_num) == Some(id as f64)),
        "ring dump misses the job"
    );

    // JSON Lines exposition: every line parses; the SLO burn and the
    // per-tenant latency histogram are present.
    let metrics = client.rpc(r#"{"op":"metrics","format":"json"}"#);
    assert_eq!(metrics.get("ok"), Some(&Json::Bool(true)));
    let text = metrics.get("text").and_then(Json::as_str).unwrap();
    let rows: Vec<Json> = text
        .lines()
        .map(|l| parse_json(l).expect("JSON line parses"))
        .collect();
    let find = |name: &str, label: Option<(&str, &str)>| -> Option<&Json> {
        rows.iter().find(|r| {
            r.get("name").and_then(Json::as_str) == Some(name)
                && label.is_none_or(|(k, v)| {
                    r.get("labels")
                        .and_then(|l| l.get(k))
                        .and_then(Json::as_str)
                        == Some(v)
                })
        })
    };
    assert!(
        find("serve.deadline_miss", None)
            .and_then(|r| r.get("value"))
            .and_then(Json::as_num)
            .unwrap()
            >= 1.0
    );
    let latency = find("serve.job_latency_us", Some(("tenant", "alice"))).unwrap();
    assert_eq!(
        latency
            .get("labels")
            .and_then(|l| l.get("state"))
            .and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    assert!(latency.get("p99").and_then(Json::as_num).unwrap() > 0.0);
    assert!(
        find("serve.slo.checked", Some(("tenant", "alice"))).is_some(),
        "SLO checks missing"
    );
    assert!(
        find("serve.slo.miss", Some(("tenant", "alice")))
            .and_then(|r| r.get("value"))
            .and_then(Json::as_num)
            .unwrap()
            >= 1.0,
        "an 80ms+ job must burn a 1ms SLO"
    );
    assert!(
        find("serve.job_retries", Some(("tenant", "alice"))).is_some(),
        "retry histogram missing"
    );

    // Prometheus exposition: typed families, sanitized names, labeled
    // samples (labels sorted by key).
    let prom = client.rpc(r#"{"op":"metrics","format":"prometheus"}"#);
    let text = prom.get("text").and_then(Json::as_str).unwrap();
    assert!(
        text.contains("# TYPE serve_deadline_miss counter"),
        "{text}"
    );
    assert!(text.contains("serve_slo_miss{tenant=\"alice\"}"), "{text}");
    assert!(
        text.contains("serve_job_latency_us_count{state=\"deadline_exceeded\",tenant=\"alice\"}"),
        "{text}"
    );
    assert!(text.contains("serve_queue_wait_us_bucket{"), "{text}");

    // stats now reports the engine-level plan-cache counters: the one
    // compile is a miss, and the plan stayed cached.
    let stats = client.rpc(r#"{"op":"stats"}"#);
    assert!(
        stats
            .get("engine_cache_misses")
            .and_then(Json::as_num)
            .unwrap()
            >= 1.0
    );
    assert!(
        stats
            .get("engine_cached_plans")
            .and_then(Json::as_num)
            .unwrap()
            >= 1.0
    );
    assert!(stats.get("deadline_misses").and_then(Json::as_num).unwrap() >= 1.0);

    // Unknown formats are a protocol error, not a panic.
    let bad = client.rpc(r#"{"op":"metrics","format":"xml"}"#);
    assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
}
