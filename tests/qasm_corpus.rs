//! Corpus-driven acceptance tests for OpenQASM ingestion.
//!
//! Every fixture in `tests/qasm_corpus/` declares its own expectation in
//! its first line:
//!
//! ```text
//! // expect: ok                 — compiles, zero diagnostics
//! // expect: ok,QP004           — compiles; distinct codes exactly {QP004}
//! // expect: QP103              — rejected; distinct codes exactly {QP103}
//! // expect: QP001,QP003        — rejected; distinct codes exactly that set
//! ```
//!
//! Exact-set matching keeps the `QP###` codes honest as a stable API:
//! a change that shifts which code fires — or adds cascade noise — fails
//! here, not in a client's error handler. Accepted fixtures additionally
//! go through IR validation and the full `Plan` pipeline, proving the
//! corpus exercises circuits the execution stack genuinely accepts.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/qasm_corpus")
}

struct Expectation {
    accept: bool,
    codes: BTreeSet<String>,
}

fn parse_expectation(path: &Path, text: &str) -> Expectation {
    let first = text.lines().next().unwrap_or_default();
    let spec = first
        .strip_prefix("// expect:")
        .unwrap_or_else(|| panic!("{}: first line must be `// expect: ...`", path.display()))
        .trim();
    let mut accept = false;
    let mut codes = BTreeSet::new();
    for part in spec.split(',').map(str::trim) {
        if part == "ok" {
            accept = true;
        } else {
            assert!(
                part.starts_with("QP") && part.len() == 5,
                "{}: bad expectation token {part:?}",
                path.display()
            );
            codes.insert(part.to_string());
        }
    }
    Expectation { accept, codes }
}

#[test]
fn corpus_fixtures_match_their_declared_codes() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "qasm"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 20,
        "corpus shrank to {} fixtures",
        paths.len()
    );
    let mut failures = Vec::new();
    for path in &paths {
        let text = std::fs::read_to_string(path).unwrap();
        let want = parse_expectation(path, &text);
        let (bc, diags) = quipper_qasm::compile_full(&text);
        let got: BTreeSet<String> = diags.iter().map(|d| d.code.as_str().to_string()).collect();
        if bc.is_some() != want.accept {
            failures.push(format!(
                "{}: expected {}, got {} with codes {:?}\n{}",
                path.display(),
                if want.accept { "accept" } else { "reject" },
                if bc.is_some() { "accept" } else { "reject" },
                got,
                diags,
            ));
            continue;
        }
        if got != want.codes {
            failures.push(format!(
                "{}: expected codes {:?}, got {:?}\n{}",
                path.display(),
                want.codes,
                got,
                diags,
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// Accepted fixtures are first-class circuits: they validate as IR and
/// compile through lint gate + optimizer + plan cache.
#[test]
fn accepted_fixtures_plan_like_catalog_circuits() {
    let cache = quipper_exec::PlanCache::new();
    let mut accepted = 0;
    for entry in std::fs::read_dir(corpus_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "qasm") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let (bc, _) = quipper_qasm::compile_full(&text);
        let Some(bc) = bc else { continue };
        accepted += 1;
        bc.validate()
            .unwrap_or_else(|e| panic!("{}: invalid IR: {e}", path.display()));
        cache
            .get_or_compile(&bc)
            .unwrap_or_else(|e| panic!("{}: does not plan: {e}", path.display()));
    }
    assert!(accepted >= 7, "only {accepted} fixtures were accepted");
    assert_eq!(
        cache.len(),
        accepted,
        "distinct fixtures share a fingerprint"
    );
}
