//! Golden-file tests for OpenQASM 2.0 exports of *optimized* circuits.
//!
//! Each named circuit from the serve catalog is run through the aggressive
//! optimizer pipeline — whose final stages decompose to the binary target
//! gate set — and the export is compared byte-for-byte against
//! `tests/golden/<name>.opt.qasm`. Beyond pinning the optimizer's exact
//! output, the test proves the constrained target set: every quantum
//! statement in the export names at most two qubits (no `ccx`, no
//! multi-controlled anything).
//!
//! To re-bless after an *intentional* optimizer or exporter change:
//!
//! ```text
//! QASM_BLESS=1 cargo test --test opt_qasm_golden
//! ```

use std::path::PathBuf;

use quipper_circuit::qasm::to_qasm;
use quipper_opt::{optimize, OptLevel};
use quipper_serve::catalog::Catalog;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.opt.qasm"))
}

/// Number of distinct `q[i]` operands in one QASM statement.
fn qubit_operands(line: &str) -> usize {
    line.match_indices("q[").count()
}

fn check(name: &str) {
    let catalog = Catalog::new();
    let circuit = catalog
        .get(name)
        .unwrap_or_else(|| panic!("no circuit {name}"));
    let (optimized, report) = optimize(&circuit, OptLevel::Aggressive);
    optimized.validate().unwrap();
    assert_eq!(report.level, OptLevel::Aggressive);
    let qasm =
        to_qasm(&optimized).unwrap_or_else(|e| panic!("optimized {name} does not export: {e}"));

    // The binary target set, as exported: no statement may touch three or
    // more qubits. Only guaranteed when the pipeline kept the
    // decomposition — a reverted run hands back the (possibly wide)
    // pre-decompose circuit because it was smaller.
    if !report.reverted() {
        for line in qasm.lines() {
            assert!(
                qubit_operands(line) <= 2,
                "{name}: statement exceeds the binary gate set: {line}"
            );
        }
    }

    let path = golden_path(name);
    if std::env::var_os("QASM_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &qasm).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with QASM_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        qasm, expected,
        "optimized {name} drifted from its golden file; if intentional, re-bless with QASM_BLESS=1"
    );
}

/// Teleportation: the classically-controlled corrections survive the
/// optimizer untouched while the unitary prefix is cleaned up.
#[test]
fn teleportation_opt_matches_golden() {
    check("teleportation");
}

/// Grover over 3 qubits: the oracle's Toffolis decompose into the binary
/// set, which is what makes the ≤2-operand assertion non-vacuous.
#[test]
fn grover3_opt_matches_golden() {
    check("grover3");
}

/// GHZ: already binary and irreducible; the export pins that the pipeline
/// leaves it alone.
#[test]
fn ghz3_opt_matches_golden() {
    check("ghz3");
}

/// QFT over 4 qubits: the controlled-phase cascade is already binary but
/// rotation merging sees adjacent diagonal runs.
#[test]
fn qft4_opt_matches_golden() {
    check("qft4");
}
