//! Cross-crate integration tests: the EDSL, the circuit IR, the
//! transformers and the simulators working together.

use quipper::decompose::{decompose, GateBase};
use quipper::{Circ, Measurable, Qubit};
use quipper_arith::qdint::{add_in_place, mul, QDInt};
use quipper_arith::IntM;
use quipper_circuit::flatten::inline_all;
use quipper_circuit::print::{to_ascii, to_text};

/// Build → print → validate → simulate, through every layer.
#[test]
fn full_pipeline_roundtrip() {
    let bc = Circ::build(
        &(false, vec![false; 2]),
        |c, (a, bs): (Qubit, Vec<Qubit>)| {
            c.hadamard(a);
            for &b in &bs {
                c.cnot(b, a);
            }
            c.measure((a, bs))
        },
    );
    bc.validate().expect("well-formed");
    let text = to_text(&bc);
    assert!(text.contains("QMeas"));
    let art = to_ascii(&bc.db, &bc.main, 100).expect("renders");
    assert_eq!(art.lines().count(), 3);
    // GHZ correlations: all outputs equal.
    for seed in 0..20 {
        let outs = quipper_sim::run(&bc, &[false; 3], seed)
            .unwrap()
            .classical_outputs();
        assert!(outs.iter().all(|&b| b == outs[0]), "GHZ agreement");
    }
}

/// Decomposition to the binary gate base preserves semantics, checked on
/// the classical simulator over all basis inputs.
#[test]
fn decompose_preserves_classical_semantics() {
    let bc = Circ::build(&vec![false; 4], |c, qs: Vec<Qubit>| {
        c.qnot_ctrl(qs[0], &vec![qs[1], qs[2], qs[3]]);
        c.qnot_ctrl(qs[1], &vec![(qs[2], false), (qs[3], true)]);
        c.with_controls(&qs[0], |c| c.swap(qs[2], qs[3]));
        qs
    });
    let binary = decompose(GateBase::Binary, &bc);
    binary.validate().expect("binary circuit well-formed");
    for bits in 0..16u32 {
        let input: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
        let a = quipper_sim::run_classical(&bc, &input);
        // The binary decomposition contains V gates (not classical); run it
        // on the state-vector simulator instead and measure.
        let mut with_meas = Circ::build(&vec![false; 4], |c, qs: Vec<Qubit>| {
            let qs2 = c.box_circ("noop", qs, |_c, qs: Vec<Qubit>| qs);
            qs2.measure_in(c)
        });
        let _ = &mut with_meas;
        let r = quipper_sim::run(&binary, &input, 1).unwrap();
        let wires: Vec<_> = r.outputs.iter().map(|&(w, _)| w).collect();
        let got: Vec<bool> = wires
            .iter()
            .map(|&w| r.state.probability(w, true) > 0.5)
            .collect();
        assert_eq!(got, a.unwrap(), "inputs {bits:04b}");
    }
}

/// Quantum arithmetic composes with boxing and still computes correctly
/// after inlining.
#[test]
fn arithmetic_through_boxes_and_inlining() {
    let w = 4;
    let shape = (IntM::new(0, w), IntM::new(0, w));
    let bc = Circ::build(&shape, |c, (a, b): (QDInt, QDInt)| {
        let (a, b) = c.box_circ("addmul", (a, b), |c, (a, b): (QDInt, QDInt)| {
            add_in_place(c, &a, &b);
            (a, b)
        });
        let p = mul(c, &a, &b);
        (a, b, p)
    });
    bc.validate().unwrap();
    // Inline and re-validate: hierarchy and flat agree on counts.
    let flat = inline_all(&bc.db, &bc.main).unwrap();
    flat.validate_standalone().unwrap();
    let hier = bc.gate_count();
    let flat_count = quipper_circuit::count::count(&quipper_circuit::CircuitDb::new(), &flat);
    assert_eq!(hier.counts, flat_count.counts);
    // Semantics: a=3, b=2 → b'=5, p = 3·5 = 15.
    let mut input = vec![true, true, false, false]; // a = 3
    input.extend([false, true, false, false]); // b = 2
    let out = quipper_sim::run_classical(&bc, &input).unwrap();
    let dec = |bits: &[bool]| {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    };
    assert_eq!(dec(&out[0..4]), 3);
    assert_eq!(dec(&out[4..8]), 5);
    assert_eq!(dec(&out[8..12]), 15);
}

/// The three simulators agree on a circuit all of them can run.
#[test]
fn simulators_agree_on_a_deterministic_clifford_circuit() {
    let bc = Circ::build(&vec![false; 3], |c, qs: Vec<Qubit>| {
        c.qnot(qs[0]);
        c.cnot(qs[1], qs[0]);
        c.cnot(qs[2], qs[1]);
        c.qnot(qs[1]);
        c.measure(qs)
    });
    let inputs = [false, true, false];
    let sv = quipper_sim::run(&bc, &inputs, 3)
        .unwrap()
        .classical_outputs();
    let tab = quipper_sim::run_clifford(&bc, &inputs, 3).unwrap();
    let cl = quipper_sim::run_classical(&bc, &inputs).unwrap();
    assert_eq!(sv, tab);
    assert_eq!(sv, cl);
}

/// Reversing a reversible function really is its inverse: f then
/// reverse(f) is the identity on every basis input.
#[test]
fn reverse_composes_to_identity() {
    let f = |c: &mut Circ, qs: Vec<Qubit>| {
        c.cnot(qs[1], qs[0]);
        c.toffoli(qs[2], qs[0], qs[1]);
        c.qnot(qs[0]);
        c.swap(qs[1], qs[2]);
        qs
    };
    let bc = Circ::build(&vec![false; 3], |c, qs: Vec<Qubit>| {
        let qs = f(c, qs);
        c.reverse_simple(&vec![false; 3], f, qs)
    });
    bc.validate().unwrap();
    for bits in 0..8u32 {
        let input: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
        let out = quipper_sim::run_classical(&bc, &input).unwrap();
        assert_eq!(out, input, "identity on {bits:03b}");
    }
}

/// Teleportation: classically-controlled quantum corrections (§4.2.3)
/// reproduce the input state exactly, on every measurement branch.
#[test]
fn teleportation_with_classical_control_is_exact() {
    for &theta in &[0.4f64, 1.1, 2.5] {
        let mut c = Circ::new();
        let psi = c.qinit_bit(false);
        c.rot("Ry(%)", theta, psi);
        let a = c.qinit_bit(false);
        let b = c.qinit_bit(false);
        c.hadamard(a);
        c.cnot(b, a);
        c.cnot(a, psi);
        c.hadamard(psi);
        let m1 = c.measure_bit(psi);
        let m2 = c.measure_bit(a);
        c.qnot_ctrl(b, &m2);
        c.gate_ctrl(quipper::GateName::Z, b, &m1);
        c.cdiscard(m1);
        c.cdiscard(m2);
        c.rot("Ry(%)", -theta, b);
        let check = c.measure_bit(b);
        let bc = c.finish(&check);
        bc.validate().unwrap();
        for seed in 0..25 {
            let out = quipper_sim::run(&bc, &[], seed)
                .unwrap()
                .classical_outputs();
            assert!(
                !out[0],
                "theta={theta}, seed={seed}: verification bit must be 0"
            );
        }
    }
}

/// The OpenQASM exporter produces text containing exactly the expected
/// gate vocabulary for a small mixed circuit.
#[test]
fn qasm_export_roundtrip_vocabulary() {
    let bc = Circ::build(&vec![false; 3], |c, qs: Vec<Qubit>| {
        c.hadamard(qs[0]);
        c.toffoli(qs[2], qs[0], qs[1]);
        c.gate_t(qs[1]);
        c.with_ancilla(|c, x| {
            c.cnot(x, qs[0]);
            c.cnot(x, qs[0]);
        });
        c.measure(qs)
    });
    let qasm = quipper_circuit::qasm::to_qasm(&bc).unwrap();
    for needle in ["OPENQASM 2.0;", "ccx", "t q[", "measure", "qreg q[4];"] {
        assert!(qasm.contains(needle), "missing {needle} in:\n{qasm}");
    }
}
