//! Property-based tests (proptest) on the core invariants:
//!
//! * oracle synthesis is semantics-preserving and reversible for *random*
//!   classical DAGs;
//! * random reversible circuits validate, reverse to the identity, and
//!   count consistently before and after inlining;
//! * quantum arithmetic agrees with machine arithmetic on random operands.

use proptest::prelude::*;

use quipper::classical::{synth, BExpr, CDag, Dag};
use quipper::{Circ, Qubit};
use quipper_circuit::flatten::inline_all;
use quipper_circuit::reverse::reverse_circuit;

// ---------------------------------------------------------------------
// Random classical DAGs
// ---------------------------------------------------------------------

/// A recipe for building a random expression over n inputs.
#[derive(Clone, Debug)]
enum Op {
    Input(usize),
    Const(bool),
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

fn op_strategy(n_inputs: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_inputs).prop_map(Op::Input),
        any::<bool>().prop_map(Op::Const),
        any::<prop::sample::Index>().prop_map(|i| Op::Not(i.index(64))),
        (any::<prop::sample::Index>(), any::<prop::sample::Index>())
            .prop_map(|(a, b)| Op::And(a.index(64), b.index(64))),
        (any::<prop::sample::Index>(), any::<prop::sample::Index>())
            .prop_map(|(a, b)| Op::Or(a.index(64), b.index(64))),
        (any::<prop::sample::Index>(), any::<prop::sample::Index>())
            .prop_map(|(a, b)| Op::Xor(a.index(64), b.index(64))),
        (
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>()
        )
            .prop_map(|(a, b, c)| Op::Mux(a.index(64), b.index(64), c.index(64))),
    ]
}

/// Builds a DAG from a recipe; expressions reference earlier pool entries.
fn build_dag(n_inputs: usize, ops: &[Op], n_outputs: usize) -> CDag {
    let dag = Dag::new(n_inputs as u32);
    let inputs = dag.inputs();
    let mut pool: Vec<BExpr> = inputs.clone();
    for op in ops {
        let pick = |i: usize| pool[i % pool.len()].clone();
        let e = match op {
            Op::Input(i) => inputs[i % n_inputs].clone(),
            Op::Const(b) => dag.constant(*b),
            Op::Not(a) => !pick(*a),
            Op::And(a, b) => pick(*a) & pick(*b),
            Op::Or(a, b) => pick(*a) | pick(*b),
            Op::Xor(a, b) => pick(*a) ^ pick(*b),
            Op::Mux(s, t, e) => pick(*s).mux(&pick(*t), &pick(*e)),
        };
        pool.push(e);
    }
    let outs: Vec<BExpr> = pool.iter().rev().take(n_outputs).cloned().collect();
    dag.finish(&outs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Synthesized oracles compute exactly the classical function, for
    /// every input, and uncompute their scratch (the run would fail on a
    /// violated termination assertion otherwise).
    #[test]
    fn synthesized_oracle_matches_eval(
        ops in prop::collection::vec(op_strategy(4), 1..24),
        preset in any::<bool>(),
    ) {
        let dag = build_dag(4, &ops, 2);
        let bc = Circ::build(
            &(vec![false; 4], vec![false; 2]),
            |c, (xs, ts): (Vec<Qubit>, Vec<Qubit>)| {
                synth::classical_to_reversible(c, &dag, &xs, &ts);
                (xs, ts)
            },
        );
        bc.validate().unwrap();
        for bits in 0..16u32 {
            let input: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let want = dag.eval(&input);
            let mut sim_in = input.clone();
            sim_in.extend([preset, preset]);
            let out = quipper_sim::run_classical(&bc, &sim_in).unwrap();
            prop_assert_eq!(&out[..4], &input[..], "inputs preserved");
            prop_assert_eq!(out[4], preset ^ want[0]);
            prop_assert_eq!(out[5], preset ^ want[1]);
        }
    }

    /// Hash-consing never changes semantics.
    #[test]
    fn sharing_is_semantics_preserving(
        ops in prop::collection::vec(op_strategy(5), 1..30),
    ) {
        let shared = build_dag(5, &ops, 3);
        // Rebuild without sharing by re-running the recipe on an
        // unshared builder.
        let dag = Dag::new_without_sharing(5);
        let inputs = dag.inputs();
        let mut pool: Vec<BExpr> = inputs.clone();
        for op in &ops {
            let pick = |i: usize| pool[i % pool.len()].clone();
            let e = match op {
                Op::Input(i) => inputs[i % 5].clone(),
                Op::Const(b) => dag.constant(*b),
                Op::Not(a) => !pick(*a),
                Op::And(a, b) => pick(*a) & pick(*b),
                Op::Or(a, b) => pick(*a) | pick(*b),
                Op::Xor(a, b) => pick(*a) ^ pick(*b),
                Op::Mux(s, t, e) => pick(*s).mux(&pick(*t), &pick(*e)),
            };
            pool.push(e);
        }
        let outs: Vec<BExpr> = pool.iter().rev().take(3).cloned().collect();
        let unshared = dag.finish(&outs);
        prop_assert!(shared.num_nodes() <= unshared.num_nodes());
        for bits in 0..32u32 {
            let input: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(shared.eval(&input), unshared.eval(&input));
        }
    }
}

// ---------------------------------------------------------------------
// Random reversible circuits
// ---------------------------------------------------------------------

/// A single random reversible gate over `n` wires.
#[derive(Clone, Debug)]
enum RGate {
    Not(usize),
    Cnot(usize, usize),
    Toffoli(usize, usize, usize),
    NegCnot(usize, usize),
    Swap(usize, usize),
}

fn rgate_strategy(n: usize) -> impl Strategy<Value = RGate> {
    prop_oneof![
        (0..n).prop_map(RGate::Not),
        (0..n, 0..n).prop_map(|(a, b)| RGate::Cnot(a, b)),
        (0..n, 0..n, 0..n).prop_map(|(a, b, c)| RGate::Toffoli(a, b, c)),
        (0..n, 0..n).prop_map(|(a, b)| RGate::NegCnot(a, b)),
        (0..n, 0..n).prop_map(|(a, b)| RGate::Swap(a, b)),
    ]
}

fn emit(c: &mut Circ, qs: &[Qubit], g: &RGate) {
    let n = qs.len();
    match *g {
        RGate::Not(a) => c.qnot(qs[a]),
        RGate::Cnot(a, b) => {
            if a != b {
                c.cnot(qs[a], qs[b]);
            }
        }
        RGate::Toffoli(a, b, t) => {
            let (a, b, t) = (a % n, b % n, t % n);
            if a != b && a != t && b != t {
                c.toffoli(qs[t], qs[a], qs[b]);
            }
        }
        RGate::NegCnot(a, b) => {
            if a != b {
                c.qnot_ctrl(qs[a], &(qs[b], false));
            }
        }
        RGate::Swap(a, b) => {
            if a != b {
                c.swap(qs[a], qs[b]);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A random reversible circuit followed by its reverse is the identity
    /// on every basis state, and the reversed circuit validates.
    #[test]
    fn random_circuit_reverses_to_identity(
        gates in prop::collection::vec(rgate_strategy(5), 0..40),
        input_bits in 0u32..32,
    ) {
        let bc = Circ::build(&vec![false; 5], |c, qs: Vec<Qubit>| {
            for g in &gates {
                emit(c, &qs, g);
            }
            qs
        });
        bc.validate().unwrap();
        let rev = reverse_circuit(&bc.main).unwrap();
        rev.validate_standalone().unwrap();

        // Compose forward and reverse into one circuit and simulate.
        let composed = Circ::build(&vec![false; 5], |c, qs: Vec<Qubit>| {
            for g in &gates {
                emit(c, &qs, g);
            }
            for g in gates.iter().rev() {
                // Each generator is self-inverse.
                emit(c, &qs, g);
            }
            qs
        });
        let input: Vec<bool> = (0..5).map(|i| input_bits >> i & 1 == 1).collect();
        let out = quipper_sim::run_classical(&composed, &input).unwrap();
        prop_assert_eq!(out, input);
    }

    /// Hierarchical counting and counting-after-inlining agree for
    /// randomly boxed circuits.
    #[test]
    fn boxed_and_inlined_counts_agree(
        gates in prop::collection::vec(rgate_strategy(4), 1..20),
        reps in 1u64..5,
    ) {
        let bc = Circ::build(&vec![false; 4], |c, qs: Vec<Qubit>| {
            c.box_repeat("body", "", reps, qs, |c, qs: Vec<Qubit>| {
                for g in &gates {
                    emit(c, &qs, g);
                }
                qs
            })
        });
        bc.validate().unwrap();
        let flat = inline_all(&bc.db, &bc.main).unwrap();
        flat.validate_standalone().unwrap();
        let hier = bc.gate_count();
        let flat_count =
            quipper_circuit::count::count(&quipper_circuit::CircuitDb::new(), &flat);
        prop_assert_eq!(hier.counts, flat_count.counts);
        prop_assert_eq!(hier.qubits_in_circuit, flat_count.qubits_in_circuit);
    }
}

// ---------------------------------------------------------------------
// Quantum arithmetic vs machine arithmetic
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn qdint_add_mul_match_u64(x in 0u64..64, y in 0u64..64) {
        use quipper_arith::qdint::{add_in_place, mul, QDInt};
        use quipper_arith::IntM;
        let w = 6;
        let mask = (1u64 << w) - 1;
        let bc = Circ::build(&(IntM::new(0, w), IntM::new(0, w)), |c, (a, b): (QDInt, QDInt)| {
            let p = mul(c, &a, &b);
            add_in_place(c, &a, &b);
            (a, b, p)
        });
        let mut input: Vec<bool> = (0..w).map(|i| x >> i & 1 == 1).collect();
        input.extend((0..w).map(|i| y >> i & 1 == 1));
        let out = quipper_sim::run_classical(&bc, &input).unwrap();
        let dec = |bits: &[bool]| {
            bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
        };
        prop_assert_eq!(dec(&out[0..w]), x);
        prop_assert_eq!(dec(&out[w..2 * w]), (x + y) & mask);
        prop_assert_eq!(dec(&out[2 * w..]), (x * y) & mask);
    }

    #[test]
    fn qinttf_mul_matches_model(x in 0u64..32, y in 0u64..32) {
        use quipper_algorithms::tf::oracle::tf_mul;
        use quipper_arith::qinttf::{mul_tf, QIntTF};
        use quipper_arith::IntTF;
        let l = 5;
        let m = (1u64 << l) - 1;
        let bc = Circ::build(&(IntTF::new(0, l), IntTF::new(0, l)), |c, (a, b): (QIntTF, QIntTF)| {
            let p = mul_tf(c, &a, &b);
            (a, b, p)
        });
        let mut input: Vec<bool> = (0..l).map(|i| x >> i & 1 == 1).collect();
        input.extend((0..l).map(|i| y >> i & 1 == 1));
        let out = quipper_sim::run_classical(&bc, &input).unwrap();
        let dec = |bits: &[bool]| {
            bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
        };
        // Bit-exact against the classical cascade model, and congruent
        // modulo 2^l − 1.
        prop_assert_eq!(dec(&out[2 * l..]), tf_mul(x, y, l));
        prop_assert_eq!(dec(&out[2 * l..]) % m, (x % m) * (y % m) % m);
    }
}

// ---------------------------------------------------------------------
// Simulator cross-validation on random Clifford circuits
// ---------------------------------------------------------------------

/// A random Clifford gate over n wires.
#[derive(Clone, Debug)]
enum CGateOp {
    H(usize),
    S(usize),
    X(usize),
    Z(usize),
    V(usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    Swap(usize, usize),
}

fn cgate_strategy(n: usize) -> impl Strategy<Value = CGateOp> {
    prop_oneof![
        (0..n).prop_map(CGateOp::H),
        (0..n).prop_map(CGateOp::S),
        (0..n).prop_map(CGateOp::X),
        (0..n).prop_map(CGateOp::Z),
        (0..n).prop_map(CGateOp::V),
        (0..n, 0..n).prop_map(|(a, b)| CGateOp::Cnot(a, b)),
        (0..n, 0..n).prop_map(|(a, b)| CGateOp::Cz(a, b)),
        (0..n, 0..n).prop_map(|(a, b)| CGateOp::Swap(a, b)),
    ]
}

fn emit_clifford(c: &mut Circ, qs: &[Qubit], g: &CGateOp) {
    match *g {
        CGateOp::H(a) => c.hadamard(qs[a]),
        CGateOp::S(a) => c.gate_s(qs[a]),
        CGateOp::X(a) => c.qnot(qs[a]),
        CGateOp::Z(a) => c.gate_z(qs[a]),
        CGateOp::V(a) => c.gate_v(qs[a]),
        CGateOp::Cnot(a, b) if a != b => c.cnot(qs[a], qs[b]),
        CGateOp::Cz(a, b) if a != b => c.gate_ctrl(quipper::GateName::Z, qs[a], &qs[b]),
        CGateOp::Swap(a, b) if a != b => c.swap(qs[a], qs[b]),
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The stabilizer tableau and the state vector agree on random
    /// Clifford circuits: deterministic measurement outcomes match
    /// exactly, and random outcomes have probability ½ in the state
    /// vector.
    #[test]
    fn stabilizer_agrees_with_statevector_on_random_clifford(
        gates in prop::collection::vec(cgate_strategy(4), 0..30),
    ) {
        // Version without measurement: inspect state-vector probabilities.
        let open = Circ::build(&vec![false; 4], |c, qs: Vec<Qubit>| {
            for g in &gates {
                emit_clifford(c, &qs, g);
            }
            qs
        });
        let sv = quipper_sim::run(&open, &[false; 4], 7).unwrap();
        // Version with measurement: run on the tableau repeatedly.
        let measured = Circ::build(&vec![false; 4], |c, qs: Vec<Qubit>| {
            for g in &gates {
                emit_clifford(c, &qs, g);
            }
            c.measure(qs)
        });
        for seed in 0..8u64 {
            let tab = quipper_sim::run_clifford(&measured, &[false; 4], seed).unwrap();
            // Every tableau outcome must have nonzero probability in the
            // state vector (Clifford states have amplitudes 0 or 2^{-k/2}).
            let pattern: Vec<(quipper_circuit::Wire, bool)> = sv
                .outputs
                .iter()
                .zip(tab.iter())
                .map(|(&(w, _), &b)| (w, b))
                .collect();
            let p = sv.state.joint_probability(&pattern);
            prop_assert!(p > 1e-9, "tableau outcome {tab:?} has probability {p}");
        }
        // Per-qubit marginals agree: deterministic (0/1) vs random (½).
        for (i, &(w, _)) in sv.outputs.iter().enumerate() {
            let p1 = sv.state.probability(w, true);
            let mut ones = 0;
            let runs: u32 = 24;
            for seed in 100..100 + u64::from(runs) {
                let tab = quipper_sim::run_clifford(&measured, &[false; 4], seed).unwrap();
                ones += u32::from(tab[i]);
            }
            if p1 < 1e-9 {
                prop_assert_eq!(ones, 0, "qubit {} must always be 0", i);
            } else if p1 > 1.0 - 1e-9 {
                prop_assert_eq!(ones, runs, "qubit {} must always be 1", i);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Optimizer correctness on random circuits
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The peephole optimizer is semantics-preserving: random reversible
    /// circuits (with deliberately redundant structure appended) compute
    /// the same function before and after optimization, on every basis
    /// input.
    #[test]
    fn optimizer_preserves_classical_semantics(
        gates in prop::collection::vec(rgate_strategy(4), 0..30),
        dup_every in 1usize..4,
    ) {
        let build = || {
            Circ::build(&vec![false; 4], |c, qs: Vec<Qubit>| {
                for (i, g) in gates.iter().enumerate() {
                    emit(c, &qs, g);
                    // Inject redundancy: repeat some gates twice (their own
                    // inverses), giving the optimizer something to remove.
                    if i % dup_every == 0 {
                        emit(c, &qs, g);
                        emit(c, &qs, g);
                    }
                }
                qs
            })
        };
        let original = build();
        let (optimized, _stats) = quipper::optimize::optimize(&original);
        optimized.validate().unwrap();
        prop_assert!(optimized.gate_count().total() <= original.gate_count().total());
        for bits in 0..16u32 {
            let input: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let a = quipper_sim::run_classical(&original, &input).unwrap();
            let b = quipper_sim::run_classical(&optimized, &input).unwrap();
            prop_assert_eq!(a, b, "input {:04b}", bits);
        }
    }

    /// Optimization commutes with counting through boxes: optimizing a
    /// boxed circuit and inlining gives the same semantics as inlining the
    /// unoptimized one.
    #[test]
    fn optimizer_respects_box_hierarchy(
        gates in prop::collection::vec(rgate_strategy(3), 1..15),
    ) {
        let bc = Circ::build(&vec![false; 3], |c, qs: Vec<Qubit>| {
            c.box_repeat("body", "", 3, qs, |c, qs: Vec<Qubit>| {
                for g in &gates {
                    emit(c, &qs, g);
                }
                qs
            })
        });
        let (opt, _) = quipper::optimize::optimize(&bc);
        opt.validate().unwrap();
        for bits in 0..8u32 {
            let input: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let a = quipper_sim::run_classical(&bc, &input).unwrap();
            let b = quipper_sim::run_classical(&opt, &input).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}
