//! Golden-file tests for the OpenQASM 2.0 exporter.
//!
//! Each named circuit from the serve catalog is lowered to QASM and
//! compared byte-for-byte against `tests/golden/<name>.qasm`. The goldens
//! pin the whole export pipeline — inlining, qubit-slot pooling, per-wire
//! creg allocation, and `if(cN==v)` classical conditions — so an
//! unintentional change to any of it shows up as a readable diff.
//!
//! To re-bless after an *intentional* change:
//!
//! ```text
//! QASM_BLESS=1 cargo test --test qasm_golden
//! ```

use std::path::PathBuf;

use quipper_circuit::qasm::to_qasm;
use quipper_serve::catalog::Catalog;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.qasm"))
}

fn check(name: &str) {
    let catalog = Catalog::new();
    let circuit = catalog
        .get(name)
        .unwrap_or_else(|| panic!("no circuit {name}"));
    let qasm = to_qasm(&circuit).unwrap_or_else(|e| panic!("{name} does not export: {e}"));
    let path = golden_path(name);
    if std::env::var_os("QASM_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &qasm).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with QASM_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        qasm, expected,
        "{name} drifted from its golden file; if intentional, re-bless with QASM_BLESS=1"
    );
}

/// Teleportation: classically-controlled corrections (`if(cN==1) ...`),
/// per-wire cregs for the three measurements, qubit-slot reuse.
#[test]
fn teleportation_matches_golden() {
    check("teleportation");
}

/// Grover over 3 qubits: the oracle's Toffoli structure and the diffusion
/// rounds survive inlining.
#[test]
fn grover3_matches_golden() {
    check("grover3");
}

/// GHZ: the H + CNOT ladder and one measurement per qubit.
#[test]
fn ghz3_matches_golden() {
    check("ghz3");
}

/// QFT over 4 qubits: controlled-phase cascade (`cu1`) plus final swaps.
#[test]
fn qft4_matches_golden() {
    check("qft4");
}

/// The goldens themselves stay structurally sane: every emitted statement
/// is one of the forms the exporter writes, and classical conditions only
/// reference declared one-bit registers.
#[test]
fn goldens_are_wellformed() {
    for name in ["teleportation", "grover3", "ghz3", "qft4"] {
        let text = std::fs::read_to_string(golden_path(name)).unwrap();
        assert!(text.starts_with("OPENQASM 2.0;\n"), "{name}");
        let cregs = text.lines().filter(|l| l.starts_with("creg")).count();
        for line in text.lines().filter(|l| l.starts_with("if(")) {
            let reg: usize = line["if(c".len()..line.find("==").unwrap()]
                .parse()
                .unwrap_or_else(|_| panic!("{name}: bad condition {line}"));
            assert!(reg < cregs, "{name}: condition on undeclared creg: {line}");
        }
    }
}
