//! Round-trip and robustness tests for OpenQASM ingestion.
//!
//! Three properties pin the parser to the exporter:
//!
//! * **Fixpoint** — re-exporting a parsed golden reproduces the golden
//!   byte-for-byte: the parser's lowering conventions (slot pooling,
//!   per-wire cregs, classical conditions) are exactly the exporter's,
//!   read backwards.
//! * **Equivalence** — for random circuits, `parse(export(c))` behaves
//!   like `c`: identical state vectors up to global phase when
//!   measurement-free, identical per-seed shot outcomes when measured.
//! * **No panics** — byte-level mutations of valid programs (and raw
//!   garbage) always come back as diagnostics, never a crash. This is the
//!   trust boundary for `quipper-serve`'s inline submissions.

use proptest::prelude::*;
use quipper::{Circ, Qubit};
use quipper_circuit::qasm::to_qasm;
use quipper_circuit::BCircuit;
use quipper_sim::complex::Complex;

fn goldens() -> Vec<(std::path::PathBuf, String)> {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut out: Vec<(std::path::PathBuf, String)> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "qasm"))
        .map(|p| {
            let text = std::fs::read_to_string(&p).unwrap();
            (p, text)
        })
        .collect();
    out.sort();
    out
}

/// Every golden is a fixpoint of `export ∘ parse`. This is the strongest
/// cheap check we have: one drifted convention anywhere in the lexer,
/// parser, or lowering shows up as a readable one-line diff.
#[test]
fn goldens_are_export_parse_fixpoints() {
    let goldens = goldens();
    assert!(
        goldens.len() >= 8,
        "expected the full golden inventory, found {}",
        goldens.len()
    );
    for (path, text) in &goldens {
        let bc = quipper_qasm::compile(text)
            .unwrap_or_else(|ds| panic!("{} does not parse:\n{ds}", path.display()));
        let out = to_qasm(&bc).unwrap();
        assert_eq!(
            &out,
            text,
            "{} is not a fixpoint of export∘parse",
            path.display()
        );
    }
}

/// Parsed goldens compile through the full execution pipeline — lint
/// gate, optimizer, plan cache fingerprinting — exactly like catalog
/// circuits. Ingested circuits are not second-class.
#[test]
fn parsed_goldens_pass_the_plan_pipeline() {
    for (path, text) in goldens() {
        let bc = quipper_qasm::compile(&text).unwrap();
        let plan = quipper_exec::Plan::compile(&bc)
            .unwrap_or_else(|e| panic!("{} does not plan: {e}", path.display()));
        assert!(!plan.flat.gates.is_empty(), "{}", path.display());
    }
}

const QUBITS: usize = 4;

const ANGLES: [f64; 6] = [
    std::f64::consts::FRAC_PI_4,
    std::f64::consts::FRAC_PI_2,
    std::f64::consts::PI,
    2.0 * std::f64::consts::PI,
    -std::f64::consts::FRAC_PI_4,
    0.37,
];

/// One random gate over the register, mirroring the exporter's coverage:
/// the self-inverse set, rotations in every family the exporter emits,
/// Toffoli for the multi-control path, and a global phase.
#[derive(Clone, Copy, Debug)]
enum OGate {
    H(usize),
    X(usize),
    Y(usize),
    Z(usize),
    S(usize),
    T(usize),
    Cnot(usize, usize),
    Toffoli(usize, usize, usize),
    Swap(usize, usize),
    Rz(usize, usize),
    Ry(usize, usize),
    CRz(usize, usize, usize),
    GPhase(usize),
}

fn ogate() -> impl Strategy<Value = OGate> {
    let q = 0..QUBITS;
    let a = 0..ANGLES.len();
    prop_oneof![
        q.clone().prop_map(OGate::H),
        q.clone().prop_map(OGate::X),
        q.clone().prop_map(OGate::Y),
        q.clone().prop_map(OGate::Z),
        q.clone().prop_map(OGate::S),
        q.clone().prop_map(OGate::T),
        (q.clone(), q.clone()).prop_map(|(a, b)| OGate::Cnot(a, b)),
        (q.clone(), q.clone(), q.clone()).prop_map(|(a, b, c)| OGate::Toffoli(a, b, c)),
        (q.clone(), q.clone()).prop_map(|(a, b)| OGate::Swap(a, b)),
        (q.clone(), a.clone()).prop_map(|(w, i)| OGate::Rz(w, i)),
        (q.clone(), a.clone()).prop_map(|(w, i)| OGate::Ry(w, i)),
        (q.clone(), q, a.clone()).prop_map(|(w, c, i)| OGate::CRz(w, c, i)),
        a.prop_map(OGate::GPhase),
    ]
}

fn emit(c: &mut Circ, qs: &[Qubit], g: OGate) {
    match g {
        OGate::H(a) => c.hadamard(qs[a]),
        OGate::X(a) => c.qnot(qs[a]),
        OGate::Y(a) => c.gate_y(qs[a]),
        OGate::Z(a) => c.gate_z(qs[a]),
        OGate::S(a) => c.gate_s(qs[a]),
        OGate::T(a) => c.gate_t(qs[a]),
        OGate::Cnot(a, b) if a != b => c.cnot(qs[a], qs[b]),
        OGate::Toffoli(t, a, b) if t != a && t != b && a != b => c.toffoli(qs[t], qs[a], qs[b]),
        OGate::Swap(a, b) if a != b => c.swap(qs[a], qs[b]),
        OGate::Rz(w, i) => c.rot("exp(-i%Z)", ANGLES[i], qs[w]),
        OGate::Ry(w, i) => c.rot("Ry(%)", ANGLES[i], qs[w]),
        OGate::CRz(w, ctl, i) if w != ctl => c.rot_ctrl("exp(-i%Z)", ANGLES[i], qs[w], &qs[ctl]),
        OGate::GPhase(i) => c.gphase(ANGLES[i]),
        OGate::Cnot(..) | OGate::Toffoli(..) | OGate::Swap(..) | OGate::CRz(..) => {}
    }
}

/// A flat random circuit on ancillas, optionally measured — the shapes
/// the exporter can serialize without loss.
fn random_circuit(gates: &[OGate], measured: bool) -> BCircuit {
    let mut c = Circ::new();
    let qs: Vec<Qubit> = (0..QUBITS).map(|_| c.qinit_bit(false)).collect();
    for &g in gates {
        emit(&mut c, &qs, g);
    }
    if measured {
        let ms: Vec<_> = qs.into_iter().map(|q| c.measure_bit(q)).collect();
        c.finish(&ms)
    } else {
        c.finish(&qs)
    }
}

/// Asserts `b = e^{iφ}·a` for one phase φ, within tolerance.
fn assert_equal_up_to_global_phase(a: &[Complex], b: &[Complex]) {
    assert_eq!(a.len(), b.len(), "state dimensions differ");
    let pivot = a
        .iter()
        .position(|amp| amp.norm_sqr() > 1e-12)
        .expect("state vector cannot be all-zero");
    assert!(b[pivot].norm_sqr() > 1e-12, "support changed at pivot");
    let (ar, ai) = (a[pivot].re, a[pivot].im);
    let (br, bi) = (b[pivot].re, b[pivot].im);
    let n = ar * ar + ai * ai;
    let phase_re = (br * ar + bi * ai) / n;
    let phase_im = (bi * ar - br * ai) / n;
    assert!(
        (phase_re * phase_re + phase_im * phase_im - 1.0).abs() < 1e-9,
        "pivot ratio is not a pure phase"
    );
    for (x, y) in a.iter().zip(b) {
        let rot_re = x.re * phase_re - x.im * phase_im;
        let rot_im = x.re * phase_im + x.im * phase_re;
        let d = (y.re - rot_re).powi(2) + (y.im - rot_im).powi(2);
        assert!(d < 1e-18, "amplitudes diverge: d² = {d}");
    }
}

/// A deterministic xorshift for the mutation tests (no external RNG
/// needed; the sequence is stable across runs, so failures reproduce).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `parse(export(c))` is statevector-equivalent to `c` up to one
    /// global phase, for random measurement-free circuits.
    #[test]
    fn export_parse_preserves_state_vectors(
        gates in prop::collection::vec(ogate(), 1..24),
    ) {
        let bc = random_circuit(&gates, false);
        bc.validate().unwrap();
        let qasm = to_qasm(&bc).unwrap();
        let reparsed = quipper_qasm::compile(&qasm)
            .unwrap_or_else(|ds| panic!("exporter output does not parse:\n{ds}\n---\n{qasm}"));
        reparsed.validate().unwrap();
        let want = quipper_sim::run(&bc, &[], 11).unwrap();
        let got = quipper_sim::run(&reparsed, &[], 11).unwrap();
        assert_equal_up_to_global_phase(
            &want.state.canonical_amplitudes(),
            &got.state.canonical_amplitudes(),
        );
    }

    /// Measured circuits: `parse(export(c))` produces bit-identical
    /// per-seed shot outcomes — measurements survive the text round trip
    /// in order and in distribution.
    #[test]
    fn export_parse_preserves_shot_outcomes(
        gates in prop::collection::vec(ogate(), 1..16),
    ) {
        let bc = random_circuit(&gates, true);
        bc.validate().unwrap();
        let qasm = to_qasm(&bc).unwrap();
        let reparsed = quipper_qasm::compile(&qasm)
            .unwrap_or_else(|ds| panic!("exporter output does not parse:\n{ds}\n---\n{qasm}"));
        for seed in 0..4u64 {
            let want = quipper_sim::run(&bc, &[], seed).unwrap().classical_outputs();
            let got = quipper_sim::run(&reparsed, &[], seed).unwrap().classical_outputs();
            prop_assert_eq!(&want, &got, "seed {}", seed);
        }
    }
}

/// Byte-level mutations of the goldens never panic the parser: flips,
/// truncations, splices, and duplications all come back as diagnostics
/// (or, by luck, still-valid programs). ~200 mutants per golden.
#[test]
fn mutated_goldens_produce_diagnostics_not_panics() {
    let goldens = goldens();
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for (_, text) in &goldens {
        let bytes = text.as_bytes();
        for _ in 0..200 {
            let mut mutant = bytes.to_vec();
            match rng.next() % 4 {
                0 => {
                    // Flip one byte to something printable-ish.
                    let i = (rng.next() as usize) % mutant.len();
                    mutant[i] = (rng.next() % 96) as u8 + 32;
                }
                1 => {
                    // Truncate.
                    let i = (rng.next() as usize) % mutant.len();
                    mutant.truncate(i);
                }
                2 => {
                    // Duplicate a random slice in place.
                    let i = (rng.next() as usize) % mutant.len();
                    let j = ((rng.next() as usize) % (mutant.len() - i)).min(64) + i;
                    let slice = mutant[i..j].to_vec();
                    let at = (rng.next() as usize) % mutant.len();
                    for (k, b) in slice.into_iter().enumerate() {
                        mutant.insert(at + k, b);
                    }
                }
                _ => {
                    // Delete a random slice.
                    let i = (rng.next() as usize) % mutant.len();
                    let j = ((rng.next() as usize) % (mutant.len() - i)).min(64) + i;
                    mutant.drain(i..j);
                }
            }
            // Arbitrary bytes may not be UTF-8; both paths must be safe.
            if let Ok(source) = String::from_utf8(mutant) {
                let (_, _diags) = quipper_qasm::compile_full(&source);
            }
        }
    }
}

/// Raw garbage — random printable bytes, deep nesting, long tokens — is
/// rejected with bounded diagnostics.
#[test]
fn garbage_inputs_are_rejected_with_bounded_diagnostics() {
    let mut rng = XorShift(0x2545f4914f6cdd1d);
    for len in [0usize, 1, 7, 64, 512, 4096] {
        let source: String = (0..len)
            .map(|_| ((rng.next() % 96) as u8 + 32) as char)
            .collect();
        let (_, diags) = quipper_qasm::compile_full(&source);
        assert!(
            diags.len() <= quipper_qasm::diag::MAX_DIAGS + 1,
            "diagnostic flood on {len}-byte garbage"
        );
    }
    // Pathological nesting stays linear-time and diagnostic-bounded.
    let deep = format!(
        "OPENQASM 2.0;\nqreg q[1];\nU({}0{},0,0) q[0];\n",
        "(".repeat(4000),
        ")".repeat(4000)
    );
    let (bc, diags) = quipper_qasm::compile_full(&deep);
    assert!(bc.is_none());
    assert!(diags.has_errors());
    // An if-tower deeper than the statement nesting cap.
    let tower = format!(
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\ncreg c[1];\n{}x q[0];\n",
        "if(c==0) ".repeat(600)
    );
    let (_, diags) = quipper_qasm::compile_full(&tower);
    assert!(diags.has_errors());
}
