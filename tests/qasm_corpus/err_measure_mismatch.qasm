// expect: QP107
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[3];
measure q -> c;
