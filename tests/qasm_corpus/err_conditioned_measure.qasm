// expect: QP112
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
creg c[1];
if(c==0) measure q[0] -> c[0];
