// expect: QP001,QP003
OPENQASM 2.0;
qreg q[1];
@#$ q[0];
