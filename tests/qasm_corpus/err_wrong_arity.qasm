// expect: QP104
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
cx q[0];
rz q[0];
