// expect: QP103
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
frobnicate q[0];
