// expect: QP115
OPENQASM 2.0;
qreg q[65536];
