// expect: QP002
OPENQASM 2.0;
qreg q[1];
/* this comment never ends
