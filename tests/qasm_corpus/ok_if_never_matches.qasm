// expect: ok,QP111
// Condition value exceeds the register range: warn and drop.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
creg c[1];
measure q[0] -> c[0];
if(c==3) x q[0];
