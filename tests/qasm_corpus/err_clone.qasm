// expect: QP106
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
cx q[1],q[1];
