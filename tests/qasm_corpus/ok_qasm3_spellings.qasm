// expect: ok
// QASM-3 spellings the ingester accepts: qubit[n]/bit[n] declarations,
// assignment-form measurement, gphase.
OPENQASM 3;
include "stdgates.inc";
qubit[2] q;
bit[2] c;
h q[0];
cx q[0], q[1];
gphase(pi/8);
c[0] = measure q[0];
c[1] = measure q[1];
