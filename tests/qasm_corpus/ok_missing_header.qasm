// expect: ok,QP004
// A missing OPENQASM header is tolerated with a warning.
include "qelib1.inc";
qreg q[1];
h q[0];
