// expect: QP110
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
rz(1/0) q[0];
