// expect: QP103
// qelib1 mnemonics without the include are unknown gates.
OPENQASM 2.0;
qreg q[1];
h q[0];
