// expect: QP109
OPENQASM 2.0;
opaque oracle a,b;
qreg q[2];
oracle q[0],q[1];
