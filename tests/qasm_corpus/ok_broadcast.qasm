// expect: ok
// Whole-register operands broadcast per the spec: single registers map
// element-wise, mixed single-qubit operands repeat.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
qreg anc[1];
creg c[3];
h q;
cx q, anc[0];
barrier q, anc;
reset anc;
measure q -> c;
