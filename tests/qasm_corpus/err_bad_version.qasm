// expect: QP004
OPENQASM 7.5;
// The unsupported version is consumed cleanly: no QP003 cascade.
qreg q[1];
