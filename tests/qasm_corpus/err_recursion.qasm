// expect: QP006
OPENQASM 2.0;
include "qelib1.inc";
gate spin a { twirl a; }
gate twirl a { spin a; }
qreg q[1];
spin q[0];
