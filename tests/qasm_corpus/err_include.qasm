// expect: QP113
OPENQASM 2.0;
include "mylib.inc";
qreg q[1];
