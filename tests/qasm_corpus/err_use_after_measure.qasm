// expect: QP108
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
creg c[1];
measure q[0] -> c[0];
h q[0];
