// expect: QP101
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
h r[0];
