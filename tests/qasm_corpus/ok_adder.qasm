// expect: ok
// Cuccaro-style ripple adder fragment built from user gates: exercises
// gate definitions, nested calls, and boxed lowering.
OPENQASM 2.0;
include "qelib1.inc";
gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }
gate unmaj a,b,c { ccx a,b,c; cx c,a; cx a,b; }
qreg a[2];
qreg b[2];
qreg cin[1];
creg out[2];
x a[0];
x b[1];
majority cin[0],b[0],a[0];
majority a[0],b[1],a[1];
unmaj a[0],b[1],a[1];
unmaj cin[0],b[0],a[0];
measure b -> out;
