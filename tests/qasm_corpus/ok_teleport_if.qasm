// expect: ok
// Classical feedback: measurement results condition later corrections.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg m0[1];
creg m1[1];
reset q[1];
reset q[2];
h q[1];
cx q[1],q[2];
cx q[0],q[1];
h q[0];
measure q[0] -> m0[0];
measure q[1] -> m1[0];
if(m1==1) x q[2];
if(m0==1) z q[2];
