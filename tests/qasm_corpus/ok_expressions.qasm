// expect: ok
// Angle arithmetic: precedence, right-assoc power, functions, pi.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rz(pi/2 + pi/4*2 - 1) q[0];
ry(sin(pi/6)) q[0];
u1(2^3^0.5) q[1];
u3(pi/2, -pi/4, sqrt(2)) q[0];
u2(0, pi) q[1];
rx(pi/2) q[0];
rx(0.25) q[1];
crx(cos(0.5) + 1e-3) q[0], q[1];
cu3(ln(exp(1)), tan(0.1), 0.0) q[1], q[0];
id q[0];
