// expect: QP005
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
rz(1.2e) q[0];
