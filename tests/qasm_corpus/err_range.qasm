// expect: QP102
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[2];
