// expect: QP105
OPENQASM 2.0;
qreg q[2];
creg q[1];
