// expect: QP003
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
h q[0]
h q[0];;
