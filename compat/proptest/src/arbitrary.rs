//! `any::<T>()` and the [`Arbitrary`] trait.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
