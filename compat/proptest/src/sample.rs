//! Random index selection (`prop::sample::Index`).

/// A size-agnostic random index: generated once, projected onto any
/// collection length with [`Index::index`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Creates an index from raw random bits.
    pub fn from_raw(raw: u64) -> Index {
        Index { raw }
    }

    /// Projects the index onto a collection of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index(0)");
        (self.raw % size as u64) as usize
    }
}
