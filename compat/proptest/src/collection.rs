//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Lengths a [`vec`] strategy may take.
pub trait IntoLenStrategy {
    /// Draws a length.
    fn draw_len(&self, rng: &mut TestRng) -> usize;
}

impl IntoLenStrategy for usize {
    fn draw_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoLenStrategy for Range<usize> {
    fn draw_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty length range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

/// See [`vec`].
pub struct VecStrategy<S, L> {
    elem: S,
    len: L,
}

impl<S: Strategy, L: IntoLenStrategy> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.draw_len(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// A strategy for vectors whose elements come from `elem` and whose length
/// comes from `len` (a `usize` or a `Range<usize>`).
pub fn vec<S: Strategy, L: IntoLenStrategy>(elem: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { elem, len }
}
