//! Test configuration and the deterministic RNG driving generation.

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator used to drive strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary string (the test name),
    /// so each property gets an independent but reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}
