//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Object-safe (so [`Union`] can hold boxed heterogeneous arms); the
/// combinator methods require `Self: Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice among boxed strategies; see
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// A strategy generating one constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}
