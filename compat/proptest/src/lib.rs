//! Offline drop-in for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a tiny property-testing harness with the same surface syntax:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `name in strategy` argument binders;
//! * [`strategy::Strategy`] with `prop_map`, integer-range strategies, tuple
//!   strategies, [`prop_oneof!`] unions, [`collection::vec`] and
//!   [`arbitrary::any`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from upstream: inputs are generated from a deterministic
//! per-test RNG (seeded from the test's name, so failures reproduce), and
//! there is **no shrinking** — a failing case reports the assertion message
//! only. That trade-off keeps the harness ~300 lines and dependency-free.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Builds a strategy that picks uniformly among the given strategies.
/// All arms must produce the same `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut __arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $( __arms.push(::std::boxed::Box::new($strat)); )+
        $crate::strategy::Union::new(__arms)
    }};
}

/// Asserts a property; identical to `assert!` in this harness.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality; identical to `assert_eq!` in this harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality; identical to `assert_ne!` in this harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
