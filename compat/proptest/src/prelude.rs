//! The conventional glob import: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// The `prop::` module tree as re-exported by the upstream prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}
