//! Offline drop-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a tiny deterministic reimplementation: `StdRng::seed_from_u64`,
//! `Rng::gen` for `bool`/`f64`/integers, and `Rng::gen_range` over integer
//! ranges. The generator is SplitMix64, whose first outputs are well
//! distributed even for consecutive seeds — important because the simulators
//! derive per-shot RNGs as `base_seed + shot_index`.
//!
//! This is *not* a cryptographic RNG and does not reproduce the upstream
//! `rand` stream bit-for-bit; everything in this repository that depends on
//! randomness is either statistical (Born-rule frequencies) or only requires
//! determinism under a fixed seed.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from uniform random bits (the stand-in for
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (the stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is ≤ span/2^64, negligible for the test-sized
                // ranges used here.
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_uniformish_across_consecutive_seeds() {
        // First draw from consecutive seeds must be decorrelated: this is
        // exactly how the simulators derive per-shot randomness.
        let n = 2000;
        let mut ones = 0;
        for seed in 0..n {
            let mut r = StdRng::seed_from_u64(seed);
            if r.gen::<f64>() < 0.5 {
                ones += 1;
            }
        }
        let frac = f64::from(ones) / f64::from(n as u32);
        assert!((frac - 0.5).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }
}
