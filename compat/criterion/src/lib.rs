//! Offline drop-in for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small wall-clock benchmark harness with the same surface syntax:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function`/`bench_with_input`, [`BenchmarkId`], and `Bencher::iter`.
//!
//! Differences from upstream: no statistical analysis (a trimmed mean over a
//! fixed sample count is reported), no plots, no saved baselines. Timings are
//! printed as `group/id  time: <median>` so `cargo bench` output stays
//! human-comparable across runs.

pub use std::hint::black_box;

use std::fmt;
use std::time::{Duration, Instant};

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored, so
    /// `cargo bench -- <filter>` does not fail).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id.to_string(), f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&label);
        self
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code under
/// measurement.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times the routine: warm-up, then `sample_size` timed samples within
    /// the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least one call, until the warm-up budget is spent.
        let start = Instant::now();
        loop {
            black_box(routine());
            if start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement.
        let budget = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if budget.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{label:<40} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// An identifier combining a function name and a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (for groups benchmarking one function over a
    /// parameter sweep).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Collects benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
