//! The built-in circuit suite shared by the `quipper-lint` and
//! `quipper-opt` binaries.
//!
//! The suite mirrors the repository's example binaries — teleportation,
//! synthesized oracles, Grover, QFT, the welded-tree walk — so both tools
//! analyze exactly the shapes users see. Included into each binary via
//! `#[path]` (the root package is examples/bins only, no library target).

use quipper::classical::{synth, Dag};
use quipper::qft::qft;
use quipper::{Circ, Qubit};
use quipper_algorithms::bf::{hex_winner_dag, HexBoard};
use quipper_algorithms::bwt::{bwt_circuit, Flavor, WeldedTree};
use quipper_algorithms::cl::mod_const_dag;
use quipper_algorithms::grover::{grover_circuit, optimal_iterations};
use quipper_circuit::BCircuit;

/// A named circuit in the suite: display name plus builder.
pub type SuiteEntry = (&'static str, fn() -> BCircuit);

/// The circuits the examples build and run.
pub fn suite() -> Vec<SuiteEntry> {
    vec![
        ("teleportation", teleportation),
        ("ghz5", ghz5),
        ("parity-oracle", parity_oracle),
        ("mod-oracle", mod_oracle),
        ("hex-oracle", hex_oracle),
        ("grover3", grover3),
        ("qft4", qft4),
        ("bwt-orthodox", bwt_orthodox),
        ("ghz-syndrome", ghz_syndrome),
        ("t-merge", t_merge),
    ]
}

/// The mixed classical/quantum teleportation circuit of
/// `examples/teleportation.rs` (θ = 0.7).
fn teleportation() -> BCircuit {
    let mut c = Circ::new();
    let psi = c.qinit_bit(false);
    c.rot("Ry(%)", 0.7, psi);
    let a = c.qinit_bit(false);
    let b = c.qinit_bit(false);
    c.hadamard(a);
    c.cnot(b, a);
    c.cnot(a, psi);
    c.hadamard(psi);
    let m1 = c.measure_bit(psi);
    let m2 = c.measure_bit(a);
    c.qnot_ctrl(b, &m2);
    c.gate_ctrl(quipper::GateName::Z, b, &m1);
    c.cdiscard(m1);
    c.cdiscard(m2);
    c.rot("Ry(%)", -0.7, b);
    let check = c.measure_bit(b);
    c.finish(&check)
}

/// Five-qubit GHZ preparation and measurement.
fn ghz5() -> BCircuit {
    Circ::build(&vec![false; 5], |c, qs: Vec<Qubit>| {
        c.hadamard(qs[0]);
        for w in qs.windows(2) {
            c.cnot(w[1], w[0]);
        }
        qs.into_iter().map(|q| c.measure(q)).collect::<Vec<_>>()
    })
}

/// The paper's §4.6.1 parity oracle via `classical_to_reversible`.
fn parity_oracle() -> BCircuit {
    let parity = Dag::build(4, |b, xs| {
        vec![xs.iter().fold(b.constant(false), |acc, x| acc ^ x.clone())]
    });
    Circ::build(
        &(vec![false; 4], false),
        |c, (xs, t): (Vec<Qubit>, Qubit)| {
            synth::classical_to_reversible(c, &parity, &xs, &[t]);
            (xs, t)
        },
    )
}

/// A modular-arithmetic oracle (Class Number), synthesized clean.
fn mod_oracle() -> BCircuit {
    let dag = mod_const_dag(4, 3);
    Circ::build(&vec![false; 4], |c, xs: Vec<Qubit>| {
        let outs = synth::synthesize_clean(c, &dag, &xs);
        (xs, outs)
    })
}

/// The Hex flood-fill winner oracle (Boolean Formula) on a small board.
fn hex_oracle() -> BCircuit {
    let board = HexBoard::new(3, 3);
    let dag = hex_winner_dag(board, true, None);
    Circ::build(
        &(vec![false; board.cells()], false),
        |c, (cells, out): (Vec<Qubit>, Qubit)| {
            synth::classical_to_reversible(c, &dag, &cells, &[out]);
            (cells, out)
        },
    )
}

/// Grover search for one marked element among 2^3.
fn grover3() -> BCircuit {
    let dag = Dag::build(3, |_, xs| vec![&(&xs[0] & &!(&xs[1])) & &xs[2]]);
    grover_circuit(&dag, optimal_iterations(3, 1))
}

/// QFT over four qubits, then measure.
fn qft4() -> BCircuit {
    Circ::build(&vec![false; 4], |c, qs: Vec<Qubit>| {
        qft(c, &qs);
        qs.into_iter().map(|q| c.measure(q)).collect::<Vec<_>>()
    })
}

/// One timestep of the orthodox welded-tree walk on a depth-1 tree.
fn bwt_orthodox() -> BCircuit {
    bwt_circuit(WeldedTree::new(1, [0b0, 0b1]), 1, 0.35, Flavor::Orthodox)
}

/// GHZ-3 preparation plus a parity-syndrome ancilla whose measurement is
/// provably deterministic by stabilizer flow — the lint suite's QL040
/// exemplar (the data measurements stay genuinely random).
fn ghz_syndrome() -> BCircuit {
    // Qubits are qinit'd (not open inputs) so the stabilizer walker has
    // seeded generators to flow through the preparation.
    Circ::build(&(), |c, ()| {
        let qs: Vec<Qubit> = (0..3).map(|_| c.qinit_bit(false)).collect();
        c.hadamard(qs[0]);
        for w in qs.windows(2) {
            c.cnot(w[1], w[0]);
        }
        let anc = c.qinit_bit(false);
        c.cnot(anc, qs[0]);
        c.cnot(anc, qs[1]);
        let syndrome = c.measure(anc);
        let data = qs.into_iter().map(|q| c.measure(q)).collect::<Vec<_>>();
        (syndrome, data)
    })
}

/// Z-rotations separated by CNOTs on the same phase-polynomial term: the
/// optimizer's `opt.phasepoly` pass merges each T·…·T pair into an S and
/// deletes the T·…·T† term outright.
fn t_merge() -> BCircuit {
    Circ::build(&vec![false; 3], |c, qs: Vec<Qubit>| {
        c.hadamard(qs[0]);
        c.hadamard(qs[1]);
        // T ... T on qs[0] across CNOTs it controls: merges to S.
        c.gate_t(qs[0]);
        c.cnot(qs[2], qs[0]);
        c.gate_t(qs[0]);
        // T ... T† on qs[1]: sums to the identity term.
        c.gate_t(qs[1]);
        c.cnot(qs[2], qs[1]);
        c.gate_inv(quipper::GateName::T, qs[1]);
        c.cnot(qs[2], qs[1]);
        qs.into_iter().map(|q| c.measure(q)).collect::<Vec<_>>()
    })
}
