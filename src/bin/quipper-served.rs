//! `quipper-served`: the multi-tenant circuit-execution server.
//!
//! Speaks newline-delimited JSON over TCP (see `quipper_serve::protocol`
//! for the op table). One process = one shared engine behind admission
//! control; clients submit catalog circuits by name:
//!
//! ```text
//! quipper-served --addr 127.0.0.1:7878
//! # elsewhere:
//! printf '{"op":"submit","circuit":"ghz5","shots":100}\n' | nc 127.0.0.1 7878
//! ```
//!
//! `--fault-prob` wraps every backend in the seeded `FaultInjector`, which
//! is how CI demonstrates retry-under-faults end to end against the real
//! socket path.

use std::process::ExitCode;
use std::sync::Arc;

use quipper_exec::{Engine, EngineConfig};
use quipper_serve::catalog::Catalog;
use quipper_serve::{FaultConfig, FaultInjector, Server, Service, ServiceConfig};

const USAGE: &str = "\
quipper-served: multi-tenant quantum circuit execution over NDJSON/TCP

USAGE: quipper-served [OPTIONS]

OPTIONS:
  --addr ADDR          bind address (default 127.0.0.1:0; port 0 = ephemeral)
  --workers N          service worker threads (default: cores, capped at 8)
  --queue-capacity N   admission queue bound (default 256)
  --fault-prob P       wrap backends in a fault injector failing each shot
                       with probability P (default 0: no injection)
  --fault-seed SEED    seed for the injected fault sequence (default 0)
  --retry-attempts N   attempts per job before a transient fault is
                       permanent (default 4); raise alongside --fault-prob —
                       a fault can hit any shot, so a whole job attempt
                       fails with probability 1-(1-P)^shots
  --slo-us MICROS      per-tenant end-to-end latency SLO threshold; burns
                       land in the serve.slo.* counters (default: none)
  --trace              enable quipper-trace metrics, printed on exit
  --metrics-dump       implies --trace; on exit, dump the full metrics
                       registry as JSON Lines and Prometheus text
  -h, --help           this text";

struct Options {
    addr: String,
    workers: Option<usize>,
    queue_capacity: usize,
    fault_prob: f64,
    fault_seed: u64,
    retry_attempts: Option<u32>,
    slo_us: Option<u64>,
    trace: bool,
    metrics_dump: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:0".to_string(),
        workers: None,
        queue_capacity: 256,
        fault_prob: 0.0,
        fault_seed: 0,
        retry_attempts: None,
        slo_us: None,
        trace: false,
        metrics_dump: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--workers" => {
                opts.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--queue-capacity" => {
                opts.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?
            }
            "--fault-prob" => {
                opts.fault_prob = value("--fault-prob")?
                    .parse()
                    .map_err(|e| format!("--fault-prob: {e}"))?
            }
            "--fault-seed" => {
                opts.fault_seed = value("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("--fault-seed: {e}"))?
            }
            "--retry-attempts" => {
                opts.retry_attempts = Some(
                    value("--retry-attempts")?
                        .parse()
                        .map_err(|e| format!("--retry-attempts: {e}"))?,
                )
            }
            "--slo-us" => {
                opts.slo_us = Some(
                    value("--slo-us")?
                        .parse()
                        .map_err(|e| format!("--slo-us: {e}"))?,
                )
            }
            "--trace" => opts.trace = true,
            "--metrics-dump" => opts.metrics_dump = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if opts.trace || opts.metrics_dump {
        quipper_trace::tracer().set_enabled(true);
    }

    let engine_config = EngineConfig::default();
    let engine = if opts.fault_prob > 0.0 {
        let fault = FaultConfig::failing(opts.fault_prob, opts.fault_seed);
        let backends = FaultInjector::wrap_default_backends(&engine_config, fault);
        Engine::with_backends(engine_config, backends)
    } else {
        Engine::with_config(engine_config)
    };

    let mut service_config = ServiceConfig {
        queue_capacity: opts.queue_capacity,
        ..ServiceConfig::default()
    };
    if let Some(workers) = opts.workers {
        service_config.workers = workers;
    }
    if let Some(attempts) = opts.retry_attempts {
        service_config.retry.max_attempts = attempts.max(1);
    }
    if let Some(us) = opts.slo_us {
        service_config.slo =
            quipper_serve::SloPolicy::with_default(std::time::Duration::from_micros(us));
    }
    let service = Arc::new(Service::start(engine, service_config));
    let server = match Server::start(&opts.addr, Arc::clone(&service), Arc::new(Catalog::new())) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };

    // The integration harness scrapes this line for the ephemeral port.
    println!("listening on {}", server.local_addr());
    server.join();
    service.shutdown();

    println!("{}", service.stats());
    if opts.trace {
        print!("{}", quipper_trace::tracer().metrics().snapshot());
    }
    if opts.metrics_dump {
        let snapshot = quipper_trace::tracer().metrics().snapshot();
        println!("--- metrics (json lines) ---");
        print!("{}", quipper_trace::to_metrics_json_lines(&snapshot));
        println!("--- metrics (prometheus) ---");
        print!("{}", quipper_trace::to_prometheus_text(&snapshot));
    }
    ExitCode::SUCCESS
}
