//! `quipper-opt`: run the pass-manager optimizer over the built-in circuit
//! suite and report the gate deltas.
//!
//! The suite is the same one `quipper-lint` checks, so the delta table
//! shows what the optimizer does to exactly the circuits the examples
//! execute:
//!
//! ```text
//! cargo run --release --bin quipper-opt -- --level aggressive
//! ```
//!
//! Exit status is 0 unless arguments are malformed; the tool reports, it
//! does not gate (CI asserts reductions through the benchmark instead).

use std::process::ExitCode;

use quipper_circuit::BCircuit;
use quipper_opt::{optimize, OptLevel, OptReport};

#[path = "../circuit_suite.rs"]
mod circuit_suite;
use circuit_suite::suite;

const USAGE: &str = "\
quipper-opt: pass-manager circuit optimizer over the built-in suite

USAGE: quipper-opt [OPTIONS]

OPTIONS:
  --list             print the suite's circuit names and exit
  --only NAME        optimize only this circuit (repeatable)
  --qasm FILE        also optimize an OpenQASM file (repeatable); files
                     that do not parse report their QP codes and fail
  --level LEVEL      pipeline to run: off | default | aggressive
                     (default: default)
  --json             emit JSON Lines instead of the pretty table
  -h, --help         this text";

struct Options {
    list: bool,
    json: bool,
    level: OptLevel,
    only: Vec<String>,
    qasm: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        list: false,
        json: false,
        level: OptLevel::Default,
        only: Vec::new(),
        qasm: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => opts.list = true,
            "--json" => opts.json = true,
            "--level" => {
                opts.level = match args.next().as_deref().and_then(OptLevel::parse) {
                    Some(level) => level,
                    None => return Err("--level expects off|default|aggressive".into()),
                }
            }
            "--only" => match args.next() {
                Some(name) => opts.only.push(name),
                None => return Err("--only expects a circuit name".into()),
            },
            "--qasm" => match args.next() {
                Some(path) => opts.qasm.push(path),
                None => return Err("--qasm expects a file path".into()),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn report_json(name: &str, report: &OptReport) {
    let passes: Vec<String> = report
        .passes
        .iter()
        .map(|p| {
            format!(
                "{{\"pass\":\"{}\",\"gates_before\":{},\"gates_after\":{},\"rewrites\":{}}}",
                p.name, p.gates_before, p.gates_after, p.rewrites
            )
        })
        .collect();
    println!(
        "{{\"kind\":\"circuit\",\"name\":\"{name}\",\"level\":\"{}\",\
         \"gates_before\":{},\"gates_after\":{},\"removed\":{},\"rewrites\":{},\
         \"t_before\":{},\"t_after\":{},\"twoq_before\":{},\"twoq_after\":{},\
         \"passes\":[{}]}}",
        report.level,
        report.gates_before(),
        report.gates_after(),
        report.removed(),
        report.rewrites(),
        report.before.t_count(),
        report.after.t_count(),
        report.before.two_qubit(),
        report.after.two_qubit(),
        passes.join(","),
    );
}

fn optimize_one(name: &str, bc: &BCircuit, opts: &Options) -> OptReport {
    let (_, report) = optimize(bc, opts.level);
    if opts.json {
        report_json(name, &report);
    } else {
        let pct = if report.gates_before() > 0 {
            100.0 * report.removed() as f64 / report.gates_before() as f64
        } else {
            0.0
        };
        println!(
            "{name:<16}{:>10} -> {:<10}{:>+8}  ({pct:.1}%)  T {:>4} -> {:<4} 2q {:>4} -> {:<4} {} rewrites",
            report.gates_before(),
            report.gates_after(),
            -report.removed(),
            report.before.t_count(),
            report.after.t_count(),
            report.before.two_qubit(),
            report.after.two_qubit(),
            report.rewrites(),
        );
    }
    report
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let suite = suite();
    if opts.list {
        for (name, _) in &suite {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(unknown) = opts
        .only
        .iter()
        .find(|name| !suite.iter().any(|(n, _)| n == *name))
    {
        eprintln!("error: no circuit named {unknown:?} (see --list)");
        return ExitCode::FAILURE;
    }

    if !opts.json {
        println!(
            "{:<16}{:>10}    {:<10}{:>8}  {:<27}level: {}",
            "circuit", "before", "after", "delta", "T-count / 2q-count", opts.level
        );
    }
    let mut selected = 0usize;
    let mut total_before: u128 = 0;
    let mut total_after: u128 = 0;
    for (name, build) in &suite {
        if !opts.only.is_empty() && !opts.only.iter().any(|n| n == name) {
            continue;
        }
        selected += 1;
        let report = optimize_one(name, &build(), &opts);
        total_before += report.gates_before();
        total_after += report.gates_after();
    }
    let mut parse_failures = 0usize;
    for path in &opts.qasm {
        let source = match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                parse_failures += 1;
                continue;
            }
        };
        match quipper_qasm::compile(&source) {
            Ok(bc) => {
                selected += 1;
                let report = optimize_one(path, &bc, &opts);
                total_before += report.gates_before();
                total_after += report.gates_after();
            }
            Err(diags) => {
                eprintln!("error: {path} does not parse:");
                for d in diags.iter() {
                    eprintln!("  {d}");
                }
                parse_failures += 1;
            }
        }
    }
    if !opts.json {
        println!(
            "{selected} circuit{} optimized at --level {}: {total_before} -> {total_after} gates",
            if selected == 1 { "" } else { "s" },
            opts.level,
        );
    }
    if parse_failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
