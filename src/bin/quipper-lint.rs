//! `quipper-lint`: run the static-analysis passes over a suite of built-in
//! circuits and report the findings.
//!
//! The suite mirrors the repository's example binaries — teleportation,
//! synthesized oracles, Grover, QFT, the welded-tree walk — so CI can assert
//! that everything the examples execute is statically clean:
//!
//! ```text
//! cargo run --release --bin quipper-lint -- --deny warnings
//! ```
//!
//! Exit status is 1 when any selected circuit has a finding at or above the
//! deny threshold (after `--allow` filtering), 0 otherwise.

use std::process::ExitCode;

use quipper_circuit::BCircuit;
use quipper_lint::{lint, LintReport, Severity};

#[path = "../circuit_suite.rs"]
mod circuit_suite;
use circuit_suite::suite;

const USAGE: &str = "\
quipper-lint: static analysis over the built-in circuit suite

USAGE: quipper-lint [OPTIONS]

OPTIONS:
  --list             print the suite's circuit names and exit
  --only NAME        lint only this circuit (repeatable)
  --qasm FILE        also lint an OpenQASM file (repeatable); parse errors
                     are reported with their QP codes and count as failures
  --deny LEVEL       fail on findings at or above LEVEL: errors | warnings
                     (default: errors)
  --allow CODE       drop findings with this code, e.g. --allow QL030
                     (repeatable)
  --json             emit JSON Lines instead of the pretty report
  -h, --help         this text";

struct Options {
    list: bool,
    json: bool,
    deny: Severity,
    allow: Vec<String>,
    only: Vec<String>,
    qasm: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        list: false,
        json: false,
        deny: Severity::Error,
        allow: Vec::new(),
        only: Vec::new(),
        qasm: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => opts.list = true,
            "--json" => opts.json = true,
            "--deny" => {
                opts.deny = match args.next().as_deref() {
                    Some("errors") => Severity::Error,
                    Some("warnings") => Severity::Warning,
                    other => return Err(format!("--deny expects errors|warnings, got {other:?}")),
                }
            }
            "--allow" => match args.next() {
                Some(code) => opts.allow.push(code),
                None => return Err("--allow expects a code, e.g. QL030".into()),
            },
            "--only" => match args.next() {
                Some(name) => opts.only.push(name),
                None => return Err("--only expects a circuit name".into()),
            },
            "--qasm" => match args.next() {
                Some(path) => opts.qasm.push(path),
                None => return Err("--qasm expects a file path".into()),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn lint_one(name: &str, bc: &BCircuit, opts: &Options) -> (LintReport, bool) {
    let mut report = lint(bc);
    report
        .findings
        .retain(|d| !opts.allow.iter().any(|code| code == d.code));
    let failed = report.fails_at(opts.deny);
    if opts.json {
        print!(
            "{{\"kind\":\"circuit\",\"name\":\"{name}\"}}\n{}",
            report.to_json_lines()
        );
    } else {
        let verdict = if failed {
            "FAIL"
        } else if report.is_clean() {
            "ok"
        } else {
            "ok (with findings)"
        };
        println!("{name}: {} — {verdict}", report.summary());
        if !report.findings.is_empty() {
            for line in report.to_string().lines() {
                println!("  {line}");
            }
        }
    }
    (report, failed)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let suite = suite();
    if opts.list {
        for (name, _) in &suite {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(unknown) = opts
        .only
        .iter()
        .find(|name| !suite.iter().any(|(n, _)| n == *name))
    {
        eprintln!("error: no circuit named {unknown:?} (see --list)");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut selected = 0usize;
    for (name, build) in &suite {
        if !opts.only.is_empty() && !opts.only.iter().any(|n| n == name) {
            continue;
        }
        selected += 1;
        let (_, failed) = lint_one(name, &build(), &opts);
        failures += usize::from(failed);
    }
    for path in &opts.qasm {
        selected += 1;
        let source = match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                failures += 1;
                continue;
            }
        };
        match quipper_qasm::compile(&source) {
            Ok(bc) => {
                let (_, failed) = lint_one(path, &bc, &opts);
                failures += usize::from(failed);
            }
            Err(diags) => {
                // Parse/lowering rejections always fail, whatever --deny
                // says: there is no circuit to lint.
                if opts.json {
                    println!("{{\"kind\":\"circuit\",\"name\":\"{path}\"}}");
                    for d in diags.iter() {
                        println!(
                            "{{\"code\":\"{}\",\"severity\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                            d.code.as_str(),
                            d.severity.label(),
                            d.span.line,
                            d.span.col,
                            d.message.replace('\\', "\\\\").replace('"', "\\\""),
                        );
                    }
                } else {
                    println!("{path}: does not parse — FAIL");
                    for d in diags.iter() {
                        println!("  {d}");
                    }
                }
                failures += 1;
            }
        }
    }
    if !opts.json {
        println!(
            "{selected} circuit{} linted, {failures} failed at --deny {}",
            if selected == 1 { "" } else { "s" },
            if opts.deny == Severity::Error {
                "errors"
            } else {
                "warnings"
            },
        );
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
