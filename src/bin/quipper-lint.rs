//! `quipper-lint`: run the static-analysis passes over a suite of built-in
//! circuits and report the findings.
//!
//! The suite mirrors the repository's example binaries — teleportation,
//! synthesized oracles, Grover, QFT, the welded-tree walk — so CI can assert
//! that everything the examples execute is statically clean:
//!
//! ```text
//! cargo run --release --bin quipper-lint -- --deny warnings
//! ```
//!
//! Exit status is 1 when any selected circuit has a finding at or above the
//! deny threshold (after `--allow` filtering), 0 otherwise.

use std::process::ExitCode;

use quipper::classical::{synth, Dag};
use quipper::qft::qft;
use quipper::{Circ, Qubit};
use quipper_algorithms::bf::{hex_winner_dag, HexBoard};
use quipper_algorithms::bwt::{bwt_circuit, Flavor, WeldedTree};
use quipper_algorithms::cl::mod_const_dag;
use quipper_algorithms::grover::{grover_circuit, optimal_iterations};
use quipper_circuit::BCircuit;
use quipper_lint::{lint, LintReport, Severity};

const USAGE: &str = "\
quipper-lint: static analysis over the built-in circuit suite

USAGE: quipper-lint [OPTIONS]

OPTIONS:
  --list             print the suite's circuit names and exit
  --only NAME        lint only this circuit (repeatable)
  --deny LEVEL       fail on findings at or above LEVEL: errors | warnings
                     (default: errors)
  --allow CODE       drop findings with this code, e.g. --allow QL030
                     (repeatable)
  --json             emit JSON Lines instead of the pretty report
  -h, --help         this text";

/// A named circuit in the suite: display name plus builder.
type SuiteEntry = (&'static str, fn() -> BCircuit);

/// The circuits the examples build and run, reconstructed here so the lint
/// gate in CI sees exactly the shapes users see.
fn suite() -> Vec<SuiteEntry> {
    vec![
        ("teleportation", teleportation),
        ("ghz5", ghz5),
        ("parity-oracle", parity_oracle),
        ("mod-oracle", mod_oracle),
        ("hex-oracle", hex_oracle),
        ("grover3", grover3),
        ("qft4", qft4),
        ("bwt-orthodox", bwt_orthodox),
    ]
}

/// The mixed classical/quantum teleportation circuit of
/// `examples/teleportation.rs` (θ = 0.7).
fn teleportation() -> BCircuit {
    let mut c = Circ::new();
    let psi = c.qinit_bit(false);
    c.rot("Ry(%)", 0.7, psi);
    let a = c.qinit_bit(false);
    let b = c.qinit_bit(false);
    c.hadamard(a);
    c.cnot(b, a);
    c.cnot(a, psi);
    c.hadamard(psi);
    let m1 = c.measure_bit(psi);
    let m2 = c.measure_bit(a);
    c.qnot_ctrl(b, &m2);
    c.gate_ctrl(quipper::GateName::Z, b, &m1);
    c.cdiscard(m1);
    c.cdiscard(m2);
    c.rot("Ry(%)", -0.7, b);
    let check = c.measure_bit(b);
    c.finish(&check)
}

/// Five-qubit GHZ preparation and measurement.
fn ghz5() -> BCircuit {
    Circ::build(&vec![false; 5], |c, qs: Vec<Qubit>| {
        c.hadamard(qs[0]);
        for w in qs.windows(2) {
            c.cnot(w[1], w[0]);
        }
        qs.into_iter().map(|q| c.measure(q)).collect::<Vec<_>>()
    })
}

/// The paper's §4.6.1 parity oracle via `classical_to_reversible`.
fn parity_oracle() -> BCircuit {
    let parity = Dag::build(4, |b, xs| {
        vec![xs.iter().fold(b.constant(false), |acc, x| acc ^ x.clone())]
    });
    Circ::build(
        &(vec![false; 4], false),
        |c, (xs, t): (Vec<Qubit>, Qubit)| {
            synth::classical_to_reversible(c, &parity, &xs, &[t]);
            (xs, t)
        },
    )
}

/// A modular-arithmetic oracle (Class Number), synthesized clean.
fn mod_oracle() -> BCircuit {
    let dag = mod_const_dag(4, 3);
    Circ::build(&vec![false; 4], |c, xs: Vec<Qubit>| {
        let outs = synth::synthesize_clean(c, &dag, &xs);
        (xs, outs)
    })
}

/// The Hex flood-fill winner oracle (Boolean Formula) on a small board.
fn hex_oracle() -> BCircuit {
    let board = HexBoard::new(3, 3);
    let dag = hex_winner_dag(board, true, None);
    Circ::build(
        &(vec![false; board.cells()], false),
        |c, (cells, out): (Vec<Qubit>, Qubit)| {
            synth::classical_to_reversible(c, &dag, &cells, &[out]);
            (cells, out)
        },
    )
}

/// Grover search for one marked element among 2^3.
fn grover3() -> BCircuit {
    let dag = Dag::build(3, |_, xs| vec![&(&xs[0] & &!(&xs[1])) & &xs[2]]);
    grover_circuit(&dag, optimal_iterations(3, 1))
}

/// QFT over four qubits, then measure.
fn qft4() -> BCircuit {
    Circ::build(&vec![false; 4], |c, qs: Vec<Qubit>| {
        qft(c, &qs);
        qs.into_iter().map(|q| c.measure(q)).collect::<Vec<_>>()
    })
}

/// One timestep of the orthodox welded-tree walk on a depth-1 tree.
fn bwt_orthodox() -> BCircuit {
    bwt_circuit(WeldedTree::new(1, [0b0, 0b1]), 1, 0.35, Flavor::Orthodox)
}

struct Options {
    list: bool,
    json: bool,
    deny: Severity,
    allow: Vec<String>,
    only: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        list: false,
        json: false,
        deny: Severity::Error,
        allow: Vec::new(),
        only: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => opts.list = true,
            "--json" => opts.json = true,
            "--deny" => {
                opts.deny = match args.next().as_deref() {
                    Some("errors") => Severity::Error,
                    Some("warnings") => Severity::Warning,
                    other => return Err(format!("--deny expects errors|warnings, got {other:?}")),
                }
            }
            "--allow" => match args.next() {
                Some(code) => opts.allow.push(code),
                None => return Err("--allow expects a code, e.g. QL030".into()),
            },
            "--only" => match args.next() {
                Some(name) => opts.only.push(name),
                None => return Err("--only expects a circuit name".into()),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn lint_one(name: &str, bc: &BCircuit, opts: &Options) -> (LintReport, bool) {
    let mut report = lint(bc);
    report
        .findings
        .retain(|d| !opts.allow.iter().any(|code| code == d.code));
    let failed = report.fails_at(opts.deny);
    if opts.json {
        print!(
            "{{\"kind\":\"circuit\",\"name\":\"{name}\"}}\n{}",
            report.to_json_lines()
        );
    } else {
        let verdict = if failed {
            "FAIL"
        } else if report.is_clean() {
            "ok"
        } else {
            "ok (with findings)"
        };
        println!("{name}: {} — {verdict}", report.summary());
        if !report.findings.is_empty() {
            for line in report.to_string().lines() {
                println!("  {line}");
            }
        }
    }
    (report, failed)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let suite = suite();
    if opts.list {
        for (name, _) in &suite {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(unknown) = opts
        .only
        .iter()
        .find(|name| !suite.iter().any(|(n, _)| n == *name))
    {
        eprintln!("error: no circuit named {unknown:?} (see --list)");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut selected = 0usize;
    for (name, build) in &suite {
        if !opts.only.is_empty() && !opts.only.iter().any(|n| n == name) {
            continue;
        }
        selected += 1;
        let (_, failed) = lint_one(name, &build(), &opts);
        failures += usize::from(failed);
    }
    if !opts.json {
        println!(
            "{selected} circuit{} linted, {failures} failed at --deny {}",
            if selected == 1 { "" } else { "s" },
            if opts.deny == Severity::Error {
                "errors"
            } else {
                "warnings"
            },
        );
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
