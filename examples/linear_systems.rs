//! Quantum Linear Systems (HHL) on a 2x2 system.
//!
//! Run with: `cargo run --example linear_systems`

use quipper_algorithms::qls::{classical_solution, qls_solve, HadamardSystem, RhsState};

fn main() {
    let sys = HadamardSystem::new(1, 2);
    let b = RhsState { b0: 0.6, b1: 0.8 };
    let (x0, x1) = classical_solution(sys, b);
    println!("A = H diag(1,2) H,  b = (0.6, 0.8)");
    println!("classical solution direction: ({x0:.4}, {x1:.4})");
    let want0 = x0 * x0 / (x0 * x0 + x1 * x1);

    let (p0, p1, p_flag) = qls_solve(sys, b, 2, 42);
    println!("HHL post-selected |x⟩ probabilities: |x0|^2 = {p0:.4}, |x1|^2 = {p1:.4}");
    println!("expected |x0|^2 = {want0:.4}; flag success probability {p_flag:.4}");
}
