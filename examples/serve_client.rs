//! A line-protocol client for `quipper-served`, doubling as the CI
//! integration smoke test.
//!
//! Connects to a running server (address from argv or `QUIPPER_SERVED`),
//! then drives a full session: list the catalog, submit a mixed batch
//! across two tenants, poll to completion, cancel one long job, export a
//! circuit to OpenQASM, and print the final server stats. Exits non-zero
//! if any step misbehaves, so `cargo run --example serve_client` is a
//! pass/fail check against a live server:
//!
//! ```text
//! cargo run --bin quipper-served -- --addr 127.0.0.1:7878 &
//! cargo run --example serve_client -- 127.0.0.1:7878
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use quipper_trace::{parse_json, Json};

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// One request line out, one response line in, parsed.
    fn call(&mut self, request: &str) -> Json {
        self.writer.write_all(request.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        parse_json(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }

    fn call_ok(&mut self, request: &str) -> Json {
        let resp = self.call(request);
        assert_eq!(
            resp.get("ok"),
            Some(&Json::Bool(true)),
            "request {request} failed: {resp:?}"
        );
        resp
    }
}

fn field_u64(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_num).unwrap() as u64
}

fn main() {
    let addr = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("QUIPPER_SERVED").ok())
        .expect("usage: serve_client ADDR (or set QUIPPER_SERVED)");
    let mut client = Client::connect(&addr).expect("connect to quipper-served");

    // Liveness + catalog.
    client.call_ok(r#"{"op":"ping"}"#);
    let list = client.call_ok(r#"{"op":"list"}"#);
    let circuits = list.get("circuits").and_then(Json::as_arr).unwrap();
    println!(
        "catalog: {}",
        circuits
            .iter()
            .filter_map(Json::as_str)
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert!(circuits.iter().any(|c| c.as_str() == Some("ghz5")));

    // A mixed two-tenant batch: GHZ and teleportation shots.
    let mut ids = Vec::new();
    for i in 0..6 {
        let (tenant, circuit) = if i % 2 == 0 {
            ("alice", "ghz5")
        } else {
            ("bob", "teleportation")
        };
        // Cycle the per-job optimizer level so the batch exercises every
        // pipeline (and every plan-cache key) the server offers.
        let opt = ["off", "default", "aggressive"][i % 3];
        // Modest shot counts: a fault-injecting server fails a whole job
        // attempt with probability 1-(1-P)^shots, so shots trade off against
        // the server's --retry-attempts budget.
        let resp = client.call_ok(&format!(
            r#"{{"op":"submit","circuit":"{circuit}","tenant":"{tenant}","shots":24,"seed":{i},"label":"batch-{i}","opt":"{opt}"}}"#
        ));
        ids.push(field_u64(&resp, "id"));
    }

    // A bogus optimizer level is refused at the door.
    let bad = client.call(r#"{"op":"submit","circuit":"ghz5","opt":"extreme"}"#);
    assert_eq!(bad.get("ok"), Some(&Json::Bool(false)), "{bad:?}");

    // One deliberately huge job to cancel mid-flight.
    let victim = field_u64(
        &client.call_ok(
            r#"{"op":"submit","circuit":"grover3","tenant":"alice","shots":800000,"label":"victim"}"#,
        ),
        "id",
    );
    let resp = client.call_ok(&format!(r#"{{"op":"cancel","id":{victim}}}"#));
    let state = resp
        .get("state")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert!(
        state == "cancelled" || state == "running" || state == "queued",
        "unexpected post-cancel state {state}"
    );

    // Poll the batch to completion.
    let deadline = Instant::now() + Duration::from_secs(60);
    for &id in &ids {
        loop {
            let status = client.call_ok(&format!(r#"{{"op":"status","id":{id}}}"#));
            match status.get("state").and_then(Json::as_str).unwrap() {
                "completed" => break,
                "queued" | "running" => {
                    assert!(Instant::now() < deadline, "job {id} stuck");
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => panic!("job {id} ended {other}: {status:?}"),
            }
        }
        let result = client.call_ok(&format!(r#"{{"op":"result","id":{id}}}"#));
        let total: u64 = result
            .get("histogram")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|e| field_u64(e, "count"))
            .sum();
        assert_eq!(total, 24, "job {id} lost shots");
        println!(
            "job {id} [{}] completed on {} ({} patterns)",
            result.get("label").and_then(Json::as_str).unwrap(),
            result.get("backend").and_then(Json::as_str).unwrap(),
            result
                .get("histogram")
                .and_then(Json::as_arr)
                .unwrap()
                .len(),
        );
    }

    // The cancelled job must terminate without completing.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.call_ok(&format!(r#"{{"op":"status","id":{victim}}}"#));
        match status.get("state").and_then(Json::as_str).unwrap() {
            "cancelled" => break,
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "cancel never landed");
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("victim ended {other}, expected cancelled"),
        }
    }
    println!("victim job {victim} cancelled");

    // OpenQASM export over the wire: dynamic lifting survives serialization.
    let export = client.call_ok(r#"{"op":"export","circuit":"teleportation"}"#);
    let qasm = export.get("qasm").and_then(Json::as_str).unwrap();
    assert!(qasm.contains("if(c1==1) x q[2];"), "{qasm}");
    println!(
        "teleportation exports to {} QASM lines",
        qasm.lines().count()
    );

    // Ingestion, the other direction: submit raw OpenQASM text the server
    // has never seen. It passes the same lint gate, optimizer, and plan
    // cache as catalog jobs.
    let bell = "OPENQASM 2.0;\\ninclude \\\"qelib1.inc\\\";\\nqreg q[2];\\ncreg c[2];\\nreset q;\\nh q[0];\\ncx q[0],q[1];\\nmeasure q -> c;\\n";
    let resp = client.call_ok(&format!(
        r#"{{"op":"submit","qasm":"{bell}","tenant":"carol","shots":24,"seed":11,"label":"inline-bell","opt":"aggressive"}}"#
    ));
    let inline_id = field_u64(&resp, "id");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.call_ok(&format!(r#"{{"op":"status","id":{inline_id}}}"#));
        match status.get("state").and_then(Json::as_str).unwrap() {
            "completed" => break,
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "inline qasm job stuck");
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("inline qasm job ended {other}: {status:?}"),
        }
    }
    let result = client.call_ok(&format!(r#"{{"op":"result","id":{inline_id}}}"#));
    let hist = result.get("histogram").and_then(Json::as_arr).unwrap();
    let total: u64 = hist.iter().map(|e| field_u64(e, "count")).sum();
    assert_eq!(total, 24, "inline qasm job lost shots");
    assert!(
        hist.len() <= 2,
        "Bell pair must collapse to 00/11: {hist:?}"
    );
    println!(
        "inline qasm job {inline_id} completed ({} patterns)",
        hist.len()
    );

    // Malformed submissions come back as span-anchored QP diagnostics,
    // never a dropped connection.
    let bad_qasm =
        client.call(r#"{"op":"submit","qasm":"OPENQASM 2.0;\nqreg q[1];\nfrob q[0];\n"}"#);
    assert_eq!(bad_qasm.get("ok"), Some(&Json::Bool(false)), "{bad_qasm:?}");
    let diags = bad_qasm.get("diagnostics").and_then(Json::as_arr).unwrap();
    assert!(
        diags
            .iter()
            .any(|d| d.get("code").and_then(Json::as_str) == Some("QP103")),
        "{diags:?}"
    );
    println!("malformed qasm rejected with {} diagnostic(s)", diags.len());

    // Canonicalization round trip: exporting client text re-emits it in
    // the server's dialect, and that dialect is a fixpoint.
    let canon = client.call_ok(&format!(r#"{{"op":"export","qasm":"{bell}"}}"#));
    let canon_text = canon
        .get("qasm")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert!(canon_text.starts_with("OPENQASM 2.0;\n"), "{canon_text}");
    let mut requoted = String::new();
    quipper_trace::escape_into(&mut requoted, &canon_text);
    let again = client.call_ok(&format!(r#"{{"op":"export","qasm":"{requoted}"}}"#));
    assert_eq!(
        again.get("qasm").and_then(Json::as_str),
        Some(canon_text.as_str()),
        "canonical form must be a fixpoint"
    );
    println!(
        "inline qasm canonicalizes to {} lines",
        canon_text.lines().count()
    );

    let stats = client.call_ok(r#"{"op":"stats"}"#);
    println!(
        "server stats: {} admitted, {} completed, {} cancelled, {} retries",
        field_u64(&stats, "admitted"),
        field_u64(&stats, "completed"),
        field_u64(&stats, "cancelled"),
        field_u64(&stats, "retries"),
    );
    println!(
        "plan cache: {} hits / {} misses / {} cached plans",
        field_u64(&stats, "engine_cache_hits"),
        field_u64(&stats, "engine_cache_misses"),
        field_u64(&stats, "engine_cached_plans"),
    );
    assert_eq!(field_u64(&stats, "failed"), 0, "no job may be lost");

    // The metrics op must answer in both exposition formats; the JSON Lines
    // body feeds the per-tenant latency table below. (The registry is empty
    // unless the server runs with --trace / --metrics-dump.)
    let prom = client.call_ok(r#"{"op":"metrics","format":"prometheus"}"#);
    let prom_text = prom.get("text").and_then(Json::as_str).unwrap();
    let metrics = client.call_ok(r#"{"op":"metrics","format":"json"}"#);
    let rows: Vec<Json> = metrics
        .get("text")
        .and_then(Json::as_str)
        .unwrap()
        .lines()
        .map(|l| parse_json(l).expect("metrics line parses"))
        .collect();
    let latency_rows: Vec<&Json> = rows
        .iter()
        .filter(|r| r.get("name").and_then(Json::as_str) == Some("serve.job_latency_us"))
        .collect();
    if latency_rows.is_empty() {
        println!("per-tenant latency: no data (server running without --trace)");
    } else {
        assert!(
            prom_text.contains("serve_job_latency_us"),
            "prometheus exposition must agree with json lines"
        );
        println!("per-tenant job latency (us):");
        println!(
            "{:<10} {:<20} {:>6} {:>10} {:>10}",
            "tenant", "state", "jobs", "p50", "p99"
        );
        for row in latency_rows {
            let label = |k| {
                row.get("labels")
                    .and_then(|l| l.get(k))
                    .and_then(Json::as_str)
                    .unwrap_or("-")
            };
            println!(
                "{:<10} {:<20} {:>6} {:>10} {:>10}",
                label("tenant"),
                label("state"),
                field_u64(row, "count"),
                field_u64(row, "p50"),
                field_u64(row, "p99"),
            );
        }
    }

    // The flight recorder keeps the recent job timelines; print the last
    // few so "where did the time go" is answerable from the client.
    let flights = client.call_ok(r#"{"op":"flight","recent":3}"#);
    for timeline in flights.get("flights").and_then(Json::as_arr).unwrap() {
        let phases: Vec<String> = timeline
            .get("events")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|e| {
                format!(
                    "{}+{}us",
                    e.get("phase").and_then(Json::as_str).unwrap(),
                    field_u64(e, "dur_us")
                )
            })
            .collect();
        println!(
            "flight job {} [{}] {}: {}",
            field_u64(timeline, "id"),
            timeline.get("tenant").and_then(Json::as_str).unwrap(),
            timeline.get("state").and_then(Json::as_str).unwrap(),
            phases.join(" -> ")
        );
    }

    println!("serve client: all checks passed");
}
