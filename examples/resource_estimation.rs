//! Fault-tolerant resource estimation — the purpose the paper's circuit
//! representations were built for: "a representation usable for resource
//! estimation using realistic problem sizes" (§7).
//!
//! Estimates T counts, Clifford counts, qubits, and critical-path depth for
//! the Triangle Finding oracle arithmetic at increasing widths, after
//! decomposition to the fault-tolerant Clifford+T gate set.
//!
//! Run with: `cargo run --release --example resource_estimation`

use quipper::decompose::{decompose, resources, GateBase};
use quipper::Circ;
use quipper_arith::qinttf::{pow17_tf_boxed, QIntTF};
use quipper_arith::IntTF;
use quipper_circuit::count::depth;

fn main() {
    println!("o4_POW17 (x ↦ x^17 mod 2^l − 1) in the Clifford+T base\n");
    println!(
        "{:>4} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "l", "T count", "Cliffords", "qubits", "logical depth", "T-depth bound"
    );
    for l in [4usize, 8, 16, 24, 31] {
        let bc = Circ::build(&IntTF::new(0, l), |c, x: QIntTF| {
            let (x, x17) = pow17_tf_boxed(c, x);
            (x, x17)
        });
        let r = resources(&bc);
        let ct = decompose(GateBase::CliffordT, &bc);
        let d = depth(&ct.db, &ct.main);
        // A coarse T-depth bound: T gates cannot be better than evenly
        // spread over the critical path.
        let t_depth_bound = r.t_count.min(d);
        println!(
            "{l:>4} {:>12} {:>12} {:>9} {:>14} {:>14}",
            r.t_count, r.clifford_count, r.qubits, d, t_depth_bound
        );
        assert_eq!(r.residual, 0, "oracle arithmetic is exactly Clifford+T");
    }
    println!(
        "\n(With a surface-code factory producing one T state per cycle,\n\
         the T count is the leading-order space-time cost.)"
    );
}
