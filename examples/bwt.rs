//! The Binary Welded Tree algorithm end to end, plus the paper's Section 6
//! compiler comparison.
//!
//! Run with: `cargo run --release --example bwt`

use quipper_algorithms::bwt::{bwt_circuit, run_bwt, Flavor, WeldedTree};

fn main() {
    // A small instance the state-vector simulator can walk.
    let g = WeldedTree::new(1, [0b0, 0b1]);
    println!(
        "welded tree: depth {}, entrance {:b}, exit {:b}",
        g.depth,
        g.entrance(),
        g.exit()
    );
    let mut hits = 0;
    let runs = 40;
    for seed in 0..runs {
        let label = run_bwt(g, 3, 0.9, Flavor::Orthodox, seed);
        if label == g.exit() {
            hits += 1;
        }
    }
    println!("walker measured at the exit in {hits}/{runs} runs\n");

    // The Section 6 comparison at the paper's scale (depth 4).
    let g = WeldedTree::new(4, [0b0011, 0b0101]);
    for (label, flavor) in [
        ("QCL \"direct\"", Flavor::Qcl),
        ("Quipper \"orthodox\"", Flavor::Orthodox),
        ("Quipper \"template\"", Flavor::Template),
    ] {
        let gc = bwt_circuit(g, 1, 0.35, flavor).gate_count();
        println!(
            "{label:>20}: {:>6} logical gates, {:>3} qubits",
            gc.total_logical(),
            gc.qubits_in_circuit
        );
    }
}
