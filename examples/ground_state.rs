//! Ground State Estimation on molecular hydrogen.
//!
//! Run with: `cargo run --release --example ground_state`

use quipper_algorithms::gse::{estimate_energy, Hamiltonian, StatePrep};

fn main() {
    let h = Hamiltonian::h2();
    let exact = h.ground_energy();
    println!("H2 (reduced, 2 qubits) exact ground energy: {exact:.6}");

    // Prepare the ground state (Givens rotation angle from the classical
    // 2x2 sector) and phase-estimate the energy.
    let m = h.dense();
    let (a, d, b) = (m[2][2].0, m[1][1].0, m[1][2].0);
    let lam = (a + d) / 2.0 - (((a - d) / 2.0).powi(2) + b * b).sqrt();
    let theta = 2.0 * f64::atan2(lam - a, b);
    for seed in 0..5 {
        let e = estimate_energy(&h, StatePrep::Givens(theta), 7, 6, 1.0, seed);
        println!("phase-estimated energy (seed {seed}): {e:.4}");
    }
}
