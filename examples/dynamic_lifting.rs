//! Dynamic lifting (§4.3): circuit generation steered by measurement
//! outcomes, demonstrated by the Unique Shortest Vector solver's
//! iterative phase estimation.
//!
//! Run with: `cargo run --example dynamic_lifting`

use quipper_algorithms::usv::{solve_usv, Lattice2, PlantedUsv};

fn main() {
    let lattice = Lattice2 {
        b1: (4, 1),
        b2: (5, 1),
    };
    let shortest = lattice.shortest_vector();
    println!("lattice basis {:?}, {:?}", lattice.b1, lattice.b2);
    println!("Gauss-reduced shortest vector: {shortest:?}");

    // Plant the shortest vector's coefficients and recover them with
    // dynamically-lifted iterative phase estimation.
    let instance = PlantedUsv {
        lattice,
        coeff: (-1, 1),
    };
    for seed in 0..3 {
        let v = solve_usv(instance, seed);
        println!("quantum IPE run {seed}: recovered vector {v:?}");
    }
}
