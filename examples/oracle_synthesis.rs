//! Automatic oracle synthesis (§4.6): from classical code to reversible
//! quantum circuits.
//!
//! Reproduces the paper's parity example, then scales the same machinery
//! up: the Hex flood-fill winner oracle of the Boolean Formula algorithm
//! and a modular-arithmetic oracle, with gate counts.
//!
//! Run with: `cargo run --example oracle_synthesis`

use quipper::classical::{synth, Dag};
use quipper::{Circ, Qubit};
use quipper_algorithms::bf::{hex_winner_dag, HexBoard};
use quipper_algorithms::cl::mod_const_dag;
use quipper_circuit::print::to_ascii;

fn main() {
    // --- the paper's parity oracle (§4.6.1) ------------------------------
    // f :: [Bool] -> Bool ; f = foldr xor False — written in the DSL.
    let parity = Dag::build(4, |b, xs| {
        vec![xs.iter().fold(b.constant(false), |acc, x| acc ^ x.clone())]
    });
    println!("classical parity DAG: {} nodes\n", parity.num_nodes());

    // Step 2+3: `unpack template_f` — the compute circuit, scratch alive.
    let bc = Circ::build(&vec![false; 4], |c, xs: Vec<Qubit>| {
        let (outs, scratch) = synth::synthesize_compute(c, &parity, &xs);
        (xs, outs, scratch)
    });
    println!(
        "unpack template_f:\n{}",
        to_ascii(&bc.db, &bc.main, 100).unwrap()
    );

    // Step 4: classical_to_reversible — (x, y) ↦ (x, y ⊕ f(x)).
    let bc = Circ::build(
        &(vec![false; 4], false),
        |c, (xs, t): (Vec<Qubit>, Qubit)| {
            synth::classical_to_reversible(c, &parity, &xs, &[t]);
            (xs, t)
        },
    );
    println!(
        "classical_to_reversible (unpack template_f):\n{}",
        to_ascii(&bc.db, &bc.main, 100).unwrap()
    );
    // Check it on every input, via the efficient classical simulator.
    for bits in 0..16u32 {
        let mut input: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
        let want = input.iter().filter(|&&b| b).count() % 2 == 1;
        input.push(false);
        let out = quipper_sim::run_classical(&bc, &input).unwrap();
        assert_eq!(out[4], want);
    }
    println!("parity oracle verified on all 16 inputs\n");

    // --- the Hex winner oracle (Boolean Formula, §4.6.1) ----------------
    let board = HexBoard::new(5, 4);
    let dag = hex_winner_dag(board, true, None);
    let bc = Circ::build(
        &(vec![false; board.cells()], false),
        |c, (cells, out): (Vec<Qubit>, Qubit)| {
            synth::classical_to_reversible(c, &dag, &cells, &[out]);
            (cells, out)
        },
    );
    let gc = bc.gate_count();
    println!(
        "Hex 5x4 flood-fill winner oracle: {} nodes -> {} gates, {} qubits",
        dag.num_nodes(),
        gc.total(),
        gc.qubits_in_circuit
    );

    // --- a modular-arithmetic oracle (Class Number) ----------------------
    let dag = mod_const_dag(8, 5);
    let bc = Circ::build(&vec![false; 8], |c, xs: Vec<Qubit>| {
        let outs = synth::synthesize_clean(c, &dag, &xs);
        (xs, outs)
    });
    let gc = bc.gate_count();
    println!(
        "x mod 5 over 8 bits: {} nodes -> {} gates, {} qubits",
        dag.num_nodes(),
        gc.total(),
        gc.qubits_in_circuit
    );
    let input: Vec<bool> = (0..8).map(|i| 199u32 >> i & 1 == 1).collect();
    let out = quipper_sim::run_classical(&bc, &input).unwrap();
    let got = out[8..]
        .iter()
        .enumerate()
        .fold(0u32, |a, (i, &b)| a | (u32::from(b) << i));
    println!("199 mod 5 computed reversibly = {got}");
}
