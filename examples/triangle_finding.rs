//! Triangle Finding (paper Section 5): the quantum walk on a planted
//! instance, plus the paper-scale gate counts.
//!
//! Run with: `cargo run --release --example triangle_finding`

use quipper_algorithms::tf::{find_triangle, Graph, GraphOracle, TfSpec};

fn main() {
    // A 4-node graph with exactly one triangle, found by the quantum walk
    // plus classical checking (the repeat-until-verified loop of §3.5).
    let g = Graph::with_unique_triangle(4, 1, 7);
    println!("planted triangle: {:?}", g.triangles()[0]);
    let oracle = GraphOracle::new(g.clone(), "demo4");
    let spec = TfSpec { l: 4, n: 2, r: 1 };
    match find_triangle(spec, &oracle, 20, 1) {
        Some(tri) => println!("quantum walk found triangle {tri:?}"),
        None => println!("no triangle found in 20 attempts (unlucky seeds)"),
    }

    // Paper-scale gate counts via hierarchical counting (E6/E7).
    let rep = quipper_bench::tf_oracle_count(31, 15);
    println!(
        "\noracle at l=31, n=15: {} gates, {} qubits (paper: 2,051,926 / 1462)",
        rep.count.total(),
        rep.count.qubits_in_circuit
    );
    let rep = quipper_bench::tf_full_count(31, 15, 6);
    println!(
        "full algorithm at l=31, n=15, r=6: {} gates, {} qubits in {:.2} s\n(paper: 30,189,977,982,990 gates, 4676 qubits, \"under two minutes\")",
        rep.count.total(),
        rep.count.qubits_in_circuit,
        rep.seconds
    );
}
