//! Quickstart: the paper's §4.4 walkthrough, in Rust.
//!
//! Builds the `mycirc` family of circuits gate by gate, uses block
//! structure (`with_controls`, `with_ancilla`), reverses a subcircuit,
//! decomposes to binary gates, and runs a Bell pair on the simulator.
//!
//! Run with: `cargo run --example quickstart`

use quipper::decompose::{decompose, GateBase};
use quipper::{Circ, Qubit};
use quipper_circuit::print::{to_ascii, to_text};

fn mycirc(c: &mut Circ, a: Qubit, b: Qubit) -> (Qubit, Qubit) {
    c.hadamard(a);
    c.hadamard(b);
    c.cnot(b, a); // controlled_not
    (a, b)
}

fn main() {
    // --- mycirc (procedural paradigm, §4.4.1) ---------------------------
    let bc = Circ::build(&(false, false), |c, (a, b)| mycirc(c, a, b));
    println!("mycirc:\n{}", to_ascii(&bc.db, &bc.main, 100).unwrap());

    // --- mycirc2: whole blocks under a control (§4.4.2) -----------------
    let bc = Circ::build(
        &(false, false, false),
        |c, (a, b, ctl): (Qubit, Qubit, Qubit)| {
            mycirc(c, a, b);
            c.with_controls(&ctl, |c| {
                mycirc(c, a, b);
                mycirc(c, b, a);
            });
            mycirc(c, a, ctl);
            (a, b, ctl)
        },
    );
    println!("mycirc2:\n{}", to_ascii(&bc.db, &bc.main, 100).unwrap());

    // --- mycirc3: a scoped ancilla (§4.4.2) -----------------------------
    let bc = Circ::build(
        &(false, false, false),
        |c, (a, b, q): (Qubit, Qubit, Qubit)| {
            c.with_ancilla(|c, x| {
                c.qnot_ctrl(x, &(a, b));
                c.gate_ctrl(quipper::GateName::H, q, &x);
                c.qnot_ctrl(x, &(a, b));
            });
            (a, b, q)
        },
    );
    println!("mycirc3:\n{}", to_ascii(&bc.db, &bc.main, 100).unwrap());

    // --- timestep: reversing a subcircuit mid-computation (§4.4.3) ------
    let bc = Circ::build(
        &(false, false, false),
        |c, (a, b, t): (Qubit, Qubit, Qubit)| {
            mycirc(c, a, b);
            c.toffoli(t, a, b);
            c.reverse_simple(&(false, false), |c, (a, b)| mycirc(c, a, b), (a, b));
            (a, b, t)
        },
    );
    println!("timestep:\n{}", to_ascii(&bc.db, &bc.main, 100).unwrap());

    // --- timestep2 = decompose_generic Binary timestep ------------------
    let binary = decompose(GateBase::Binary, &bc);
    println!(
        "timestep2 (binary gate base):\n{}",
        to_ascii(&binary.db, &binary.main, 200).unwrap()
    );
    println!("timestep2 gate count:\n{}\n", binary.gate_count());

    // --- and the machine-readable text format ---------------------------
    println!("timestep in Quipper's text format:\n{}", to_text(&bc));

    // --- running a circuit (§4.4.5): a Bell pair ------------------------
    let bell = Circ::build(&(false, false), |c, (a, b): (Qubit, Qubit)| {
        c.hadamard(a);
        c.cnot(b, a);
        c.measure((a, b))
    });
    let engine = quipper_exec::Engine::new();
    let job = quipper_exec::Job::new(&bell)
        .inputs(vec![false, false])
        .shots(10)
        .seed(0);
    let result = engine.run(&job).unwrap();
    println!("ten Bell-pair shots [{}]:", result.report);
    for (bits, n) in &result.histogram {
        println!("  {}{} x{}", u8::from(bits[0]), u8::from(bits[1]), n);
    }
}
