//! Quantum teleportation: the canonical mixed classical/quantum circuit
//! (paper §4.2.3 — "classical wires, classical gates, and
//! classically-controlled quantum gates can be freely combined").
//!
//! Alice holds an unknown qubit |ψ⟩ and half of a Bell pair; she performs
//! a Bell measurement and sends two *classical* bits to Bob, whose X/Z
//! corrections are classically-controlled quantum gates. The example
//! verifies that Bob's qubit ends in |ψ⟩ by un-rotating it and measuring.
//!
//! Run with: `cargo run --example teleportation`

use quipper::Circ;

/// Builds the teleportation circuit for |ψ⟩ = Ry(θ)|0⟩ and returns the
/// verification measurement (always 0 if teleportation worked).
fn teleport(theta: f64) -> quipper::BCircuit {
    let mut c = Circ::new();
    // The state to teleport.
    let psi = c.qinit_bit(false);
    c.rot("Ry(%)", theta, psi);
    // The shared Bell pair.
    let a = c.qinit_bit(false);
    let b = c.qinit_bit(false);
    c.hadamard(a);
    c.cnot(b, a);
    // Alice's Bell measurement.
    c.cnot(a, psi);
    c.hadamard(psi);
    let m1 = c.measure_bit(psi);
    let m2 = c.measure_bit(a);
    // Bob's classically-controlled corrections (classical wires controlling
    // quantum gates — the mixed circuit model of §4.2.3).
    c.qnot_ctrl(b, &m2);
    c.gate_ctrl(quipper::GateName::Z, b, &m1);
    c.cdiscard(m1);
    c.cdiscard(m2);
    // Verification: undo the preparation; b must be exactly |0⟩.
    c.rot("Ry(%)", -theta, b);
    let check = c.measure_bit(b);
    c.finish(&check)
}

fn main() {
    let engine = quipper_exec::Engine::new();
    let runs = 50;
    for &theta in &[0.0, 0.7, 1.3, 2.2, 3.0] {
        let bc = teleport(theta);
        let result = engine
            .run(&quipper_exec::Job::new(&bc).shots(runs))
            .unwrap();
        let ok = result.count_of(&[false]);
        println!(
            "theta = {theta:.1}: teleported state verified in {ok}/{runs} runs on `{}`",
            result.report.backend
        );
        assert_eq!(ok, runs, "teleportation must be exact");
    }
    println!("\ncircuit (text format):");
    println!("{}", quipper_circuit::print::to_text(&teleport(0.7)));
}
