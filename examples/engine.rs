//! The execution engine: one subsystem fronting every run function
//! (paper §4.4.5's description/execution split, industrialized).
//!
//! Submits multi-shot jobs over three circuit classes and lets the engine
//! route each to the cheapest capable backend — bit-per-wire simulation for
//! classical circuits, CHP tableaus for Clifford circuits, state vectors for
//! everything else — then repeats a job to show the compiled-plan cache and
//! prints the engine's cumulative counters.
//!
//! Run with: `cargo run --example engine`
//!
//! Pass `--trace-out <path>` to enable phase-aware tracing for the whole run
//! and write a Chrome trace-event file (open it at `chrome://tracing` or
//! <https://ui.perfetto.dev>), plus a per-subroutine resource report for the
//! Grover circuit on stdout.

use quipper::classical::Dag;
use quipper::{Circ, Qubit};
use quipper_algorithms::grover::{grover_circuit, optimal_iterations};
use quipper_circuit::resources::resource_report;
use quipper_exec::{Engine, Job, JobQueue};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut trace_out: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("usage: engine [--trace-out <trace.json>]");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`; usage: engine [--trace-out <trace.json>]");
                std::process::exit(2);
            }
        }
    }
    // Enable tracing before any circuit is built so generation spans (one per
    // boxed subroutine) land in the trace alongside compile and execute.
    if trace_out.is_some() {
        quipper_trace::tracer().set_enabled(true);
    }

    let engine = Engine::new();

    // --- a classical circuit: 4-bit ripple parity -----------------------
    let parity = Circ::build(
        &(vec![false; 4], false),
        |c, (xs, t): (Vec<Qubit>, Qubit)| {
            for &x in &xs {
                c.cnot(t, x);
            }
            let ms: Vec<_> = xs.into_iter().map(|x| c.measure(x)).collect();
            (ms, c.measure(t))
        },
    );

    // --- a Clifford circuit: a GHZ state --------------------------------
    let ghz = Circ::build(&vec![false; 3], |c, qs: Vec<Qubit>| {
        c.hadamard(qs[0]);
        c.cnot(qs[1], qs[0]);
        c.cnot(qs[2], qs[1]);
        c.measure(qs)
    });

    // --- a full quantum circuit: Grover search for x = 6 ----------------
    let dag = Dag::build(3, |_, xs| vec![&(&!(&xs[0]) & &xs[1]) & &xs[2]]);
    let grover = grover_circuit(&dag, optimal_iterations(3, 1));

    // Auto-selection: each job lands on the cheapest capable backend.
    let jobs = [
        (
            "parity",
            Job::new(&parity)
                .inputs(vec![true, true, false, true, false])
                .shots(200),
        ),
        (
            "GHZ",
            Job::new(&ghz).inputs(vec![false; 3]).shots(200).seed(7),
        ),
        ("Grover", Job::new(&grover).shots(200).seed(42)),
    ];
    for (name, job) in &jobs {
        let result = engine.run(job).unwrap();
        println!("{name:>8}: {}", result.report);
        for (bits, n) in result.histogram.iter().take(3) {
            let pattern: String = bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
            println!("          {pattern} x{n}");
        }
    }

    // Resubmission skips validation and flattening: the plan cache serves
    // the compiled circuit by its structural fingerprint.
    let again = engine.run(&Job::new(&grover).shots(200).seed(42)).unwrap();
    println!("  repeat: {}", again.report);
    assert!(again.report.cache_hit);

    // Batched jobs fan out across the worker pool, deterministically; each
    // labelled result correlates back to its submission by name, not index.
    let mut queue = JobQueue::new();
    for seed in 0..4 {
        queue.push(
            Job::new(&ghz)
                .inputs(vec![false; 3])
                .shots(50)
                .seed(seed)
                .label(format!("ghz-seed-{seed}")),
        );
    }
    let batch = queue.run_all(&engine);
    assert!(batch.iter().all(|r| r.label.starts_with("ghz-seed-")));
    println!("   batch: {} GHZ jobs, all correlated: {}", batch.len(), {
        batch.iter().all(|r| {
            r.result
                .as_ref()
                .unwrap()
                .histogram
                .iter()
                .all(|(bits, _)| bits.iter().all(|&b| b == bits[0]))
        })
    });

    // Resource estimation — the counting backend never simulates.
    let est = engine.estimate(&grover);
    println!(
        "estimate: Grover uses {} gates, peak {} qubits, depth {}",
        est.gates.total(),
        est.peak.quantum,
        est.depth
    );

    // The engine's cumulative observability counters.
    println!("\nengine stats:\n{}", engine.stats());

    if let Some(path) = trace_out {
        let tracer = quipper_trace::tracer();
        tracer.set_enabled(false);
        let log = tracer.drain();
        std::fs::write(&path, quipper_trace::to_chrome_trace(&log)).unwrap();
        println!(
            "\nwrote {} trace events to {path} (load in chrome://tracing)",
            log.events.len()
        );
        // Gates by class, per level of the boxed-subroutine hierarchy —
        // the arXiv:1412.0625-style resource report, from the *unflattened*
        // circuit.
        println!("\n{}", resource_report(&grover, "Grover (3 qubits)"));
        println!("{}", tracer.metrics().snapshot());
    }
}
